//! Quickstart: compile an MJ kernel, run it, optimize it with ABCD, run it
//! again, and compare the dynamic bounds-check counts.
//!
//!     cargo run --example quickstart

use abcd::Optimizer;
use abcd_frontend::compile;
use abcd_vm::Vm;

const SRC: &str = r#"
    // Dot product: every access is guarded by the loop bound, so ABCD
    // removes all four checks (lower+upper for a[i] and b[i]).
    fn dot(a: int[], b: int[]) -> int {
        let n: int = a.length;
        if (b.length < n) { n = b.length; }
        let acc: int = 0;
        for (let i: int = 0; i < n; i = i + 1) {
            acc = acc + a[i] * b[i];
        }
        return acc;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile. The frontend inserts an explicit lower and upper bounds
    //    check before every array access, like a Java bytecode frontend.
    let module = compile(SRC)?;

    // 2. Run the unoptimized module.
    let mut vm = Vm::new(&module);
    let a = vm.alloc_int_array(&[1, 2, 3, 4]);
    let b = vm.alloc_int_array(&[10, 20, 30, 40]);
    let result = vm.call_by_name("dot", &[a, b])?;
    println!("dot = {:?}", result);
    println!(
        "unoptimized: {} dynamic checks, {} model cycles",
        vm.stats().dynamic_checks_total(),
        vm.stats().cycles
    );

    // 3. Optimize with ABCD.
    let mut optimized = compile(SRC)?;
    let report = Optimizer::new().optimize_module(&mut optimized, None);
    println!(
        "ABCD: {}/{} checks fully redundant, {} hoisted, {:.1} prove-steps/check",
        report.checks_removed_fully(),
        report.checks_total(),
        report.checks_hoisted(),
        report.steps_per_check()
    );

    // 4. Run the optimized module on the same input.
    let mut vm = Vm::new(&optimized);
    let a = vm.alloc_int_array(&[1, 2, 3, 4]);
    let b = vm.alloc_int_array(&[10, 20, 30, 40]);
    let result2 = vm.call_by_name("dot", &[a, b])?;
    assert_eq!(result, result2);
    println!(
        "optimized:   {} dynamic checks, {} model cycles",
        vm.stats().dynamic_checks_total(),
        vm.stats().cycles
    );
    Ok(())
}
