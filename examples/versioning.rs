//! Function versioning in action: the guarded fast/slow duplication the
//! paper lists as future work ("We do not perform any code duplication…").
//!
//!     cargo run --example versioning

use abcd::{version_functions, Optimizer};
use abcd_frontend::compile;
use abcd_vm::{RtVal, Vm};

const SRC: &str = r#"
    // The classic shape ABCD alone cannot finish: the loop bound is a
    // parameter, unrelated to a.length inside this function.
    fn window_sum(a: int[], n: int) -> int {
        let s: int = 0;
        for (let i: int = 0; i < n; i = i + 1) {
            s = s + a[i];
        }
        return s;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut module = compile(SRC)?;
    let report = Optimizer::new().optimize_module(&mut module, None);
    println!(
        "after ABCD: {}/{} checks removed, {} hoisted (the upper check's trap remains)",
        report.checks_removed_fully(),
        report.checks_total(),
        report.checks_hoisted()
    );

    let v = version_functions(&mut module, None, 0);
    for (name, facts, removed) in &v.versioned {
        println!("versioned `{name}`: fast path drops {removed} more checks, guarded by {facts:?}");
    }
    println!("\n--- dispatcher ---");
    let id = module.function_by_name("window_sum").expect("dispatcher");
    println!("{}", module.function(id));

    // Guard holds: the fast clone runs, check-free.
    let mut vm = Vm::new(&module);
    let a = vm.alloc_int_array(&[10, 20, 30, 40]);
    let r = vm.call_by_name("window_sum", &[a, RtVal::Int(4)])?;
    println!(
        "\nwindow_sum(a, 4) = {r:?}  (dynamic checks: {:?})",
        vm.stats().checks
    );

    // Guard fails (n too large): the slow clone runs and traps exactly
    // where the original program would.
    let mut vm = Vm::new(&module);
    let a = vm.alloc_int_array(&[10, 20]);
    let err = vm
        .call_by_name("window_sum", &[a, RtVal::Int(9)])
        .unwrap_err();
    println!("window_sum(a, 9) -> {err}");
    Ok(())
}
