//! A look inside the algorithm: dump the e-SSA form, the inequality graph,
//! and the per-check `demandProve` verdicts for the paper's running example
//! (Figure 3/4 of the paper, the first loop of bidirectional bubble sort).
//!
//!     cargo run --example prover_explorer

use abcd::{DemandProver, InequalityGraph, Problem, Vertex, VertexId};
use abcd_frontend::compile;
use abcd_ir::{CheckKind, InstKind};

const SRC: &str = r#"
    fn fragment(a: int[]) {
        let limit: int = a.length;
        let st: int = 0 - 1;
        while (st < limit) {
            st = st + 1;
            limit = limit - 1;
            for (let j: int = st; j < limit; j = j + 1) {
                let x: int = a[j];
                let y: int = a[j + 1];
                if (x > y) {
                    a[j] = y;
                    a[j + 1] = x;
                }
            }
        }
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut module = compile(SRC)?;
    abcd_ssa::module_to_essa(&mut module).map_err(|(name, e)| format!("{name}: {e}"))?;
    let id = module
        .function_by_name("fragment")
        .expect("function exists");
    // Clean the function up like the optimizer would, so the dump matches
    // what ABCD analyzes.
    let func = {
        let f = module.function_mut(id);
        abcd_analysis::cleanup(f);
        module.function(id).clone()
    };

    println!("==== e-SSA form (Figure 3 analogue) ====\n{func}\n");

    let graph = InequalityGraph::build(&func, Problem::Upper, None);
    println!("==== inequality graph (Figure 4 analogue) ====");
    println!(
        "{} vertices, {} edges; an edge `u -({{w}})-> v` means v <= u + w",
        graph.vertex_count(),
        graph.edge_count()
    );
    for v in 0..graph.vertex_count() {
        let vid = VertexId::from_index(v);
        let edges = graph.in_edges(vid);
        if edges.is_empty() {
            continue;
        }
        let max = if graph.is_max(vid) { "  [max/φ]" } else { "" };
        print!("  {}{max} <= ", graph.vertex(vid));
        for (i, e) in edges.iter().enumerate() {
            if i > 0 {
                print!(", ");
            }
            print!("{} + {}", graph.vertex(e.src), e.weight);
        }
        println!();
    }

    println!("\n==== demandProve per upper-bound check ====");
    for b in func.blocks() {
        for &iid in func.block(b).insts() {
            if let InstKind::BoundsCheck {
                site,
                array,
                index,
                kind: CheckKind::Upper,
            } = func.inst(iid).kind
            {
                let mut prover = DemandProver::new(&graph, Vertex::ArrayLen(array));
                let proven = prover.demand_prove(Vertex::Value(index), -1);
                println!(
                    "  {site}: prove {index} - len({array}) <= -1  =>  {}  ({} steps)",
                    if proven { "REDUNDANT" } else { "needed" },
                    prover.steps
                );
            }
        }
    }
    Ok(())
}
