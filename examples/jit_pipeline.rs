//! The dynamic-compilation scenario the paper targets: profile a "warm-up"
//! run, then apply ABCD *on demand* to the hot checks only, including the
//! §6 partial-redundancy transformation whose profitability is decided by
//! the profile.
//!
//!     cargo run --example jit_pipeline

use abcd::{CheckOutcome, Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_vm::Vm;

const SRC: &str = r#"
    // A hot kernel whose bound arrives as a parameter: the inner check is
    // partially redundant (provable after one compensating check at the
    // loop entry — the paper's §6 scenario).
    fn smooth(signal: int[], taps: int) -> int {
        let acc: int = 0;
        let t: int = taps;
        while (t > 0) {
            for (let i: int = 0; i < t; i = i + 1) {
                acc = acc + signal[i];
            }
            t = t - 1;
        }
        return acc;
    }
    // A cold helper: executed once, so a demand-driven JIT skips it.
    fn cold_init(buf: int[]) {
        for (let i: int = 0; i < buf.length; i = i + 1) {
            buf[i] = i * 3 & 255;
        }
    }
    fn main() -> int {
        let signal: int[] = new int[64];
        cold_init(signal);
        let acc: int = 0;
        for (let r: int = 0; r < 50; r = r + 1) {
            acc = acc + smooth(signal, 48);
        }
        return acc;
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Warm-up run: the interpreter doubles as the profiling tier.
    let warmup = compile(SRC)?;
    let mut vm = Vm::new(&warmup);
    let r1 = vm.call_by_name("main", &[])?;
    let baseline = *vm.stats();
    let profile = vm.into_profile();

    println!("hot check sites (top 5):");
    for ((func, site), count) in profile.hot_sites().into_iter().take(5) {
        println!("  {func}/{site}: {count} executions");
    }

    // Optimizing tier: only recompile checks executed ≥ 1000 times.
    let mut optimized = compile(SRC)?;
    let options = OptimizerOptions {
        hot_threshold: Some(1000),
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(options).optimize_module(&mut optimized, Some(&profile));

    for f in &report.functions {
        let skipped = f
            .outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::Skipped))
            .count();
        let hoisted: Vec<_> = f
            .outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::Hoisted { .. }))
            .collect();
        println!(
            "{}: {} checks — {} removed, {} hoisted, {} skipped (cold)",
            f.name,
            f.checks_total,
            f.removed_fully(),
            hoisted.len(),
            skipped
        );
    }

    // Steady-state run.
    let mut vm = Vm::new(&optimized);
    let r2 = vm.call_by_name("main", &[])?;
    assert_eq!(r1, r2);
    let optimized_stats = *vm.stats();
    println!(
        "dynamic checks: {} -> {} ({:.1}% removed)",
        baseline.dynamic_checks_total(),
        optimized_stats.dynamic_checks_total(),
        100.0
            * (1.0
                - optimized_stats.dynamic_checks_total() as f64
                    / baseline.dynamic_checks_total() as f64)
    );
    println!(
        "model cycles:   {} -> {} ({:+.1}%)",
        baseline.cycles,
        optimized_stats.cycles,
        100.0 * (optimized_stats.cycles as f64 / baseline.cycles as f64 - 1.0)
    );
    Ok(())
}
