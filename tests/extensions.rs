//! Integration tests for the paper's §7 extensions: the on-demand GVN
//! congruence hook (§7.1), the lower-bound dual and unsigned check merging
//! (§7.2), and the demand-driven hot-check selection.

use abcd::{CheckOutcome, Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_vm::{RtVal, Vm};

/// §7.1: the check on `row2[i]` is only provable because `row1` and `row2`
/// are loads of the same slot of `m` — value-numbering congruence that no
/// rewriting CSE supplies (loads read memory).
const GVN_HOOK: &str = r#"
    fn f(m: int[][], k: int, i: int) -> int {
        let row1: int[] = m[k];
        let n: int = row1.length;
        let row2: int[] = m[k];
        if (i >= 0) {
            if (i < n) {
                return row2[i];
            }
        }
        return 0;
    }
"#;

#[test]
fn gvn_hook_proves_via_congruent_array() {
    let with_hook = {
        let mut m = compile(GVN_HOOK).unwrap();
        Optimizer::new().optimize_module(&mut m, None)
    };
    let without_hook = {
        let mut m = compile(GVN_HOOK).unwrap();
        let opts = OptimizerOptions {
            gvn_hook: false,
            ..OptimizerOptions::default()
        };
        Optimizer::with_options(opts).optimize_module(&mut m, None)
    };
    // The hook removes strictly more upper checks.
    assert!(
        with_hook.checks_removed_fully() > without_hook.checks_removed_fully(),
        "with: {:#?}\nwithout: {:#?}",
        with_hook.functions[0].outcomes,
        without_hook.functions[0].outcomes
    );
    // And at least one removal is attributed to congruence.
    let via = with_hook.functions[0]
        .outcomes
        .iter()
        .filter(|(_, _, o)| {
            matches!(
                o,
                CheckOutcome::RemovedFully {
                    via_congruence: true,
                    ..
                }
            )
        })
        .count();
    assert!(via >= 1, "{:#?}", with_hook.functions[0].outcomes);
}

#[test]
fn gvn_hook_result_is_sound() {
    let baseline = compile(GVN_HOOK).unwrap();
    let mut optimized = compile(GVN_HOOK).unwrap();
    Optimizer::new().optimize_module(&mut optimized, None);

    for (k, i) in [(0i64, 0i64), (1, 2), (1, 5), (0, -1)] {
        let run = |m: &abcd_ir::Module| {
            let mut vm = Vm::new(m);
            // m = [[10, 20, 30], [40, 50, 60]]
            let r0 = vm.alloc_int_array(&[10, 20, 30]);
            let r1 = vm.alloc_int_array(&[40, 50, 60]);
            let outer = vm.alloc_ref_array(&[r0, r1]);
            vm.call_by_name("f", &[outer, RtVal::Int(k), RtVal::Int(i)])
        };
        let a = run(&baseline);
        let b = run(&optimized);
        match (&a, &b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "k={k} i={i}"),
            (Err(e1), Err(e2)) => assert_eq!(
                format!("{:?}", e1.kind),
                format!("{:?}", e2.kind),
                "k={k} i={i}"
            ),
            other => panic!("divergence k={k} i={i}: {other:?}"),
        }
    }
}

#[test]
fn merged_unsigned_checks_preserve_semantics_and_save_cycles() {
    let src = r#"
        fn get(a: int[], i: int) -> int { return a[i]; }
    "#;
    let plain = compile(src).unwrap();
    let mut merged = compile(src).unwrap();
    let opts = OptimizerOptions {
        merge_checks: true,
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(opts).optimize_module(&mut merged, None);
    assert_eq!(report.functions[0].checks_merged, 1);

    // In-bounds: same result, fewer check executions.
    let mut vm1 = Vm::new(&plain);
    let a1 = vm1.alloc_int_array(&[9, 8, 7]);
    assert_eq!(
        vm1.call_by_name("get", &[a1, RtVal::Int(2)]).unwrap(),
        Some(RtVal::Int(7))
    );
    let mut vm2 = Vm::new(&merged);
    let a2 = vm2.alloc_int_array(&[9, 8, 7]);
    assert_eq!(
        vm2.call_by_name("get", &[a2, RtVal::Int(2)]).unwrap(),
        Some(RtVal::Int(7))
    );
    assert_eq!(vm1.stats().dynamic_checks_total(), 2);
    assert_eq!(vm2.stats().dynamic_checks_total(), 1);
    assert!(vm2.stats().cycles < vm1.stats().cycles);

    // Out-of-bounds on both sides still traps.
    for bad in [-1i64, 3] {
        let mut vm = Vm::new(&merged);
        let a = vm.alloc_int_array(&[9, 8, 7]);
        assert!(
            vm.call_by_name("get", &[a, RtVal::Int(bad)]).is_err(),
            "{bad}"
        );
    }
}

#[test]
fn hot_threshold_skips_cold_checks() {
    let src = r#"
        fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            // cold tail access, executed once
            if (a.length > 0) { s = s + a[0]; }
            return s;
        }
        fn main() -> int {
            let a: int[] = new int[64];
            let t: int = 0;
            for (let r: int = 0; r < 10; r = r + 1) { t = t + f(a); }
            return t;
        }
    "#;
    // Train.
    let train = compile(src).unwrap();
    let mut vm = Vm::new(&train);
    vm.call_by_name("main", &[]).unwrap();
    let profile = vm.into_profile();

    let mut module = compile(src).unwrap();
    let opts = OptimizerOptions {
        hot_threshold: Some(100),
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(opts).optimize_module(&mut module, Some(&profile));
    let f_report = report.functions.iter().find(|fr| fr.name == "f").unwrap();
    let skipped = f_report
        .outcomes
        .iter()
        .filter(|(_, _, o)| matches!(o, CheckOutcome::Skipped))
        .count();
    assert!(skipped >= 2, "{:#?}", f_report.outcomes); // the cold a[0] pair
    assert!(f_report.removed_fully() >= 2); // the hot loop pair
}

/// Hot-threshold edge: with no profile at all, a threshold is inert —
/// everything is analyzed and the output is byte-identical to the
/// unthresholded run.
#[test]
fn hot_threshold_without_profile_is_inert() {
    let src = r#"
        fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            return s;
        }
        fn main() -> int { return 0; }
    "#;
    let baseline = {
        let mut m = compile(src).unwrap();
        Optimizer::new().optimize_module(&mut m, None);
        m.to_string()
    };
    let mut m = compile(src).unwrap();
    let opts = OptimizerOptions {
        hot_threshold: Some(1_000_000),
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(opts).optimize_module(&mut m, None);
    assert_eq!(m.to_string(), baseline);
    assert!(
        !report
            .functions
            .iter()
            .flat_map(|f| &f.outcomes)
            .any(|(_, _, o)| matches!(o, CheckOutcome::Skipped)),
        "nothing may be skipped without a profile"
    );
}

/// Hot-threshold edge: threshold 0 means every site (even never-executed
/// ones) counts as hot — byte-identical to the unthresholded run.
#[test]
fn hot_threshold_zero_analyzes_everything() {
    let src = r#"
        fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            return s;
        }
        fn main() -> int {
            let a: int[] = new int[4];
            return f(a);
        }
    "#;
    let train = compile(src).unwrap();
    let mut vm = Vm::new(&train);
    vm.call_by_name("main", &[]).unwrap();
    let profile = vm.into_profile();

    let baseline = {
        let mut m = compile(src).unwrap();
        Optimizer::new().optimize_module(&mut m, Some(&profile));
        m.to_string()
    };
    let mut m = compile(src).unwrap();
    let opts = OptimizerOptions {
        hot_threshold: Some(0),
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(opts).optimize_module(&mut m, Some(&profile));
    assert_eq!(m.to_string(), baseline);
    assert!(report.checks_removed_fully() > 0);
}

/// Hot-threshold edge: when every check in the module is cold, the whole
/// pipeline is skipped and the module ships byte-identical to its input,
/// with every check reported `Skipped`.
#[test]
fn all_cold_module_is_byte_identical_to_input() {
    let src = r#"
        fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            return s;
        }
        fn main() -> int {
            let a: int[] = new int[2];
            return f(a);
        }
    "#;
    let train = compile(src).unwrap();
    let mut vm = Vm::new(&train);
    vm.call_by_name("main", &[]).unwrap();
    let profile = vm.into_profile();

    let mut m = compile(src).unwrap();
    let input = m.to_string();
    let opts = OptimizerOptions {
        hot_threshold: Some(1_000_000), // hotter than any trained count
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(opts).optimize_module(&mut m, Some(&profile));
    assert_eq!(
        m.to_string(),
        input,
        "all-cold functions must ship untouched"
    );
    assert_eq!(report.checks_removed_fully(), 0);
    for f in &report.functions {
        for (site, kind, outcome) in &f.outcomes {
            assert!(
                matches!(outcome, CheckOutcome::Skipped),
                "{}: {site:?} {kind:?} {outcome:?}",
                f.name
            );
        }
    }
}

#[test]
fn upper_only_mode_keeps_lower_checks() {
    let src = "fn f(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }";
    let mut module = compile(src).unwrap();
    let opts = OptimizerOptions {
        lower: false,
        ..OptimizerOptions::default()
    };
    Optimizer::with_options(opts).optimize_module(&mut module, None);
    let id = module.function_by_name("f").unwrap();
    let (checks, _, _) = module.function(id).count_checks();
    assert_eq!(checks, 1); // the lower check remains
}
