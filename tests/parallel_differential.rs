//! Differential guarantee of the parallel driver (PR: parallel batch
//! optimization): for every benchsuite program, optimizing with a worker
//! pool produces **byte-identical** IR, identical per-check outcomes, and
//! identical dynamic check counts to the sequential driver.

use abcd::{CheckOutcome, ModuleReport, Optimizer, OptimizerOptions};
use abcd_ir::{CheckKind, CheckSite, Module};
use abcd_vm::{ExecStats, Profile, Vm};

/// Canonical printed form of a module — the byte-identity witness.
fn dump(m: &Module) -> String {
    m.functions().map(|(_, f)| format!("{f}\n")).collect()
}

fn run_main(m: &Module) -> ExecStats {
    let mut vm = Vm::new(m);
    vm.call_by_name("main", &[]).expect("benchmark runs");
    *vm.stats()
}

/// Training run on the unoptimized module, as a JIT would have collected.
fn train(bench: &abcd_benchsuite::Benchmark) -> Profile {
    let m = bench.compile().expect("benchmark compiles");
    let mut vm = Vm::new(&m);
    vm.call_by_name("main", &[]).expect("training run");
    vm.into_profile()
}

type FunctionOutcomes = (abcd_ir::Symbol, Vec<(CheckSite, CheckKind, CheckOutcome)>);

fn outcomes(r: &ModuleReport) -> Vec<FunctionOutcomes> {
    r.functions
        .iter()
        .map(|f| (f.name, f.outcomes.clone()))
        .collect()
}

fn assert_equivalent(
    name: &str,
    threads: usize,
    options: OptimizerOptions,
    profile: Option<&Profile>,
    bench: &abcd_benchsuite::Benchmark,
) {
    let mut seq = bench.compile().unwrap();
    let seq_report = Optimizer::with_options(options).optimize_module(&mut seq, profile);

    let mut par = bench.compile().unwrap();
    let par_report = Optimizer::with_options(options)
        .with_threads(threads)
        .optimize_module(&mut par, profile);

    assert_eq!(
        dump(&seq),
        dump(&par),
        "{name}: IR differs between sequential and {threads}-thread runs"
    );
    assert_eq!(
        outcomes(&seq_report),
        outcomes(&par_report),
        "{name}: per-check outcomes differ at {threads} threads"
    );

    let s1 = run_main(&seq);
    let s2 = run_main(&par);
    assert_eq!(
        s1.dynamic_checks_total(),
        s2.dynamic_checks_total(),
        "{name}: dynamic check totals differ at {threads} threads"
    );
    assert_eq!(s1, s2, "{name}: dynamic stats differ at {threads} threads");
}

/// All 15 benchsuite programs, profile-driven (the configuration the
/// experiments use), at 2 and 4 workers.
#[test]
fn parallel_driver_is_byte_identical_on_benchsuite() {
    for bench in abcd_benchsuite::BENCHMARKS {
        let profile = train(bench);
        for threads in [2usize, 4] {
            assert_equivalent(
                bench.name,
                threads,
                OptimizerOptions::default(),
                Some(&profile),
                bench,
            );
        }
    }
}

/// Profile-less runs and the non-default pass mix must be deterministic
/// too (merge_checks exercises the §7.2 rewrite path).
#[test]
fn parallel_driver_matches_without_profile_and_with_merging() {
    let options = OptimizerOptions {
        merge_checks: true,
        ..OptimizerOptions::default()
    };
    for name in ["db", "jess", "biDirBubbleSort", "matmult"] {
        let Some(bench) = abcd_benchsuite::by_name(name) else {
            continue;
        };
        assert_equivalent(name, 3, options, None, bench);
    }
}

/// Interprocedural mode runs prepare and analyze as two parallel phases
/// around the sequential fact fixpoint; it must stay equivalent as well.
#[test]
fn parallel_driver_matches_interprocedural() {
    let options = OptimizerOptions {
        interprocedural: true,
        ..OptimizerOptions::default()
    };
    for name in ["db", "sieve", "array"] {
        let Some(bench) = abcd_benchsuite::by_name(name) else {
            continue;
        };
        assert_equivalent(name, 4, options, None, bench);
    }
}

/// The full fail-open layer — per-pass IR verification, translation
/// validation, solver fuel budgets — must not break parallel determinism:
/// a pool run stays byte-identical to the sequential one with every new
/// knob enabled at once.
#[test]
fn parallel_driver_matches_with_fail_open_layer_enabled() {
    let options = OptimizerOptions {
        verify_ir: true,
        validate: true,
        fuel_per_query: Some(64),
        fuel_per_function: Some(512),
        ..OptimizerOptions::default()
    };
    for name in ["db", "bytemark", "qsort", "dhrystone"] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        let profile = train(bench);
        assert_equivalent(name, 4, options, Some(&profile), bench);
    }
}

/// Thread counts beyond the function count (and 0 = "sequential") are
/// clamped, not crashed; reports still merge in function order.
#[test]
fn thread_count_edge_cases() {
    let bench = abcd_benchsuite::by_name("array").unwrap();
    for threads in [0usize, 1, 64] {
        assert_equivalent("array", threads, OptimizerOptions::default(), None, bench);
    }
}

/// Deterministic traces are part of the differential guarantee: with
/// timestamps zeroed, a pool run's `abcd-trace/3` document is
/// byte-identical to the sequential one after the header line (the header
/// legitimately embeds the thread count).
#[test]
fn parallel_trace_is_byte_identical_after_the_header() {
    for name in ["db", "sieve", "array", "qsort"] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        let mut seq = bench.compile().unwrap();
        let seq_report = Optimizer::new()
            .with_trace(true)
            .optimize_module(&mut seq, None);
        let mut par = bench.compile().unwrap();
        let par_report = Optimizer::new()
            .with_trace(true)
            .with_threads(4)
            .optimize_module(&mut par, None);
        let seq_trace = abcd::module_trace_jsonl(&seq_report, 1, true);
        let par_trace = abcd::module_trace_jsonl(&par_report, 4, true);
        let tail = |t: &str| t.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(
            tail(&seq_trace),
            tail(&par_trace),
            "{name}: trace spans differ between sequential and 4-thread runs"
        );
    }
}

/// The metrics JSON from a parallel run carries the worker count and a
/// measured wall time, alongside solver and memo counters.
#[test]
fn metrics_json_reports_parallel_run() {
    let bench = abcd_benchsuite::by_name("db").unwrap();
    let mut m = bench.compile().unwrap();
    let started = std::time::Instant::now();
    let report = Optimizer::new()
        .with_threads(2)
        .optimize_module(&mut m, None);
    let json = abcd::module_metrics_json(&report, abcd::RunInfo::new(2, started.elapsed()));
    assert!(json.starts_with("{\"schema\":\"abcd-metrics/6\""), "{json}");
    assert!(json.contains("\"threads\":2"), "{json}");
    assert!(json.contains("\"memo_hits\":"), "{json}");
    assert!(json.contains("\"graph\":"), "{json}");
    assert!(json.contains("\"times_us\":"), "{json}");
    // Solver effort is attributed: total steps appear in the totals object.
    assert!(
        json.contains(&format!("\"steps\":{}", report.steps())),
        "{json}"
    );
}
