//! Deterministic differential testing: generated MJ programs must behave
//! identically before and after the full ABCD pipeline — same result, same
//! output stream, same trap (kind **and** site) — and never execute an
//! unchecked out-of-bounds access (the VM reports that as a distinct trap,
//! so any unsound removal becomes a visible divergence).
//!
//! Programs are generated from a byte string (structured fuzzing): bytes
//! drive a tiny grammar walker. The byte strings themselves come from a
//! fixed-seed SplitMix64 stream, so every run of the suite explores exactly
//! the same corpus — hermetic, reproducible, and debuggable by seed index.
//! Loops are always of the form `for (i = c0; i < bound; i++)` with `bound`
//! a small constant or `a.length ± c`, guaranteeing termination; index
//! expressions are arbitrary, so traps genuinely occur and the
//! trap-equivalence clause is exercised.
//!
//! Inputs are kept within ±1000 because ABCD — like the paper — reasons in
//! unbounded integers and does not model wrap-around (see README).
//!
//! Historical proptest-shrunk failure seeds are preserved as named
//! deterministic regression tests at the bottom of this file.

use abcd::{Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_vm::{RtVal, TrapKind, Vm, VmOptions};

/// SplitMix64 — a tiny deterministic PRNG so the corpus needs no crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` (n > 0).
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }

    fn data(&mut self, max_len: usize) -> Vec<i64> {
        let len = self.below(max_len as u64 + 1) as usize;
        (0..len).map(|_| self.range(-50, 50)).collect()
    }
}

/// A byte-stream-driven program generator.
struct Gen<'a> {
    bytes: &'a [u8],
    pos: usize,
    next_loop_var: u32,
    stmts_budget: u32,
}

impl<'a> Gen<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Gen {
            bytes,
            pos: 0,
            next_loop_var: 0,
            stmts_budget: 24,
        }
    }

    fn byte(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.byte() as usize % options.len()]
    }

    /// An integer expression over the in-scope variables.
    fn expr(&mut self, vars: &[String], depth: u32) -> String {
        if depth == 0 || self.byte().is_multiple_of(3) {
            return match self.byte() % 4 {
                0 => format!("{}", (self.byte() as i64 % 12) - 3),
                1 => "a.length".to_string(),
                2 if !vars.is_empty() => {
                    let i = self.byte() as usize % vars.len();
                    vars[i].clone()
                }
                _ => "x".to_string(),
            };
        }
        let op = self.pick(&["+", "-", "*"]);
        let lhs = self.expr(vars, depth - 1);
        let rhs = if op == "*" {
            // Keep products small so the no-wraparound model holds.
            format!("{}", (self.byte() as i64 % 5) - 1)
        } else {
            self.expr(vars, depth - 1)
        };
        format!("({lhs} {op} {rhs})")
    }

    fn cond(&mut self, vars: &[String]) -> String {
        let op = self.pick(&["<", "<=", ">", ">=", "==", "!="]);
        let lhs = self.expr(vars, 1);
        let rhs = self.expr(vars, 1);
        format!("{lhs} {op} {rhs}")
    }

    fn block(&mut self, vars: &mut Vec<String>, depth: u32, out: &mut String, indent: usize) {
        let n = 1 + self.byte() % 3;
        for _ in 0..n {
            if self.stmts_budget == 0 {
                return;
            }
            self.stmts_budget -= 1;
            self.stmt(vars, depth, out, indent);
        }
    }

    fn stmt(&mut self, vars: &mut Vec<String>, depth: u32, out: &mut String, indent: usize) {
        let pad = "    ".repeat(indent);
        match self.byte() % 9 {
            0 => {
                let e = self.expr(vars, 2);
                out.push_str(&format!("{pad}s = s + {e};\n"));
            }
            1 => {
                let idx = self.expr(vars, 2);
                out.push_str(&format!("{pad}s = s + a[{idx}];\n"));
            }
            2 => {
                let idx = self.expr(vars, 2);
                let val = self.expr(vars, 1);
                out.push_str(&format!("{pad}a[{idx}] = {val};\n"));
            }
            3 if depth > 0 => {
                let c = self.cond(vars);
                out.push_str(&format!("{pad}if ({c}) {{\n"));
                self.block(vars, depth - 1, out, indent + 1);
                if self.byte().is_multiple_of(2) {
                    out.push_str(&format!("{pad}}} else {{\n"));
                    self.block(vars, depth - 1, out, indent + 1);
                }
                out.push_str(&format!("{pad}}}\n"));
            }
            4 if depth > 0 => {
                let v = format!("i{}", self.next_loop_var);
                self.next_loop_var += 1;
                let start = (self.byte() as i64 % 4) - 1;
                let bound = match self.byte() % 3 {
                    0 => format!("{}", self.byte() % 9),
                    1 => "a.length".to_string(),
                    _ => format!("(a.length - {})", self.byte() % 3),
                };
                out.push_str(&format!(
                    "{pad}for (let {v}: int = {start}; {v} < {bound}; {v} = {v} + 1) {{\n"
                ));
                vars.push(v.clone());
                self.block(vars, depth - 1, out, indent + 1);
                vars.pop();
                out.push_str(&format!("{pad}}}\n"));
            }
            5 => {
                let e = self.expr(vars, 1);
                out.push_str(&format!("{pad}x = {e};\n"));
            }
            7 => {
                // Call the guarded helper (checks inside are provable from
                // the guard; with --ipa also from call-site facts).
                let e = self.expr(vars, 2);
                out.push_str(&format!("{pad}s = s + guarded(a, {e});\n"));
            }
            8 => {
                // Call the unguarded helper: traps propagate through calls,
                // and interprocedural facts decide its checks.
                let e = self.expr(vars, 2);
                out.push_str(&format!("{pad}s = s + raw(a, {e});\n"));
            }
            _ => {
                let e = self.expr(vars, 2);
                out.push_str(&format!("{pad}print({e});\n"));
            }
        }
    }

    fn program(mut self) -> String {
        let mut body = String::new();
        let mut vars = Vec::new();
        self.block(&mut vars, 3, &mut body, 1);
        format!(
            "fn guarded(b: int[], k: int) -> int {{\n\
                 if (k >= 0) {{ if (k < b.length) {{ return b[k] + 1; }} }}\n\
                 return 0 - k;\n\
             }}\n\
             fn raw(b: int[], k: int) -> int {{ return b[k]; }}\n\
             fn f(a: int[], x: int) -> int {{\n    let s: int = 0;\n{body}    return s;\n}}\n"
        )
    }
}

/// Runs `f` and normalizes the observable outcome. The returned check
/// count excludes speculative (`spec_check`) executions: speculation may
/// legitimately execute on paths where the original checks never ran
/// (zero-trip loops, early traps) — the §6.1 profitability argument is
/// about expected frequency, not per-input counts.
fn run(
    module: &abcd_ir::Module,
    data: &[i64],
    x: i64,
) -> (Result<Option<RtVal>, String>, Vec<i64>, u64) {
    let mut vm = Vm::with_options(
        module,
        VmOptions {
            step_limit: 2_000_000,
            ..VmOptions::default()
        },
    );
    let arr = vm.alloc_int_array(data);
    let r = vm
        .call_by_name("f", &[arr, RtVal::Int(x)])
        .map_err(|t| format!("{:?}", t.kind));
    let out = vm.output().to_vec();
    let checks = vm.stats().checks.iter().sum::<u64>();
    (r, out, checks)
}

/// The core differential property for one `(bytes, data, x)` case: the
/// default pipeline, the interprocedural extension, and function versioning
/// must all be observationally equivalent to the unoptimized program.
fn check_observational_equivalence(bytes: &[u8], data: &[i64], x: i64) {
    let src = Gen::new(bytes).program();
    let baseline = compile(&src).expect("generated program compiles");
    let mut optimized = compile(&src).unwrap();
    Optimizer::new().optimize_module(&mut optimized, None);

    let (r1, out1, checks1) = run(&baseline, data, x);
    let (r2, out2, checks2) = run(&optimized, data, x);

    // Any unchecked OOB access in the optimized run is an unsound
    // removal — it can never match the baseline's outcome.
    if let Err(k) = &r2 {
        assert!(
            !k.contains("UncheckedAccess"),
            "unsound removal!\n{src}\ntrap: {k}"
        );
    }
    assert_eq!(&r1, &r2, "result diverged\n{src}");
    assert_eq!(&out1, &out2, "output diverged\n{src}");
    assert!(
        checks2 <= checks1,
        "optimization added non-speculative dynamic checks ({checks1} -> {checks2})\n{src}"
    );

    // The interprocedural extension must also be observationally
    // equivalent. (The generated entry `f` is a root — it has no call
    // sites — so calling it directly is within the closed-world contract.)
    let mut ipa = compile(&src).unwrap();
    let opts = OptimizerOptions {
        interprocedural: true,
        ..OptimizerOptions::default()
    };
    Optimizer::with_options(opts).optimize_module(&mut ipa, None);
    let (r3, out3, _) = run(&ipa, data, x);
    if let Err(k) = &r3 {
        assert!(
            !k.contains("UncheckedAccess"),
            "unsound interprocedural removal!\n{src}\ntrap: {k}"
        );
    }
    assert_eq!(&r1, &r3, "interprocedural diverged\n{src}");
    assert_eq!(&out1, &out3);

    // Function versioning (dispatcher + fast/slow clones) is
    // unconditionally sound — the guards are executed, not assumed —
    // so it must hold for every input, including adversarial ones.
    let mut versioned = compile(&src).unwrap();
    Optimizer::new().optimize_module(&mut versioned, None);
    abcd::version_functions(&mut versioned, None, 0);
    let (r4, out4, _) = run(&versioned, data, x);
    if let Err(k) = &r4 {
        assert!(
            !k.contains("UncheckedAccess"),
            "unsound versioning!\n{src}\ntrap: {k}"
        );
    }
    assert_eq!(&r1, &r4, "versioning diverged\n{src}");
    assert_eq!(&out1, &out4);
}

#[test]
fn optimized_program_is_observationally_equivalent() {
    // Override the corpus size with ABCD_FUZZ_CASES for deeper sweeps.
    let cases = fuzz_cases(96);
    let mut rng = Rng::new(0xabcd_0001);
    for case in 0..cases {
        let bytes = rng.bytes(160);
        let data = rng.data(7);
        let x = rng.range(-1000, 1000);
        let result = std::panic::catch_unwind(|| {
            check_observational_equivalence(&bytes, &data, x);
        });
        if let Err(e) = result {
            panic!("case {case} failed (bytes={bytes:?}, data={data:?}, x={x}): {e:?}");
        }
    }
}

#[test]
fn pipeline_stages_all_verify() {
    let cases = fuzz_cases(64);
    let mut rng = Rng::new(0xabcd_0002);
    for _ in 0..cases {
        let bytes = rng.bytes(120);
        check_pipeline_stages(&bytes);
    }
}

fn check_pipeline_stages(bytes: &[u8]) {
    let src = Gen::new(bytes).program();
    let mut module = compile(&src).expect("generated program compiles");
    abcd_ir::verify_module(&module).expect("locals form verifies");

    let id = module.functions().next().unwrap().0;
    let func = module.function_mut(id);
    abcd_ssa::split_critical_edges(func);
    abcd_ssa::promote_locals(func).expect("ssa construction");
    abcd_ssa::verify_ssa(func).expect("ssa verifies");
    abcd_analysis::cleanup(func);
    abcd_ssa::verify_ssa(func).expect("cleanup keeps ssa");
    abcd_ssa::insert_pi_nodes(func);
    abcd_ssa::verify_ssa(func).expect("e-ssa verifies");
    abcd_ir::verify_function(func, None).expect("e-ssa structurally ok");
}

#[test]
fn printed_ir_reparses_and_behaves_identically() {
    let cases = fuzz_cases(48);
    let mut rng = Rng::new(0xabcd_0003);
    for _ in 0..cases {
        let bytes = rng.bytes(120);
        let data = rng.data(6);
        let x = rng.range(-100, 100);
        check_reparse(&bytes, &data, x);
    }
}

fn check_reparse(bytes: &[u8], data: &[i64], x: i64) {
    let src = Gen::new(bytes).program();
    let mut module = compile(&src).unwrap();
    abcd_ssa::module_to_essa(&mut module).unwrap();

    // Textual round trip reaches a fixed point after one parse
    // (block ids may renumber once if unreachable blocks were cleared).
    let text1 = module.to_string();
    let reparsed = abcd_ir::parse_module(&text1).unwrap_or_else(|e| panic!("{e}\n{text1}"));
    abcd_ir::verify_module(&reparsed).expect("reparsed module verifies");
    let text2 = reparsed.to_string();
    let reparsed2 = abcd_ir::parse_module(&text2).unwrap();
    assert_eq!(&text2, &reparsed2.to_string(), "print/parse not stable");

    // And the reparsed module is observationally identical.
    let (r1, out1, _) = run(&module, data, x);
    let (r2, out2, _) = run(&reparsed, data, x);
    assert_eq!(r1, r2, "reparse diverged\n{src}");
    assert_eq!(out1, out2);
}

#[test]
fn demand_prover_never_exceeds_exhaustive_distances() {
    let cases = fuzz_cases(48);
    let mut rng = Rng::new(0xabcd_0004);
    for _ in 0..cases {
        let bytes = rng.bytes(140);
        check_demand_vs_exhaustive(&bytes);
    }
}

fn check_demand_vs_exhaustive(bytes: &[u8]) {
    use abcd::{DemandProver, ExhaustiveDistances, InequalityGraph, Problem, Vertex};
    let src = Gen::new(bytes).program();
    let mut module = compile(&src).unwrap();
    abcd_ssa::module_to_essa(&mut module).unwrap();
    let id = module.functions().next().unwrap().0;
    let func = module.function_mut(id);
    abcd_analysis::cleanup(func);
    abcd_ssa::insert_pi_nodes(func);
    let func = module.function(id);

    for problem in [Problem::Upper, Problem::Lower] {
        let graph = InequalityGraph::build(func, problem, None);
        for b in func.blocks() {
            for &iid in func.block(b).insts() {
                let abcd_ir::InstKind::BoundsCheck { array, index, .. } = func.inst(iid).kind
                else {
                    continue;
                };
                let (source, c) = match problem {
                    Problem::Upper => (Vertex::ArrayLen(array), -1),
                    Problem::Lower => (Vertex::Const(0), 0),
                };
                let mut demand = DemandProver::new(&graph, source);
                if demand.demand_prove(Vertex::Value(index), c) {
                    let ex = ExhaustiveDistances::compute(&graph, source);
                    assert!(
                        ex.proves(&graph, Vertex::Value(index), c),
                        "demand prover overclaims ({problem:?}, {index}) in\n{src}\n{func}"
                    );
                }
            }
        }
    }
}

#[test]
fn range_baseline_is_also_sound() {
    let cases = fuzz_cases(48);
    let mut rng = Rng::new(0xabcd_0005);
    for _ in 0..cases {
        let bytes = rng.bytes(120);
        let data = rng.data(6);
        let x = rng.range(-100, 100);
        check_range_baseline(&bytes, &data, x);
    }
}

fn check_range_baseline(bytes: &[u8], data: &[i64], x: i64) {
    let src = Gen::new(bytes).program();
    let baseline = compile(&src).unwrap();
    let mut optimized = compile(&src).unwrap();
    abcd_ssa::module_to_essa(&mut optimized).unwrap();
    let ids: Vec<_> = optimized.functions().map(|(i, _)| i).collect();
    for id in ids {
        abcd_analysis::eliminate_checks_by_range(optimized.function_mut(id));
    }
    let (r1, out1, _) = run(&baseline, data, x);
    let (r2, out2, _) = run(&optimized, data, x);
    if let Err(k) = &r2 {
        assert!(
            !k.contains("UncheckedAccess"),
            "unsound range removal\n{src}"
        );
    }
    assert_eq!(r1, r2, "range baseline diverged\n{src}");
    assert_eq!(out1, out2);
}

// ---------------------------------------------------------------------------
// Backend parity. The `--prover` engines (demand DFS, batch sweep, DBM
// relaxation, auto selection) are interchangeable by contract: on the same
// options they must produce byte-identical optimized IR and identical
// per-check outcome vectors. The demand prover — the paper's algorithm — is
// the oracle; every other backend is compared against it, across the
// benchsuite kernels, a dedicated fuzz corpus (≥1000 generated functions),
// armed fault plans, and thread counts. Fuel starvation is the one
// dimension where backends legitimately diverge in *cost* (a sweep spends
// its budget differently than a DFS), so there the property is per-backend
// fail-open soundness rather than cross-backend byte-identity.
// ---------------------------------------------------------------------------

use abcd::{FaultPlan, ProverBackend};

const ALL_BACKENDS: [ProverBackend; 4] = [
    ProverBackend::Demand,
    ProverBackend::Batch,
    ProverBackend::Dbm,
    ProverBackend::Auto,
];

/// One full pipeline run of `module` under `backend`; returns the
/// byte-comparable artifacts: optimized IR text, per-function outcome
/// vectors, and the incident-kind sequence.
fn pipeline_artifacts(
    src: &str,
    backend: ProverBackend,
    threads: usize,
    fault: Option<&FaultPlan>,
    options: OptimizerOptions,
) -> (String, Vec<String>, Vec<String>) {
    let mut module = compile(src).expect("program compiles");
    let opts = OptimizerOptions {
        prover: backend,
        ..options
    };
    let mut optimizer = Optimizer::with_options(opts).with_threads(threads);
    if let Some(plan) = fault {
        optimizer = optimizer.with_fault_plan(plan.clone());
    }
    let report = optimizer.optimize_module(&mut module, None);
    let outcomes = report
        .functions
        .iter()
        .map(|f| format!("{}: {:?}", f.name, f.outcomes))
        .collect();
    let incidents = report
        .functions
        .iter()
        .flat_map(|f| f.incidents.iter().map(|i| i.kind_name().to_string()))
        .collect();
    (module.to_string(), outcomes, incidents)
}

/// Asserts that every backend reproduces the demand oracle's artifacts
/// byte-for-byte on `src` under `options` (and optional fault plan).
fn assert_backend_parity(src: &str, fault: Option<&FaultPlan>, options: OptimizerOptions) {
    let oracle = pipeline_artifacts(src, ProverBackend::Demand, 1, fault, options);
    for backend in ALL_BACKENDS {
        let got = pipeline_artifacts(src, backend, 1, fault, options);
        assert_eq!(
            oracle.0,
            got.0,
            "optimized IR diverged: demand vs {}\n{src}",
            backend.name()
        );
        assert_eq!(
            oracle.1,
            got.1,
            "check outcomes diverged: demand vs {}\n{src}",
            backend.name()
        );
        assert_eq!(
            oracle.2,
            got.2,
            "incidents diverged: demand vs {}\n{src}",
            backend.name()
        );
    }
}

/// Every benchsuite kernel, every backend: byte-identical IR and verdicts.
#[test]
fn all_backends_agree_on_the_benchsuite() {
    for bench in abcd_benchsuite::BENCHMARKS {
        assert_backend_parity(bench.source, None, OptimizerOptions::default());
    }
}

/// The headline parity sweep: ≥1000 generated functions through all four
/// backends, demanding byte-identical optimized IR, outcome vectors, and
/// incident sequences. (Each generated program holds three functions —
/// `guarded`, `raw`, and the fuzzed `f` — so the default 340 cases cover
/// 1020 functions.)
#[test]
fn all_backends_agree_on_the_fuzz_corpus() {
    let cases = fuzz_cases(340);
    let mut rng = Rng::new(0xabcd_0006);
    let mut functions = 0usize;
    for case in 0..cases {
        let bytes = rng.bytes(160);
        let src = Gen::new(&bytes).program();
        functions += compile(&src).expect("compiles").functions().count();
        let result = std::panic::catch_unwind(|| {
            assert_backend_parity(&src, None, OptimizerOptions::default());
        });
        if let Err(e) = result {
            panic!("case {case} failed (bytes={bytes:?}): {e:?}");
        }
    }
    if std::env::var("ABCD_FUZZ_CASES").is_err() {
        assert!(functions >= 1000, "corpus too small: {functions} functions");
    }
}

/// Armed fault plans must not break parity: driver-level faults (fuel
/// starvation, pass panics, edge perturbation caught by translation
/// validation) hit every backend identically, because they fire before or
/// after the prover — never inside it.
#[test]
fn all_backends_agree_under_armed_fault_plans() {
    let plans = [
        "fuel:*",
        "panic:*:solve",
        "edge:*:7",
        "fuel:f,panic:guarded:transform",
    ];
    let cases = fuzz_cases(16);
    let mut rng = Rng::new(0xabcd_0007);
    for _ in 0..cases {
        let bytes = rng.bytes(140);
        let src = Gen::new(&bytes).program();
        for spec in plans {
            let plan = FaultPlan::parse(spec).unwrap();
            // Translation validation on, so perturbed-edge runs exercise
            // the reinstatement path in every backend.
            let options = OptimizerOptions {
                validate: true,
                ..OptimizerOptions::default()
            };
            assert_backend_parity(&src, Some(&plan), options);
        }
    }
}

/// Fuel starvation is fail-open for every backend individually: however a
/// backend spends its budget, the optimized program must stay
/// observationally equivalent to the baseline and never admit an unchecked
/// out-of-bounds access. (Cross-backend byte-identity is *not* required
/// here — a sweep's cost model differs from a DFS's, so different checks
/// may starve.)
#[test]
fn fuel_starved_backends_stay_fail_open() {
    let cases = fuzz_cases(24);
    let mut rng = Rng::new(0xabcd_0008);
    for _ in 0..cases {
        let bytes = rng.bytes(140);
        let data = rng.data(6);
        let x = rng.range(-100, 100);
        let src = Gen::new(&bytes).program();
        let baseline = compile(&src).unwrap();
        let (r1, out1, _) = run(&baseline, &data, x);
        for backend in ALL_BACKENDS {
            for (per_query, per_function) in [(Some(3), None), (None, Some(5)), (Some(2), Some(4))]
            {
                let mut optimized = compile(&src).unwrap();
                let opts = OptimizerOptions {
                    prover: backend,
                    fuel_per_query: per_query,
                    fuel_per_function: per_function,
                    ..OptimizerOptions::default()
                };
                Optimizer::with_options(opts).optimize_module(&mut optimized, None);
                let (r2, out2, _) = run(&optimized, &data, x);
                if let Err(k) = &r2 {
                    assert!(
                        !k.contains("UncheckedAccess"),
                        "unsound removal under starved {} backend\n{src}",
                        backend.name()
                    );
                }
                assert_eq!(r1, r2, "starved {} backend diverged\n{src}", backend.name());
                assert_eq!(out1, out2);
            }
        }
    }
}

/// `--jobs` parallelism is a no-op for every backend: a pooled run emits
/// byte-identical IR, outcomes, and incidents to a sequential one.
#[test]
fn every_backend_is_thread_invariant() {
    let cases = fuzz_cases(12);
    let mut rng = Rng::new(0xabcd_0009);
    for _ in 0..cases {
        let bytes = rng.bytes(140);
        let src = Gen::new(&bytes).program();
        for backend in ALL_BACKENDS {
            let seq = pipeline_artifacts(&src, backend, 1, None, OptimizerOptions::default());
            let par = pipeline_artifacts(&src, backend, 4, None, OptimizerOptions::default());
            assert_eq!(
                seq,
                par,
                "parallel {} run diverged from sequential\n{src}",
                backend.name()
            );
        }
    }
}

/// Corpus size per fuzz test, overridable via `ABCD_FUZZ_CASES`.
fn fuzz_cases(default: usize) -> usize {
    std::env::var("ABCD_FUZZ_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

#[test]
fn generator_produces_interesting_programs() {
    // Sanity: a fixed seed yields a program with checks and control flow.
    let bytes: Vec<u8> = (0u8..160)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    let src = Gen::new(&bytes).program();
    let module = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let id = module.functions().next().unwrap().0;
    let (checks, _, _) = module.function(id).count_checks();
    assert!(checks > 0, "{src}");
}

#[test]
fn trap_kinds_match_exactly_on_known_oob() {
    let src = "fn f(a: int[], x: int) -> int { let s: int = 0; s = s + a[x]; return s; }";
    let baseline = compile(src).unwrap();
    let mut optimized = compile(src).unwrap();
    Optimizer::with_options(OptimizerOptions::default()).optimize_module(&mut optimized, None);
    let (r1, _, _) = run(&baseline, &[1, 2], 5);
    let (r2, _, _) = run(&optimized, &[1, 2], 5);
    assert!(r1.is_err());
    assert_eq!(r1, r2);
    assert!(matches!(
        format!("{:?}", TrapKind::DivisionByZero).as_str(),
        "DivisionByZero"
    ));
}

// ---------------------------------------------------------------------------
// Regression seeds. These byte strings are proptest-shrunk counterexamples
// from earlier development (previously stored in
// `prop_differential.proptest-regressions`), promoted to named deterministic
// tests so they survive the removal of the proptest dependency and run on
// every `cargo test`.
// ---------------------------------------------------------------------------

/// Shrunk seed: empty array, zero scalar input.
#[test]
fn seed_regression_empty_data() {
    let bytes = [
        0, 179, 72, 5, 0, 1, 219, 4, 21, 21, 0, 0, 7, 0, 47, 151, 52, 0, 0, 0, 43, 127, 3, 182,
    ];
    check_observational_equivalence(&bytes, &[], 0);
}

/// Shrunk seed: single-element array.
#[test]
fn seed_regression_single_element() {
    let bytes = [
        73, 23, 150, 104, 111, 1, 0, 37, 1, 206, 79, 204, 125, 21, 121, 0, 178, 32, 81, 1, 1, 44,
        56, 198, 163, 22, 97, 1, 0, 93, 1, 135, 1, 159, 1, 0, 69, 1, 30, 4, 19, 28, 0, 5, 101, 178,
        80, 87, 17, 13, 97, 9, 21, 1, 24, 73, 53, 87, 89, 0, 8, 54, 109,
    ];
    check_observational_equivalence(&bytes, &[0], 0);
}

/// Shrunk seed: structural property without VM inputs (pipeline stages
/// and prover-vs-exhaustive agreement).
#[test]
fn seed_regression_structural_1() {
    let bytes = [
        0, 164, 0, 55, 0, 1, 101, 54, 1, 8, 37, 165, 134, 112, 0, 0, 0, 41, 158, 0, 14, 0, 76, 115,
        0, 1, 0, 0, 0, 151, 4, 0, 187, 104, 0, 46, 110, 45, 152, 16, 76, 1, 0, 1, 0, 47, 0, 0, 1,
        0, 61, 0, 0, 157, 239, 180, 187,
    ];
    check_pipeline_stages(&bytes);
    check_demand_vs_exhaustive(&bytes);
    check_observational_equivalence(&bytes, &[], 0);
}

/// Shrunk seed: structural property without VM inputs.
#[test]
fn seed_regression_structural_2() {
    let bytes = [
        22, 108, 0, 0, 106, 16, 178, 53, 60, 3, 47, 0, 1, 0, 0, 1, 9, 0, 0, 114, 39, 17, 13, 221,
        32, 0, 0, 134, 9, 154, 0, 0, 0, 0, 0, 0, 0,
    ];
    check_pipeline_stages(&bytes);
    check_demand_vs_exhaustive(&bytes);
    check_observational_equivalence(&bytes, &[], 0);
}
