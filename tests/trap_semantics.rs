//! Trap-semantics coverage (PR: fail-open optimizer): optimization must
//! preserve *failure* behavior exactly — which access traps, with which
//! variant and observable data — not just the happy path. The VM
//! differential oracle is the witness, and the last test shows the oracle
//! has teeth: a hand-falsified "optimization" (deleting an unprovable
//! check) is reported as a divergence.

use abcd::oracle::{differential, run_entry, Divergence};
use abcd::{Optimizer, OptimizerOptions};
use abcd_ir::{InstKind, Module};
use abcd_vm::TrapKind;

fn optimized(source: &str) -> (Module, abcd::ModuleReport) {
    let mut module = abcd_frontend::compile(source).expect("program compiles");
    let report = Optimizer::with_options(OptimizerOptions {
        verify_ir: true,
        validate: true,
        ..OptimizerOptions::default()
    })
    .optimize_module(&mut module, None);
    (module, report)
}

fn assert_preserved(source: &str) -> Module {
    let reference = abcd_frontend::compile(source).unwrap();
    let (module, _) = optimized(source);
    if let Some(div) = differential(&reference, &module, "main") {
        panic!("optimization changed observable behavior: {div}\nsource:\n{source}");
    }
    module
}

/// Boundary accesses around both ends of an array: the first and last
/// element are fine; one past either end traps — identically before and
/// after optimization, including the trap's index/length data.
#[test]
fn boundary_accesses_trap_identically() {
    // In bounds: a[0] and a[len-1].
    let module = assert_preserved(
        "fn main() -> int {
             let a: int[] = new int[4];
             a[0] = 7;
             a[a.length - 1] = 9;
             return a[0] + a[3];
         }",
    );
    assert!(run_entry(&module, "main").result.is_ok());

    // One past the end: a[len].
    let module = assert_preserved(
        "fn main() -> int {
             let a: int[] = new int[4];
             let i: int = a.length;
             return a[i];
         }",
    );
    let trap = run_entry(&module, "main").result.unwrap_err();
    assert!(
        matches!(
            trap.kind,
            TrapKind::BoundsCheckFailed {
                index: 4,
                len: 4,
                ..
            }
        ),
        "expected upper-bound trap, got {:?}",
        trap.kind
    );

    // One before the start: a[-1].
    let module = assert_preserved(
        "fn main() -> int {
             let a: int[] = new int[4];
             let i: int = 0 - 1;
             return a[i];
         }",
    );
    let trap = run_entry(&module, "main").result.unwrap_err();
    assert!(
        matches!(
            trap.kind,
            TrapKind::BoundsCheckFailed {
                index: -1,
                len: 4,
                ..
            }
        ),
        "expected lower-bound trap, got {:?}",
        trap.kind
    );
}

/// A loop that overruns by one (`i <= length`): ABCD correctly refuses to
/// remove the check, and the retained check traps at exactly the same
/// iteration with the same data as in the unoptimized program.
#[test]
fn retained_checks_preserve_the_trapping_iteration() {
    let source = "fn main() -> int {
             let a: int[] = new int[8];
             let s: int = 0;
             for (let i: int = 0; i <= a.length; i = i + 1) {
                 s = s + a[i];
             }
             return s;
         }";
    let module = assert_preserved(source);
    let trap = run_entry(&module, "main").result.unwrap_err();
    assert!(
        matches!(
            trap.kind,
            TrapKind::BoundsCheckFailed {
                index: 8,
                len: 8,
                ..
            }
        ),
        "got {:?}",
        trap.kind
    );
}

/// The §6 compare/trap split under an *actually failing* hoisted check: the
/// compensating `SpecCheck` sets the flag, and the demoted residual
/// `TrapIfFlagged` re-validates before trapping — so the program still
/// traps with full bounds-check fidelity (variant, index, length) even
/// though the hot-path check was hoisted out of the loop.
#[test]
fn hoisted_checks_keep_trap_fidelity() {
    // The §6 shape from the paper (unknown bound `n` feeding a scanned
    // limit), driven past the end of the array so the hoisted check fails.
    let source = "fn scan(a: int[], n: int) -> int {
             let limit: int = n;
             let st: int = 0 - 1;
             let s: int = 0;
             while (st < limit) {
                 st = st + 1;
                 limit = limit - 1;
                 for (let j: int = st; j < limit; j = j + 1) {
                     s = s + a[j];
                 }
             }
             return s;
         }
         fn main() -> int {
             let a: int[] = new int[4];
             return scan(a, 100);
         }";
    let reference = abcd_frontend::compile(source).unwrap();
    let (module, report) = optimized(source);
    assert!(
        report.checks_hoisted() > 0,
        "the loop-invariant check was expected to be PRE-hoisted"
    );
    assert!(differential(&reference, &module, "main").is_none());
    let trap = run_entry(&module, "main").result.unwrap_err();
    assert!(
        matches!(
            trap.kind,
            TrapKind::BoundsCheckFailed {
                index: 4,
                len: 4,
                ..
            }
        ),
        "residual trap lost fidelity: {:?}",
        trap.kind
    );
}

/// The oracle has teeth: delete an unprovable bounds check by hand (the
/// miscompilation a buggy optimizer would commit) and the differential
/// reports it — the sabotaged module raises the unchecked-access variant
/// where the reference raised a proper bounds-check trap.
#[test]
fn oracle_catches_a_wrongly_eliminated_check() {
    let source = "fn main() -> int {
             let a: int[] = new int[4];
             let i: int = a.length;
             return a[i];
         }";
    let reference = abcd_frontend::compile(source).unwrap();
    let mut sabotaged = abcd_frontend::compile(source).unwrap();
    let ids: Vec<_> = sabotaged.functions().map(|(id, _)| id).collect();
    let mut removed = 0usize;
    for id in ids {
        let func = sabotaged.function_mut(id);
        let checks: Vec<_> = func
            .blocks()
            .flat_map(|b| {
                func.block(b)
                    .insts()
                    .iter()
                    .filter(|&&i| matches!(func.inst(i).kind, InstKind::BoundsCheck { .. }))
                    .map(move |&i| (b, i))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (b, i) in checks {
            func.remove_inst(b, i);
            removed += 1;
        }
    }
    assert!(removed > 0, "test needs a check to falsify");

    match differential(&reference, &sabotaged, "main") {
        Some(Divergence::Result {
            reference: want,
            candidate: got,
        }) => {
            assert!(matches!(
                want.result.as_ref().unwrap_err().kind,
                TrapKind::BoundsCheckFailed { .. }
            ));
            assert!(matches!(
                got.result.as_ref().unwrap_err().kind,
                TrapKind::UncheckedAccessOutOfBounds { .. }
            ));
        }
        other => panic!("oracle missed the miscompilation: {other:?}"),
    }
}
