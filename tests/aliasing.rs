//! The paper's §7.3 aliasing discussion, as executable tests.
//!
//! §7.3 argues ABCD is alias-safe in a strongly typed language because SSA
//! def-use edges only connect an array use to its unique definition, and
//! memory loads are treated as defining unknown arrays. These tests pin
//! that behavior down, including the interaction with the load-congruence
//! extension (§7.1), which must never unify loads across a store.

use abcd::Optimizer;
use abcd_frontend::compile;
use abcd_vm::{RtVal, TrapKind, Vm};

/// §7.3, first example: local variables cannot alias.
///
/// ```java
/// x = new int[10]; y = x; y = new int[1]; x[2];  // passes bounds check
/// ```
#[test]
fn local_rebinding_does_not_alias() {
    let src = r#"
        fn f() -> int {
            let x: int[] = new int[10];
            let y: int[] = x;
            y = new int[1];
            x[2] = 7;
            return x[2] + y.length;
        }
    "#;
    let baseline = compile(src).unwrap();
    let mut optimized = compile(src).unwrap();
    let report = Optimizer::new().optimize_module(&mut optimized, None);
    // x[2] against new int[10] is provable (constant potentials).
    assert!(report.checks_removed_fully() >= 2, "{report:#?}");

    let mut vm = Vm::new(&optimized);
    assert_eq!(vm.call_by_name("f", &[]).unwrap(), Some(RtVal::Int(8)));
    let mut vm = Vm::new(&baseline);
    assert_eq!(vm.call_by_name("f", &[]).unwrap(), Some(RtVal::Int(8)));
}

/// §7.3, second example: heap slots *can* alias, and the re-load after the
/// aliased store must see the short array — the check on `m0[2]` must stay
/// and must trap.
///
/// ```java
/// x.f = new int[10]; y = x; y.f = new int[1]; x.f[2];  // fails!
/// ```
#[test]
fn heap_slot_aliasing_is_respected() {
    let src = r#"
        fn f(m: int[][]) -> int {
            m[0] = new int[10];
            let y: int[][] = m;      // y aliases m
            y[0] = new int[1];       // overwrites the slot through the alias
            let row: int[] = m[0];   // reloads: the length-1 array
            return row[2];           // out of bounds!
        }
    "#;
    let baseline = compile(src).unwrap();
    let mut optimized = compile(src).unwrap();
    Optimizer::new().optimize_module(&mut optimized, None);

    for module in [&baseline, &optimized] {
        let mut vm = Vm::new(module);
        let outer = {
            let row = vm.alloc_int_array(&[0]);
            vm.alloc_ref_array(&[row])
        };
        let err = vm.call_by_name("f", &[outer]).unwrap_err();
        assert!(
            matches!(
                err.kind,
                TrapKind::BoundsCheckFailed {
                    index: 2,
                    len: 1,
                    ..
                }
            ),
            "must trap on the aliased short row, got {err:?}"
        );
    }
}

/// Load congruence (§7.1 extension) must not unify loads across a store to
/// any array — the stored-to slot may be the loaded one.
#[test]
fn load_congruence_is_killed_by_stores() {
    let src = r#"
        fn f(m: int[][], k: int, i: int, short: int[]) -> int {
            let r1: int[] = m[k];
            m[k] = short;            // may replace the row
            let r2: int[] = m[k];    // NOT congruent with r1
            if (i >= 0) {
                if (i < r1.length) {
                    return r2[i];    // r1's length says nothing about r2
                }
            }
            return 0;
        }
    "#;
    let baseline = compile(src).unwrap();
    let mut optimized = compile(src).unwrap();
    Optimizer::new().optimize_module(&mut optimized, None);

    // With a long r1 and a short r2, i=2 is in r1's bounds but not r2's:
    // both versions must trap identically.
    for module in [&baseline, &optimized] {
        let mut vm = Vm::new(module);
        let long = vm.alloc_int_array(&[1, 2, 3, 4]);
        let short = vm.alloc_int_array(&[9]);
        let outer = vm.alloc_ref_array(&[long]);
        let err = vm
            .call_by_name("f", &[outer, RtVal::Int(0), RtVal::Int(2), short])
            .unwrap_err();
        assert!(
            matches!(
                err.kind,
                TrapKind::BoundsCheckFailed {
                    index: 2,
                    len: 1,
                    ..
                }
            ),
            "{err:?}"
        );
    }
}

/// The positive counterpart: with no intervening store, the two loads are
/// congruent and the §7.1 hook removes the check (tested functionally —
/// same result, fewer checks — not just via the report).
#[test]
fn load_congruence_without_store_enables_removal() {
    let src = r#"
        fn f(m: int[][], k: int, i: int) -> int {
            let r1: int[] = m[k];
            let r2: int[] = m[k];
            if (i >= 0) {
                if (i < r1.length) {
                    return r2[i];
                }
            }
            return 0;
        }
    "#;
    let baseline = compile(src).unwrap();
    let mut optimized = compile(src).unwrap();
    let report = Optimizer::new().optimize_module(&mut optimized, None);
    assert!(report.checks_removed_fully() >= 2, "{report:#?}");

    for module in [&baseline, &optimized] {
        let mut vm = Vm::new(module);
        let row = vm.alloc_int_array(&[5, 6, 7]);
        let outer = vm.alloc_ref_array(&[row]);
        let r = vm
            .call_by_name("f", &[outer, RtVal::Int(0), RtVal::Int(2)])
            .unwrap();
        assert_eq!(r, Some(RtVal::Int(7)));
    }
}
