//! Translation validation (PR: fail-open optimizer): every elimination and
//! hoist is independently re-justified against constraint graphs rebuilt
//! from the final e-SSA form. On honest runs the validator must be a
//! no-op (everything re-proves, nothing is touched); when the constraint
//! system is corrupted it must reinstate exactly the eliminations it can
//! no longer justify, restoring soundness.

use abcd::{CheckOutcome, FaultPlan, Incident, ModuleReport, Optimizer, OptimizerOptions};
use abcd_ir::Module;

/// Canonical printed form of a module — the byte-identity witness.
fn dump(m: &Module) -> String {
    m.functions().map(|(_, f)| format!("{f}\n")).collect()
}

fn optimize(
    bench: &abcd_benchsuite::Benchmark,
    options: OptimizerOptions,
    plan: &str,
) -> (Module, ModuleReport) {
    let mut module = bench.compile().expect("benchmark compiles");
    let report = Optimizer::with_options(options)
        .with_fault_plan(FaultPlan::parse(plan).expect("plan parses"))
        .optimize_module(&mut module, None);
    (module, report)
}

/// On unfaulted runs validation re-proves every single change — zero
/// reinstatements across the whole suite (an acceptance criterion of the
/// fail-open PR) — and leaves the optimized IR byte-identical to a run
/// with validation disabled.
#[test]
fn unfaulted_validation_is_a_sound_no_op_on_the_whole_suite() {
    let base = OptimizerOptions {
        verify_ir: true,
        ..OptimizerOptions::default()
    };
    let validated = OptimizerOptions {
        validate: true,
        ..base
    };
    let mut total_validated = 0usize;
    for bench in abcd_benchsuite::BENCHMARKS {
        let (plain_module, _) = optimize(bench, base, "");
        let (val_module, report) = optimize(bench, validated, "");
        assert_eq!(
            dump(&plain_module),
            dump(&val_module),
            "{}: validation changed IR on an honest run",
            bench.name
        );
        assert_eq!(
            report.checks_reinstated(),
            0,
            "{}: honest eliminations failed revalidation",
            bench.name
        );
        assert_eq!(
            report.incident_count(),
            0,
            "{}: unexpected incidents",
            bench.name
        );
        // Every recorded change was re-proven, none skipped.
        for f in &report.functions {
            assert_eq!(
                f.checks_validated,
                f.eliminated.len() + f.hoisted_checks.len(),
                "{}/{}: validated count does not cover every change",
                bench.name,
                f.name
            );
        }
        total_validated += report.checks_validated();
    }
    assert!(
        total_validated > 100,
        "suspiciously few validated checks across the suite: {total_validated}"
    );
}

/// Known deterministic edge-perturbation seeds flip provability statically
/// (the benchsuite never actually traps, so only the validator can see the
/// corruption): validation must reinstate at least one check, mark its
/// outcome, record a degraded incident, and the shipped module must still
/// agree with the unoptimized program.
#[test]
fn corrupted_graphs_force_reinstatements_that_stay_sound() {
    let options = OptimizerOptions {
        verify_ir: true,
        validate: true,
        ..OptimizerOptions::default()
    };
    for (name, seed) in [
        ("mpeg", 2u64),
        ("qsort", 3),
        ("dhrystone", 0),
        ("bytemark", 0),
    ] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        let plan = format!("edge:*:{seed}");
        let (module, report) = optimize(bench, options, &plan);
        assert!(
            report.checks_reinstated() > 0,
            "{name}: seed {seed} is known to flip a proof, yet nothing was reinstated"
        );
        assert!(
            report
                .incidents()
                .any(|i| matches!(i, Incident::ValidationReinstated { .. })),
            "{name}: reinstatement must surface as an incident"
        );
        assert!(
            report.degraded_incident_count() > 0,
            "{name}: a reinstatement is a degraded outcome"
        );
        let reinstated_outcomes = report
            .functions
            .iter()
            .flat_map(|f| &f.outcomes)
            .filter(|(_, _, o)| matches!(o, CheckOutcome::Reinstated))
            .count();
        assert!(
            reinstated_outcomes > 0,
            "{name}: reinstated sites must be visible in per-check outcomes"
        );
        let reference = bench.compile().unwrap();
        assert!(
            abcd::oracle::differential(&reference, &module, "main").is_none(),
            "{name}: module diverged after reinstatement under `{plan}`"
        );
    }
}

/// The reinstated check is real: running the repaired module re-executes
/// the bounds check dynamically (the check count goes back up relative to
/// the unvalidated, corrupted run).
#[test]
fn reinstatement_restores_dynamic_checks() {
    let options = OptimizerOptions {
        verify_ir: true,
        validate: true,
        ..OptimizerOptions::default()
    };
    let unvalidated = OptimizerOptions {
        validate: false,
        ..options
    };
    let bench = abcd_benchsuite::by_name("bytemark").unwrap();
    let plan = "edge:*:0";
    let (corrupted, _) = optimize(bench, unvalidated, plan);
    let (repaired, report) = optimize(bench, options, plan);
    assert!(report.checks_reinstated() > 0);

    let dynamic_checks = |m: &Module| {
        let mut vm = abcd_vm::Vm::new(m);
        vm.call_by_name("main", &[]).expect("benchmark runs");
        vm.stats().dynamic_checks_total()
    };
    assert!(
        dynamic_checks(&repaired) > dynamic_checks(&corrupted),
        "reinstatement must put real dynamic checks back"
    );
}
