//! Integration tests for the paper's headline claims.
//!
//! * Figure 1: "ABCD can eliminate all four bound checks in this example"
//!   (bidirectional bubble sort).
//! * §6: removing `limit := a.length` makes `check a[j]` partially
//!   redundant; ABCD hoists it with a compensating check.
//! * Soundness: optimized programs behave identically, including on
//!   adversarial inputs.

use abcd::{Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_vm::{RtVal, Vm};

/// The paper's running example (Figure 1), transliterated to MJ.
const BIDIR_BUBBLE: &str = r#"
    fn sort(a: int[]) {
        let limit: int = a.length;
        let st: int = 0 - 1;
        while (st < limit) {
            st = st + 1;
            limit = limit - 1;
            for (let j: int = st; j < limit; j = j + 1) {
                if (a[j] > a[j + 1]) {
                    let t: int = a[j];
                    a[j] = a[j + 1];
                    a[j + 1] = t;
                }
            }
            let k: int = limit - 1;
            while (k >= st) {
                if (a[k] > a[k + 1]) {
                    let t: int = a[k];
                    a[k] = a[k + 1];
                    a[k + 1] = t;
                }
                k = k - 1;
            }
        }
    }
    fn main() -> int {
        let a: int[] = new int[16];
        let seed: int = 7;
        for (let i: int = 0; i < a.length; i = i + 1) {
            seed = (seed * 1103515245 + 12345) % 65536;
            a[i] = seed;
        }
        sort(a);
        let sum: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) {
            print(a[i]);
            sum = sum + a[i] * (i + 1);
        }
        return sum;
    }
"#;

#[test]
fn figure1_all_bubble_sort_checks_removed() {
    let mut module = compile(BIDIR_BUBBLE).unwrap();
    let report = Optimizer::new().optimize_module(&mut module, None);

    let sort_report = report
        .functions
        .iter()
        .find(|f| f.name == "sort")
        .expect("sort function report");
    // Figure 1 has 4 array accesses in each direction's loop… our MJ version
    // performs 6 accesses per loop body (condition + swap), each with a
    // lower and an upper check. The paper's claim is that *all* of them are
    // eliminated.
    assert_eq!(
        sort_report.removed_fully(),
        sort_report.checks_total,
        "not all checks removed in sort:\n{:#?}",
        sort_report.outcomes
    );
    let sort_id = module.function_by_name("sort").unwrap();
    assert_eq!(module.function(sort_id).count_checks(), (0, 0, 0));
}

#[test]
fn figure1_semantics_preserved() {
    let baseline = compile(BIDIR_BUBBLE).unwrap();
    let mut optimized = compile(BIDIR_BUBBLE).unwrap();
    Optimizer::new().optimize_module(&mut optimized, None);

    let mut vm1 = Vm::new(&baseline);
    let r1 = vm1.call_by_name("main", &[]).unwrap();
    let mut vm2 = Vm::new(&optimized);
    let r2 = vm2.call_by_name("main", &[]).unwrap();

    assert_eq!(r1, r2);
    assert_eq!(vm1.output(), vm2.output());
    // The output is sorted.
    let out = vm1.output().to_vec();
    let mut sorted = out.clone();
    sorted.sort();
    assert_eq!(out, sorted);
    // And the optimized run needs dramatically fewer dynamic checks.
    assert!(vm1.stats().dynamic_checks_total() > 0);
    assert_eq!(
        vm2.stats().dynamic_checks_total(),
        // main's own generator loop checks are also removed; everything is.
        0,
        "dynamic checks remain: {:?}",
        vm2.stats()
    );
}

/// §6 of the paper: replace `limit := a.length` with an unknown bound.
const PARTIAL_BUBBLE: &str = r#"
    fn scan(a: int[], n: int) -> int {
        let limit: int = n;
        let st: int = 0 - 1;
        let s: int = 0;
        while (st < limit) {
            st = st + 1;
            limit = limit - 1;
            for (let j: int = st; j < limit; j = j + 1) {
                s = s + a[j];
            }
        }
        return s;
    }
"#;

#[test]
fn section6_partially_redundant_check_is_hoisted() {
    let mut module = compile(PARTIAL_BUBBLE).unwrap();
    let report = Optimizer::new().optimize_module(&mut module, None);
    let f = &report.functions[0];
    assert!(
        f.hoisted() >= 1,
        "expected at least one hoisted check:\n{:#?}",
        f.outcomes
    );
    assert!(f.spec_checks_inserted >= 1);
    // The transformed function contains spec_check + trap_if_flagged.
    let id = module.function_by_name("scan").unwrap();
    let (_, spec, traps) = module.function(id).count_checks();
    assert!(spec >= 1, "{}", module.function(id));
    assert!(traps >= 1);
}

#[test]
fn section6_transformation_preserves_semantics() {
    let baseline = compile(PARTIAL_BUBBLE).unwrap();
    let mut optimized = compile(PARTIAL_BUBBLE).unwrap();
    Optimizer::new().optimize_module(&mut optimized, None);

    // n smaller than, equal to, and larger than a.length — the last ones
    // trap in the baseline and must trap identically after optimization.
    for n in [0i64, 3, 8, 9, 20] {
        let mut vm1 = Vm::new(&baseline);
        let a1 = vm1.alloc_int_array(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let r1 = vm1.call_by_name("scan", &[a1, RtVal::Int(n)]);
        let mut vm2 = Vm::new(&optimized);
        let a2 = vm2.alloc_int_array(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let r2 = vm2.call_by_name("scan", &[a2, RtVal::Int(n)]);
        match (&r1, &r2) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "n={n}"),
            (Err(e1), Err(e2)) => {
                // Same kind of failure at the same site.
                assert_eq!(format!("{:?}", e1.kind), format!("{:?}", e2.kind), "n={n}");
            }
            other => panic!("divergence at n={n}: {other:?}"),
        }
    }
}

#[test]
fn optimizer_never_unsound_on_empty_arrays() {
    // The classic speculation hazard: empty array, zero-trip loop.
    let src = r#"
        fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            return s;
        }
    "#;
    let mut module = compile(src).unwrap();
    Optimizer::new().optimize_module(&mut module, None);
    let mut vm = Vm::new(&module);
    let empty = vm.alloc_int_array(&[]);
    assert_eq!(vm.call_by_name("f", &[empty]).unwrap(), Some(RtVal::Int(0)));
}

#[test]
fn disabled_passes_are_respected() {
    let src = "fn f(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }";
    let mut module = compile(src).unwrap();
    let opts = OptimizerOptions {
        upper: false,
        lower: false,
        ..OptimizerOptions::default()
    };
    let report = Optimizer::with_options(opts).optimize_module(&mut module, None);
    assert_eq!(report.checks_removed_fully(), 0);
    let id = module.function_by_name("f").unwrap();
    assert_eq!(module.function(id).count_checks(), (2, 0, 0));
}
