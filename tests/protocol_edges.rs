//! Protocol edge cases, driven over a raw socket so the bytes on the
//! wire are exactly what the test says: a truncated length prefix, a
//! frame at / one past the 64 MiB cap, a zero-length frame, and garbage
//! where a header should be. Every case must produce a structured error
//! (or a clean close for unanswerable garbage) and leave the daemon
//! healthy — no wedged worker, no poisoned state.

use abcd_server::proto::MAX_FRAME;
use abcd_server::ServerConfig;
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;

fn sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcdd-edge-{}-{tag}.sock", std::process::id()))
}

fn ping_eventually(socket: &std::path::Path) -> bool {
    for _ in 0..100 {
        if abcd_server::ping(socket) {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    false
}

/// Sends raw bytes, half-closes the write side, and returns everything
/// the server sends back (empty = the server just closed).
fn send_raw(socket: &std::path::Path, bytes: &[u8]) -> Vec<u8> {
    let mut conn = UnixStream::connect(socket).expect("connect");
    conn.write_all(bytes).expect("send");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = Vec::new();
    let _ = conn.read_to_end(&mut reply);
    reply
}

/// Parses one reply frame and asserts it is a structured `"ok":false`
/// error mentioning `needle`, followed by a clean close.
fn assert_error_frame(reply: &[u8], needle: &str, what: &str) {
    assert!(reply.len() >= 4, "{what}: no frame in reply");
    let len = u32::from_be_bytes(reply[..4].try_into().unwrap()) as usize;
    let body = &reply[4..];
    assert_eq!(
        body.len(),
        len,
        "{what}: frame length mismatch (no trailing bytes)"
    );
    let text = std::str::from_utf8(body).expect("reply is UTF-8");
    assert!(text.starts_with("{\"ok\":false"), "{what}: {text}");
    assert!(
        text.contains(needle),
        "{what}: expected `{needle}` in {text}"
    );
}

#[test]
fn hostile_frames_get_structured_errors_and_the_daemon_stays_healthy() {
    let socket = sock("hostile");
    let handle = abcd_server::start(ServerConfig::new(&socket)).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    // A length prefix cut off mid-header: unanswerable in-protocol (the
    // request never materialized), but it must still be answered with a
    // structured frame, not silence.
    let reply = send_raw(&socket, &[0x00, 0x01]);
    assert_error_frame(&reply, "bad frame", "truncated length prefix");

    // Zero-length frame: a valid header for an empty body, which is not
    // a JSON document.
    let reply = send_raw(&socket, &0u32.to_be_bytes());
    assert_error_frame(&reply, "bad JSON", "zero-length frame");

    // One byte over the cap: rejected from the prefix alone, before any
    // allocation; the advertised payload is never read.
    let reply = send_raw(&socket, &(MAX_FRAME + 1).to_be_bytes());
    assert_error_frame(&reply, "exceeds", "frame one over the cap");

    // Garbage where a header should be: decodes as a ~1.1 GiB length,
    // which the cap rejects the same way.
    let reply = send_raw(&socket, b"GARBAGE!then{\"cmd\":\"ping\"}");
    assert_error_frame(&reply, "exceeds", "garbage before a valid frame");

    // The daemon took all of that without wedging a worker.
    assert!(
        ping_eventually(&socket),
        "daemon healthy after hostile frames"
    );

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// A frame of exactly `MAX_FRAME` bytes is read in full (the cap is
/// inclusive); its gibberish payload then fails *parsing*, proving the
/// frame layer accepted it.
#[test]
fn frame_exactly_at_the_cap_is_read_and_parse_rejected() {
    let socket = sock("atcap");
    let mut config = ServerConfig::new(&socket);
    // 64 MiB over a local socket pair can outlast the default frame
    // timeout on a slow CI box; give it room.
    config.io_timeout = Some(std::time::Duration::from_secs(120));
    let handle = abcd_server::start(config).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    let mut conn = UnixStream::connect(&socket).expect("connect");
    conn.write_all(&MAX_FRAME.to_be_bytes()).expect("header");
    // Stream the body in chunks so the test never holds 64 MiB twice.
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..(MAX_FRAME as usize / chunk.len()) {
        conn.write_all(&chunk).expect("body");
    }
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = Vec::new();
    let _ = conn.read_to_end(&mut reply);
    assert_error_frame(&reply, "bad JSON", "frame exactly at the cap");

    assert!(
        ping_eventually(&socket),
        "daemon healthy after a max-size frame"
    );
    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}
