//! Protocol edge cases, driven over a raw socket so the bytes on the
//! wire are exactly what the test says: a truncated length prefix, a
//! frame at / one past the 64 MiB cap, a zero-length frame, and garbage
//! where a header should be — plus the protocol-v2 batch edges: the
//! empty batch, the at-cap batch frame, mixed v1/v2 clients on one
//! socket, and a deadline tripping for one batch element only. Every
//! case must produce a structured error (or a clean close for
//! unanswerable garbage) and leave the daemon healthy — no wedged
//! worker, no poisoned state.

use abcd_server::proto::MAX_FRAME;
use abcd_server::ServerConfig;
use std::io::{Read, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;

fn sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcdd-edge-{}-{tag}.sock", std::process::id()))
}

fn ping_eventually(socket: &std::path::Path) -> bool {
    for _ in 0..100 {
        if abcd_server::ping(socket) {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    false
}

/// Sends raw bytes, half-closes the write side, and returns everything
/// the server sends back (empty = the server just closed).
fn send_raw(socket: &std::path::Path, bytes: &[u8]) -> Vec<u8> {
    let mut conn = UnixStream::connect(socket).expect("connect");
    conn.write_all(bytes).expect("send");
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = Vec::new();
    let _ = conn.read_to_end(&mut reply);
    reply
}

/// Parses one reply frame and asserts it is a structured `"ok":false`
/// error mentioning `needle`, followed by a clean close.
fn assert_error_frame(reply: &[u8], needle: &str, what: &str) {
    assert!(reply.len() >= 4, "{what}: no frame in reply");
    let len = u32::from_be_bytes(reply[..4].try_into().unwrap()) as usize;
    let body = &reply[4..];
    assert_eq!(
        body.len(),
        len,
        "{what}: frame length mismatch (no trailing bytes)"
    );
    let text = std::str::from_utf8(body).expect("reply is UTF-8");
    assert!(text.starts_with("{\"ok\":false"), "{what}: {text}");
    assert!(
        text.contains(needle),
        "{what}: expected `{needle}` in {text}"
    );
}

#[test]
fn hostile_frames_get_structured_errors_and_the_daemon_stays_healthy() {
    let socket = sock("hostile");
    let handle = abcd_server::start(ServerConfig::new(&socket)).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    // A length prefix cut off mid-header: unanswerable in-protocol (the
    // request never materialized), but it must still be answered with a
    // structured frame, not silence.
    let reply = send_raw(&socket, &[0x00, 0x01]);
    assert_error_frame(&reply, "bad frame", "truncated length prefix");

    // Zero-length frame: a valid header for an empty body, which is not
    // a JSON document.
    let reply = send_raw(&socket, &0u32.to_be_bytes());
    assert_error_frame(&reply, "bad JSON", "zero-length frame");

    // One byte over the cap: rejected from the prefix alone, before any
    // allocation; the advertised payload is never read.
    let reply = send_raw(&socket, &(MAX_FRAME + 1).to_be_bytes());
    assert_error_frame(&reply, "exceeds", "frame one over the cap");

    // Garbage where a header should be: decodes as a ~1.1 GiB length,
    // which the cap rejects the same way.
    let reply = send_raw(&socket, b"GARBAGE!then{\"cmd\":\"ping\"}");
    assert_error_frame(&reply, "exceeds", "garbage before a valid frame");

    // The daemon took all of that without wedging a worker.
    assert!(
        ping_eventually(&socket),
        "daemon healthy after hostile frames"
    );

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// A frame of exactly `MAX_FRAME` bytes is read in full (the cap is
/// inclusive); its gibberish payload then fails *parsing*, proving the
/// frame layer accepted it.
#[test]
fn frame_exactly_at_the_cap_is_read_and_parse_rejected() {
    let socket = sock("atcap");
    let mut config = ServerConfig::new(&socket);
    // 64 MiB over a local socket pair can outlast the default frame
    // timeout on a slow CI box; give it room.
    config.io_timeout = Some(std::time::Duration::from_secs(120));
    let handle = abcd_server::start(config).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    let mut conn = UnixStream::connect(&socket).expect("connect");
    conn.write_all(&MAX_FRAME.to_be_bytes()).expect("header");
    // Stream the body in chunks so the test never holds 64 MiB twice.
    let chunk = vec![b'x'; 1 << 20];
    for _ in 0..(MAX_FRAME as usize / chunk.len()) {
        conn.write_all(&chunk).expect("body");
    }
    conn.shutdown(Shutdown::Write).expect("half-close");
    let mut reply = Vec::new();
    let _ = conn.read_to_end(&mut reply);
    assert_error_frame(&reply, "bad JSON", "frame exactly at the cap");

    assert!(
        ping_eventually(&socket),
        "daemon healthy after a max-size frame"
    );
    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

const SRC: &str = "fn f(a: int[]) -> int {
    let s: int = 0;
    for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
    return s;
}
fn main() -> int { return 0; }
";

fn optimize_body(deadline_ms: Option<u64>) -> String {
    abcd_server::proto::optimize_request_json(
        (SRC, false),
        &abcd::OptimizerOptions::default(),
        None,
        false,
        false,
        false,
        deadline_ms,
    )
}

/// The zero-request batch `[]` is in-protocol but meaningless: it must be
/// a structured error, not zero reply frames (which a pipelining client
/// could not distinguish from a hang).
#[test]
fn zero_request_batch_is_a_structured_error() {
    let socket = sock("emptybatch");
    let handle = abcd_server::start(ServerConfig::new(&socket)).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    let mut framed = Vec::new();
    abcd_server::proto::write_frame(&mut framed, b"[]").unwrap();
    let reply = send_raw(&socket, &framed);
    assert_error_frame(&reply, "empty batch", "zero-request batch");

    // Batching a non-optimize command is equally structured.
    let mut framed = Vec::new();
    abcd_server::proto::write_frame(&mut framed, b"[{\"cmd\":\"ping\"}]").unwrap();
    let reply = send_raw(&socket, &framed);
    assert_error_frame(&reply, "only `optimize`", "batched ping");

    assert!(ping_eventually(&socket), "daemon healthy after batch edges");
    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// A *valid* batch frame padded with JSON whitespace to exactly
/// `MAX_FRAME` bytes is accepted (the cap is inclusive for v2 too) and
/// streams its replies in order; one byte more is rejected from the
/// length prefix alone, before any allocation.
#[test]
fn batch_frame_at_and_over_the_cap() {
    let socket = sock("batchcap");
    let mut config = ServerConfig::new(&socket);
    // 64 MiB over a local socket can outlast the default frame timeout
    // on a slow CI box.
    config.io_timeout = Some(std::time::Duration::from_secs(120));
    let handle = abcd_server::start(config).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    // Over the cap: the prefix alone sinks it, batch or not.
    let reply = send_raw(&socket, &(MAX_FRAME + 1).to_be_bytes());
    assert_error_frame(&reply, "exceeds", "batch frame one over the cap");

    // At the cap: two real optimize elements plus whitespace padding.
    let bodies = vec![optimize_body(None), optimize_body(None)];
    let mut batch = abcd_server::proto::batch_request_json(&bodies);
    let pad = MAX_FRAME as usize - batch.len();
    batch.truncate(batch.len() - 1); // drop the closing ]
    batch.extend(std::iter::repeat_n(' ', pad));
    batch.push(']');
    assert_eq!(batch.len(), MAX_FRAME as usize);

    let mut conn = UnixStream::connect(&socket).expect("connect");
    abcd_server::proto::write_frame(&mut conn, batch.as_bytes()).expect("send");
    conn.shutdown(Shutdown::Write).expect("half-close");
    for i in 0..2 {
        let frame =
            abcd_server::proto::read_frame(&mut conn).unwrap_or_else(|e| panic!("reply {i}: {e}"));
        let text = std::str::from_utf8(&frame).unwrap();
        assert!(
            text.starts_with("{\"ok\":true"),
            "reply {i} of the at-cap batch: {text}"
        );
    }

    assert!(
        ping_eventually(&socket),
        "daemon healthy after at-cap batch"
    );
    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// v1 singles and v2 batches interleave on the same listener: neither
/// corrupts the other's framing, and batch replies come back in request
/// order with per-element results.
#[test]
fn mixed_version_clients_share_one_socket() {
    let socket = sock("mixed");
    let mut config = ServerConfig::new(&socket);
    config.workers = 2;
    let handle = abcd_server::start(config).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    let reference = {
        let mut module = abcd_frontend::compile(SRC).unwrap();
        abcd::Optimizer::new().optimize_module(&mut module, None);
        module.to_string()
    };

    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| {
                // A v1 client: single frames, one per connection.
                for _ in 0..8 {
                    let reply = abcd_server::optimize(
                        &socket,
                        (SRC, false),
                        &abcd::OptimizerOptions::default(),
                        None,
                        &abcd_server::CallOptions::default(),
                        &abcd_server::RetryPolicy::default(),
                    )
                    .expect("v1 optimize");
                    assert_eq!(reply.ir, reference, "v1 bytes");
                }
            });
            scope.spawn(|| {
                // A v2 client: 4-element pipelined batches.
                let endpoint = abcd_server::Endpoint::uds(&socket);
                let options = abcd::OptimizerOptions::default();
                let call = abcd_server::CallOptions::default();
                let items: Vec<_> = (0..4)
                    .map(|_| ((SRC, false), &options, None, call))
                    .collect();
                for _ in 0..2 {
                    let replies = abcd_server::optimize_batch_at(
                        &endpoint,
                        &items,
                        &abcd_server::RetryPolicy::default(),
                    )
                    .expect("v2 batch");
                    assert_eq!(replies.len(), 4);
                    for (i, r) in replies.into_iter().enumerate() {
                        assert_eq!(r.expect("batch element").ir, reference, "v2 element {i}");
                    }
                }
            });
        }
    });

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// A deadline trips for *one* element of a batch: that element fails
/// open (unoptimized module, `deadline_exceeded` flagged), its neighbors
/// are served optimized, and the stream stays in order.
#[test]
fn partial_batch_deadline_trip_fails_open_per_element() {
    let socket = sock("partialdeadline");
    let handle = abcd_server::start(ServerConfig::new(&socket)).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    let (optimized, unoptimized) = {
        let unopt = abcd_frontend::compile(SRC).unwrap().to_string();
        let mut module = abcd_frontend::compile(SRC).unwrap();
        abcd::Optimizer::new().optimize_module(&mut module, None);
        (module.to_string(), unopt)
    };

    let options = abcd::OptimizerOptions::default();
    let tripped = abcd_server::CallOptions {
        deadline_ms: Some(0), // already expired at admission: trips deterministically
        ..abcd_server::CallOptions::default()
    };
    let relaxed = abcd_server::CallOptions::default();
    let items = [
        ((SRC, false), &options, None, relaxed),
        ((SRC, false), &options, None, tripped),
        ((SRC, false), &options, None, relaxed),
    ];
    let replies = abcd_server::optimize_batch_at(
        &abcd_server::Endpoint::uds(&socket),
        &items,
        &abcd_server::RetryPolicy::default(),
    )
    .expect("batch");
    assert_eq!(replies.len(), 3);
    let replies: Vec<_> = replies
        .into_iter()
        .map(|r| r.expect("every element answers ok"))
        .collect();
    assert!(!replies[0].deadline_exceeded, "element 0 unaffected");
    assert_eq!(replies[0].ir, optimized, "element 0 optimized");
    assert!(replies[1].deadline_exceeded, "element 1 trips fail-open");
    assert_eq!(replies[1].ir, unoptimized, "element 1 unoptimized bytes");
    assert!(!replies[2].deadline_exceeded, "element 2 unaffected");
    assert_eq!(replies[2].ir, optimized, "element 2 optimized");

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}
