//! Service-level tests for the sharded, multi-transport `abcdd`:
//!
//! - **Byte identity across transports and batching.** The differential
//!   guarantee does not care how a request arrived: UDS, TCP, v1 single
//!   or v2 batch, every `ok` reply is byte-identical to the one-shot
//!   pipeline.
//! - **Deterministic work stealing.** Two shards, one worker each: a
//!   long request pins one shard while its queue holds a short one; the
//!   other shard's worker must steal it (counted in `stats` and the
//!   exposition).
//! - **Queue-position backpressure.** When every shard is saturated the
//!   reply carries the backlog position, parsed by the client as
//!   non-terminal `Busy`.
//! - **Golden exposition.** `metrics --deterministic-metrics` is pinned
//!   byte-for-byte: schema drift must be deliberate.

use abcd::OptimizerOptions;
use abcd_server::{CallOptions, Endpoint, ListenAddr, Reply, RetryPolicy, ServerConfig};

fn sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcdd-shard-{}-{tag}.sock", std::process::id()))
}

fn ping_eventually(endpoint: &Endpoint) -> bool {
    for _ in 0..100 {
        if abcd_server::ping_at(endpoint) {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    false
}

const SRC: &str = "fn f(a: int[], b: int[]) -> int {
    let s: int = 0;
    for (let i: int = 0; i < a.length; i = i + 1) {
        if (i < b.length) { s = s + a[i] * b[i]; }
    }
    return s;
}
fn main() -> int { return 0; }
";

fn one_shot_reference() -> String {
    let mut module = abcd_frontend::compile(SRC).unwrap();
    abcd::Optimizer::new().optimize_module(&mut module, None);
    module.to_string()
}

fn stat(endpoint: &Endpoint, key: &str) -> u64 {
    abcd_server::stats_at(endpoint)
        .ok()
        .and_then(|doc| doc.get(key).and_then(abcd_server::json::Json::as_u64))
        .unwrap_or(0)
}

#[test]
fn tcp_and_uds_serve_identical_bytes_including_batches() {
    let socket = sock("transports");
    let mut config = ServerConfig::new(&socket);
    config.listen.push(ListenAddr::Tcp("127.0.0.1:0".into()));
    config.shards = 2;
    config.workers = 2;
    let handle = abcd_server::start(config).unwrap();
    let uds = Endpoint::uds(handle.socket().unwrap());
    let tcp = Endpoint::Tcp(handle.tcp_addr().unwrap().to_string());
    assert!(ping_eventually(&uds), "UDS endpoint must come up");
    assert!(ping_eventually(&tcp), "TCP endpoint must come up");

    let reference = one_shot_reference();
    let options = OptimizerOptions::default();
    let call = CallOptions::default();
    for endpoint in [&uds, &tcp] {
        // v1 single.
        let single = abcd_server::optimize_at(
            endpoint,
            (SRC, false),
            &options,
            None,
            &call,
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(single.ir, reference, "single via {}", endpoint.describe());
        // v2 batch of 5.
        let items: Vec<_> = (0..5)
            .map(|_| ((SRC, false), &options, None, call))
            .collect();
        let replies =
            abcd_server::optimize_batch_at(endpoint, &items, &RetryPolicy::default()).unwrap();
        assert_eq!(replies.len(), 5);
        for (i, r) in replies.into_iter().enumerate() {
            assert_eq!(
                r.unwrap().ir,
                reference,
                "batch element {i} via {}",
                endpoint.describe()
            );
        }
    }

    // Both transports hit the same shard set: the served counter saw all
    // 12 optimizes (plus pings).
    assert!(stat(&uds, "served") >= 12, "one shard set behind both");
    assert_eq!(stat(&uds, "shard_count"), 2);

    abcd_server::shutdown_at(&tcp).unwrap();
    handle.join();
    assert!(!socket.exists(), "socket removed on drain");
}

/// The deterministic steal witness: shard 0's worker is pinned by a long
/// sleep while a short job waits in its queue; shard 1's worker goes
/// idle and must steal it. (`sleep` is the test-only command the server
/// keeps for exactly this kind of scheduling test.)
#[test]
fn idle_shard_steals_the_queued_job_of_a_pinned_shard() {
    let socket = sock("steal");
    let mut config = ServerConfig::new(&socket);
    config.shards = 2;
    config.workers = 1; // per shard
    config.queue = 8;
    let handle = abcd_server::start(config).unwrap();
    let uds = Endpoint::uds(&socket);
    assert!(ping_eventually(&uds), "server must come up");

    std::thread::scope(|scope| {
        // Pin shard 0 (lowest id wins the least-loaded tie on an idle
        // server) for 600 ms.
        let pin = scope.spawn(|| abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":600}"));
        std::thread::sleep(std::time::Duration::from_millis(150));
        // Occupy shard 1's worker for 150 ms, then queue two more short
        // sleeps: least-loaded placement puts them behind the pin and the
        // short job, one each.
        let short =
            scope.spawn(|| abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":150}"));
        std::thread::sleep(std::time::Duration::from_millis(50));
        let queued_a =
            scope.spawn(|| abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":10}"));
        let queued_b =
            scope.spawn(|| abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":10}"));
        // Shard 1's worker frees up ~300 ms before shard 0's; the queued
        // jobs must not starve behind the pin.
        for h in [short, queued_a, queued_b, pin] {
            assert!(matches!(h.join().unwrap(), Ok(Reply::Ok(..))));
        }
    });

    assert!(
        stat(&uds, "steals") >= 1,
        "an idle shard must have stolen queued work: {:?}",
        abcd_server::stats_at(&uds)
    );
    // The exposition carries the same counter (non-deterministic mode).
    let exposition = abcd_server::metrics_at(&uds, false).unwrap();
    let steals_line = exposition
        .lines()
        .find(|l| l.starts_with("abcdd_steals_total"))
        .expect("abcdd_steals_total exposed");
    let n: u64 = steals_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(n >= 1, "exposition agrees: {steals_line}");

    abcd_server::shutdown_at(&uds).unwrap();
    handle.join();
}

/// Saturating every shard produces a queue-position reply — parsed by
/// the client as `Busy` with `queued` — and the identical retried
/// request succeeds once a worker frees up.
#[test]
fn saturated_shards_reply_with_queue_position() {
    let socket = sock("queuepos");
    let mut config = ServerConfig::new(&socket);
    config.shards = 2;
    config.workers = 1; // per shard
    config.queue = 0; // rendezvous: full the moment both workers are busy
    let handle = abcd_server::start(config).unwrap();
    let uds = Endpoint::uds(&socket);
    assert!(ping_eventually(&uds), "server must come up");

    std::thread::scope(|scope| {
        let pin_a =
            scope.spawn(|| abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":500}"));
        std::thread::sleep(std::time::Duration::from_millis(100));
        let pin_b =
            scope.spawn(|| abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":500}"));
        std::thread::sleep(std::time::Duration::from_millis(100));
        // Both workers pinned, zero queue: the probe is told its place.
        match abcd_server::roundtrip(&socket, "{\"cmd\":\"ping\"}").unwrap() {
            Reply::Busy {
                retry_after_ms,
                queued,
            } => {
                assert!(retry_after_ms > 0, "adaptive hint present");
                assert_eq!(queued, Some(3), "2 in flight + this one = position 3");
            }
            other => panic!("expected a queue-position reply, got {other:?}"),
        }
        assert!(matches!(pin_a.join().unwrap(), Ok(Reply::Ok(..))));
        assert!(matches!(pin_b.join().unwrap(), Ok(Reply::Ok(..))));
    });

    assert!(
        stat(&uds, "queued_replies") >= 1,
        "the backpressure counter saw it"
    );
    // The retry contract: the optimize client treats the queue-position
    // reply as transient and lands once capacity returns.
    let reply = abcd_server::optimize_at(
        &uds,
        (SRC, false),
        &OptimizerOptions::default(),
        None,
        &CallOptions::default(),
        &RetryPolicy::default(),
    )
    .unwrap();
    assert_eq!(reply.ir, one_shot_reference());

    abcd_server::shutdown_at(&uds).unwrap();
    handle.join();
}

/// Golden pin of the deterministic exposition: every sampled value is
/// zeroed, config gauges keep their real values, and the line set —
/// including the per-shard gauges — must not drift silently.
#[test]
fn deterministic_exposition_matches_the_golden_file() {
    let socket = sock("golden");
    let mut config = ServerConfig::new(&socket);
    config.shards = 2;
    // 1 worker/shard and no cache so the regeneration command below
    // produces identical bytes on any host (worker counts are clamped to
    // host CPUs on the CLI path).
    config.workers = 1;
    let handle = abcd_server::start(config).unwrap();
    let uds = Endpoint::uds(&socket);
    assert!(ping_eventually(&uds), "server must come up");

    // Serve real traffic first: the point of the golden file is that the
    // *values* still read deterministically afterward.
    let _ = abcd_server::optimize_at(
        &uds,
        (SRC, false),
        &OptimizerOptions::default(),
        None,
        &CallOptions::default(),
        &RetryPolicy::default(),
    )
    .unwrap();

    let exposition = abcd_server::metrics_at(&uds, true).unwrap();
    let golden = include_str!("golden/exposition.txt");
    assert_eq!(
        exposition, golden,
        "deterministic exposition drifted from tests/golden/exposition.txt; \
         if the schema change is deliberate, regenerate with:\n  \
         mjc serve --socket /tmp/g.sock --no-cache --shards 2 --workers 1 &\n  \
         mjc client metrics --socket /tmp/g.sock --deterministic-metrics \
         > tests/golden/exposition.txt; \
         mjc client shutdown --socket /tmp/g.sock"
    );

    abcd_server::shutdown_at(&uds).unwrap();
    handle.join();
}
