//! Fault-injection suite (PR: fail-open optimizer): under any single
//! injected fault — a pass panic, forced solver-budget exhaustion, or a
//! deterministic constraint-graph corruption — the optimizer must still
//! produce a module that runs and is VM-differentially indistinguishable
//! from the unoptimized program. Fail open, never miscompile.

use abcd::{CheckOutcome, FaultPlan, Incident, ModuleReport, Optimizer, OptimizerOptions};
use abcd_ir::Module;

/// Every pipeline stage label a `panic:FUNC:PASS` fault can target.
const PASS_LABELS: &[&str] = &[
    "split_critical_edges",
    "promote_locals",
    "cleanup",
    "insert_pi",
    "graph_build",
    "solve",
    "pre",
    "transform",
    "validate",
];

/// The full fail-open configuration: per-pass IR verification plus
/// translation validation, so a corrupted graph's wrong eliminations are
/// reinstated before the differential oracle ever sees them.
fn fail_open_options() -> OptimizerOptions {
    OptimizerOptions {
        verify_ir: true,
        validate: true,
        ..OptimizerOptions::default()
    }
}

fn optimize_with_plan(
    bench: &abcd_benchsuite::Benchmark,
    options: OptimizerOptions,
    plan: &str,
    threads: usize,
) -> (Module, ModuleReport) {
    let mut module = bench.compile().expect("benchmark compiles");
    let optimizer = Optimizer::with_options(options)
        .with_threads(threads)
        .with_fault_plan(FaultPlan::parse(plan).expect("plan parses"));
    let report = optimizer.optimize_module(&mut module, None);
    (module, report)
}

/// Canonical printed form of a module — the byte-identity witness.
fn dump(m: &Module) -> String {
    m.functions().map(|(_, f)| format!("{f}\n")).collect()
}

fn assert_clean(bench: &abcd_benchsuite::Benchmark, plan: &str, faulted: &Module) {
    let reference = bench.compile().unwrap();
    if let Some(div) = abcd::oracle::differential(&reference, faulted, "main") {
        panic!(
            "{name} under fault plan `{plan}` diverged from the unoptimized \
             program: {div}",
            name = bench.name
        );
    }
}

/// A panic injected into any pipeline stage of any function degrades to
/// "ship that function unoptimized": the module still runs and agrees with
/// the unoptimized reference, and the report carries a `PassPanic`
/// incident naming the pass.
#[test]
fn injected_pass_panics_are_contained_and_differentially_clean() {
    let mut fired: Vec<&str> = Vec::new();
    for name in ["db", "qsort", "sieve"] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        for pass in PASS_LABELS {
            let plan = format!("panic:*:{pass}");
            let (module, report) = optimize_with_plan(bench, fail_open_options(), &plan, 1);
            let hit = report
                .incidents()
                .any(|i| matches!(i, Incident::PassPanic { pass: p, .. } if p == pass));
            if hit {
                fired.push(pass);
                assert!(
                    report.degraded_incident_count() > 0,
                    "{name}: a pass panic must count as degraded"
                );
            } else {
                // Only stages that run conditionally may fail to trip the
                // fault: PRE runs only when a full proof fails first.
                assert_eq!(
                    *pass, "pre",
                    "{name}: no PassPanic incident recorded for `{plan}`"
                );
            }
            assert_clean(bench, &plan, &module);
        }
    }
    for pass in PASS_LABELS {
        assert!(
            fired.contains(pass),
            "fault `panic:*:{pass}` never fired on any benchmark"
        );
    }
}

/// Forced budget exhaustion is the most conservative degradation: every
/// check stays in place, every analyzed site reports `Kept`, and the only
/// incidents are (non-degraded) `BudgetExhausted` ones.
#[test]
fn forced_fuel_exhaustion_keeps_every_check() {
    for name in ["db", "qsort", "bubbleSort"] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        let (module, report) = optimize_with_plan(bench, fail_open_options(), "fuel:*", 1);
        assert_eq!(
            report.checks_removed_fully(),
            0,
            "{name}: fuel exhaustion must never eliminate a check"
        );
        assert_eq!(report.checks_hoisted(), 0, "{name}: nor hoist one");
        assert!(
            report.incident_count() > 0,
            "{name}: exhaustion must be visible in the report"
        );
        for incident in report.incidents() {
            assert!(
                matches!(incident, Incident::BudgetExhausted { .. }),
                "{name}: unexpected incident {incident}"
            );
            assert!(
                !incident.is_degraded(),
                "{name}: running out of budget is not a malfunction"
            );
        }
        for f in &report.functions {
            for (site, _, outcome) in &f.outcomes {
                assert!(
                    matches!(outcome, CheckOutcome::Kept | CheckOutcome::Skipped),
                    "{name}/{fname}: site {site:?} escaped exhaustion as {outcome:?}",
                    fname = f.name
                );
            }
        }
        assert_clean(bench, "fuel:*", &module);
    }
}

/// Edge perturbation corrupts the constraint system itself — the one fault
/// that could silently miscompile. Per-pass verification rolls back
/// structurally bad transforms and translation validation reinstates any
/// elimination the clean graph cannot re-justify, so the shipped module
/// must agree with the unoptimized program for every seed.
#[test]
fn perturbed_constraint_graphs_never_ship_a_miscompilation() {
    for name in ["qsort", "mpeg", "dhrystone", "bytemark"] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        for seed in 0..8u64 {
            let plan = format!("edge:*:{seed}");
            let (module, _) = optimize_with_plan(bench, fail_open_options(), &plan, 1);
            assert_clean(bench, &plan, &module);
        }
    }
}

/// Panic isolation is per function: sabotaging `part`'s solver leaves the
/// other functions of qsort exactly as optimized as in a fault-free run.
#[test]
fn pass_panic_isolates_the_faulty_function() {
    let bench = abcd_benchsuite::by_name("qsort").unwrap();
    let (faulted_module, faulted) =
        optimize_with_plan(bench, fail_open_options(), "panic:part:solve", 1);
    let (_, clean) = optimize_with_plan(bench, fail_open_options(), "", 1);

    let find = |r: &ModuleReport, name: &str| {
        r.functions
            .iter()
            .find(|f| f.name == name)
            .cloned()
            .unwrap_or_else(|| panic!("no report for `{name}`"))
    };

    let part = find(&faulted, "part");
    assert_eq!(
        part.removed_fully(),
        0,
        "the panicking function must ship unoptimized"
    );
    assert!(
        part.incidents
            .iter()
            .any(|i| matches!(i, Incident::PassPanic { pass, .. } if pass == "solve")),
        "the panic must be attributed to the solve stage"
    );

    // A fault-free qsort does eliminate checks in `part` — the fault is
    // what suppressed them — while the untouched functions are unaffected.
    assert!(find(&clean, "part").removed_fully() > 0);
    for name in ["qsort", "main"] {
        let a = find(&faulted, name);
        let b = find(&clean, name);
        assert_eq!(
            a.outcomes, b.outcomes,
            "`{name}` was not sabotaged and must optimize identically"
        );
    }
    assert_clean(bench, "panic:part:solve", &faulted_module);
}

/// Faults are keyed by function name, never by thread or timing, so a
/// sabotaged parallel run stays byte-identical to the sequential one.
#[test]
fn faulted_runs_stay_byte_identical_in_parallel() {
    for (name, plan) in [
        ("qsort", "panic:*:solve"),
        ("mpeg", "edge:*:2"),
        ("db", "fuel:*"),
        ("bytemark", "edge:*:0,panic:main:pre"),
    ] {
        let bench = abcd_benchsuite::by_name(name).unwrap();
        let (seq_module, seq) = optimize_with_plan(bench, fail_open_options(), plan, 1);
        let (par_module, par) = optimize_with_plan(bench, fail_open_options(), plan, 4);
        assert_eq!(
            dump(&seq_module),
            dump(&par_module),
            "{name}: IR differs between sequential and parallel runs under `{plan}`"
        );
        let outcomes = |r: &ModuleReport| {
            r.functions
                .iter()
                .map(|f| (f.name, f.outcomes.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            outcomes(&seq),
            outcomes(&par),
            "{name}: outcomes differ between sequential and parallel runs under `{plan}`"
        );
    }
}

/// Real (tiny) fuel budgets — not just the forced-exhaustion fault — also
/// degrade conservatively: fewer or equal eliminations, never a panic, and
/// a differentially clean module.
#[test]
fn tiny_real_budgets_degrade_conservatively() {
    let bench = abcd_benchsuite::by_name("bubbleSort").unwrap();
    let unlimited = optimize_with_plan(bench, fail_open_options(), "", 1).1;
    for fuel in [0u64, 1, 4, 16] {
        let options = OptimizerOptions {
            fuel_per_query: Some(fuel),
            ..fail_open_options()
        };
        let (module, report) = optimize_with_plan(bench, options, "", 1);
        assert!(
            report.checks_removed_fully() <= unlimited.checks_removed_fully(),
            "fuel {fuel}: budgets can only lose eliminations"
        );
        assert_clean(bench, "(fuel budget)", &module);
    }
}
