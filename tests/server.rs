//! End-to-end tests of the `abcdd` service: served output is
//! byte-identical to in-process optimization, concurrent clients agree,
//! the bounded queue sheds load with the documented `busy` reply, and
//! shutdown drains gracefully.

use abcd::{AnalysisCache, Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_server::{Reply, ServerConfig};
use std::sync::Arc;

const PROGRAM: &str = r#"
    fn sum(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }
    fn main() -> int {
        let a: int[] = new int[8];
        return sum(a);
    }
"#;

fn sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcdd-test-{}-{tag}.sock", std::process::id()))
}

fn ping_eventually(socket: &std::path::Path) -> bool {
    for _ in 0..100 {
        if abcd_server::ping(socket) {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    false
}

fn local_reference(src: &str) -> String {
    let mut module = compile(src).expect("compiles");
    Optimizer::new().optimize_module(&mut module, None);
    module.to_string()
}

#[test]
fn served_output_is_byte_identical_to_local() {
    let socket = sock("roundtrip");
    let mut config = ServerConfig::new(&socket);
    config.cache = Some(Arc::new(AnalysisCache::in_memory(1 << 20)));
    let handle = abcd_server::start(config).unwrap();

    let reference = local_reference(PROGRAM);
    let options = OptimizerOptions::default();
    // Twice: the second request is a warm-cache replay and must not differ.
    for pass in 0..2 {
        let call = abcd_server::CallOptions {
            metrics: true,
            deterministic_metrics: true,
            trace: true,
            deadline_ms: None,
        };
        let reply = abcd_server::optimize(
            &socket,
            (PROGRAM, false),
            &options,
            None,
            &call,
            &abcd_server::RetryPolicy::default(),
        )
        .unwrap();
        assert!(!reply.deadline_exceeded, "no deadline was set");
        assert_eq!(reply.ir, reference, "pass {pass}");
        assert_eq!(reply.incidents, (0, 0), "pass {pass}");
        let trace = reply.trace.expect("trace requested");
        assert!(trace.starts_with("{\"schema\":\"abcd-trace/3\""), "{trace}");
        assert!(trace.contains("\"span\":\"request\""), "{trace}");
        let metrics = reply.metrics.expect("metrics requested");
        assert!(
            metrics.contains("\"schema\":\"abcd-metrics/6\""),
            "{metrics}"
        );
        assert!(metrics.contains("\"deterministic\":true"), "{metrics}");
        // Deterministic metrics zero the request latency.
        assert!(metrics.contains("\"request_latency_us\":0"), "{metrics}");
        if pass == 1 {
            assert!(reply.functions_from_cache > 0, "warm pass must replay");
        }
    }

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

#[test]
fn concurrent_clients_all_get_the_sequential_answer() {
    let socket = sock("concurrent");
    let mut config = ServerConfig::new(&socket);
    config.workers = 4;
    config.queue = 16;
    config.cache = Some(Arc::new(AnalysisCache::in_memory(1 << 20)));
    let handle = abcd_server::start(config).unwrap();

    let reference = local_reference(PROGRAM);
    let results: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let socket = socket.clone();
                scope.spawn(move || {
                    abcd_server::optimize(
                        &socket,
                        (PROGRAM, false),
                        &OptimizerOptions::default(),
                        None,
                        &abcd_server::CallOptions::default(),
                        &abcd_server::RetryPolicy {
                            max_attempts: 16,
                            ..abcd_server::RetryPolicy::default()
                        },
                    )
                    .unwrap()
                    .ir
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, ir) in results.iter().enumerate() {
        assert_eq!(
            *ir, reference,
            "client {i} must match the sequential answer"
        );
    }

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

#[test]
fn full_queue_sheds_load_with_busy_and_recovers() {
    let socket = sock("busy");
    let mut config = ServerConfig::new(&socket);
    config.workers = 1;
    config.queue = 0; // rendezvous: a request is admitted only if a worker is free
    let handle = abcd_server::start(config).unwrap();
    // With a rendezvous queue a ping is admitted only while the worker sits
    // in recv(), so poll until the worker is demonstrably idle.
    assert!(ping_eventually(&socket), "server must come up");

    // Pin the only worker, then probe: the probe must be shed, not queued.
    let pin = std::thread::spawn({
        let socket = socket.clone();
        move || abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":600}")
    });
    std::thread::sleep(std::time::Duration::from_millis(150));
    match abcd_server::roundtrip(&socket, "{\"cmd\":\"ping\"}").unwrap() {
        Reply::Busy { retry_after_ms, .. } => assert!(retry_after_ms > 0),
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(matches!(pin.join().unwrap(), Ok(Reply::Ok(..))));

    // After the worker frees up, the identical retry succeeds — the
    // documented contract: busy is transient and side-effect free.
    assert!(ping_eventually(&socket));
    let stats = (0..100)
        .find_map(|_| {
            abcd_server::stats(&socket).ok().or_else(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                None
            })
        })
        .expect("stats should be admitted once the worker idles");
    let shed = stats
        .get("shed")
        .and_then(abcd_server::json::Json::as_u64)
        .unwrap();
    assert!(shed >= 1, "{stats:?}");

    while abcd_server::shutdown(&socket).is_err() {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.join();
}

#[test]
fn malformed_requests_get_structured_errors_not_disconnects() {
    let socket = sock("errors");
    let handle = abcd_server::start(ServerConfig::new(&socket)).unwrap();

    for (request, needle) in [
        ("this is not json", "bad JSON"),
        ("{\"cmd\":\"launch\"}", "unknown cmd"),
        ("{\"no_cmd\":1}", "missing string field `cmd`"),
        ("{\"cmd\":\"optimize\"}", "`source` or `ir`"),
        (
            "{\"cmd\":\"optimize\",\"source\":\"fn main( {\"}",
            "compile",
        ),
        ("{\"cmd\":\"optimize\",\"ir\":\"garbage\"}", "parse"),
        (
            "{\"cmd\":\"optimize\",\"source\":\"fn main() -> int { return 0; }\",\
             \"options\":{\"warp_drive\":true}}",
            "unknown option",
        ),
    ] {
        match abcd_server::roundtrip(&socket, request).unwrap() {
            Reply::Err(e) => assert!(e.contains(needle), "{request} → {e}"),
            other => panic!("{request} → {other:?}"),
        }
    }

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// Tentpole: a tripped deadline fails OPEN — the reply is still `ok`,
/// the module is served exactly as the front end produced it (every
/// check kept), the incident is non-degraded, and the counters show up
/// in both `stats` and the Prometheus exposition.
#[test]
fn deadline_fails_open_with_all_checks_kept() {
    let socket = sock("deadline");
    let mut config = ServerConfig::new(&socket);
    config.cache = Some(Arc::new(AnalysisCache::in_memory(1 << 20)));
    let handle = abcd_server::start(config).unwrap();

    let unoptimized = compile(PROGRAM).expect("compiles").to_string();
    let call = abcd_server::CallOptions {
        metrics: true,
        deterministic_metrics: true,
        deadline_ms: Some(0), // trips at the first checkpoint, deterministically
        ..abcd_server::CallOptions::default()
    };
    let reply = abcd_server::optimize(
        &socket,
        (PROGRAM, false),
        &OptimizerOptions::default(),
        None,
        &call,
        &abcd_server::RetryPolicy::default(),
    )
    .unwrap();
    assert!(reply.deadline_exceeded, "deadline 0 must trip");
    assert_eq!(
        reply.ir, unoptimized,
        "fail-open serves the unoptimized module"
    );
    assert_eq!(reply.checks.1, 0, "nothing removed");
    assert_eq!(reply.checks.2, 0, "nothing hoisted");
    assert_eq!(reply.incidents, (1, 0), "one incident, zero degraded");
    let metrics = reply.metrics.expect("metrics requested");
    assert!(
        metrics.contains("\"kind\":\"deadline_exceeded\""),
        "{metrics}"
    );

    // A request under no deadline on the same server still optimizes.
    let normal = abcd_server::optimize(
        &socket,
        (PROGRAM, false),
        &OptimizerOptions::default(),
        None,
        &abcd_server::CallOptions::default(),
        &abcd_server::RetryPolicy::default(),
    )
    .unwrap();
    assert!(!normal.deadline_exceeded);
    assert_eq!(normal.ir, local_reference(PROGRAM));

    let stats = abcd_server::stats(&socket).unwrap();
    let n = |k: &str| stats.get(k).and_then(abcd_server::json::Json::as_u64);
    assert_eq!(n("deadline_exceeded"), Some(1), "{stats:?}");
    let exposition = abcd_server::metrics(&socket, false).unwrap();
    assert!(
        exposition.contains("abcdd_deadline_exceeded_total 1"),
        "{exposition}"
    );
    assert!(
        exposition.contains("abcdd_worker_restarts_total 0"),
        "{exposition}"
    );
    assert!(
        exposition.contains("abcdd_cache_events_total{event=\"recovered\"} 0"),
        "{exposition}"
    );

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// The server-side default deadline (`--request-timeout`) applies to
/// requests that carry no `deadline_ms` of their own.
#[test]
fn server_default_request_timeout_fails_open() {
    let socket = sock("req-timeout");
    let mut config = ServerConfig::new(&socket);
    config.request_timeout = Some(std::time::Duration::from_millis(0));
    let handle = abcd_server::start(config).unwrap();

    let reply = abcd_server::optimize(
        &socket,
        (PROGRAM, false),
        &OptimizerOptions::default(),
        None,
        &abcd_server::CallOptions::default(),
        &abcd_server::RetryPolicy::default(),
    )
    .unwrap();
    assert!(reply.deadline_exceeded, "server default must apply");
    assert_eq!(reply.ir, compile(PROGRAM).unwrap().to_string());

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

/// Supervision: a panicking worker is respawned, its in-flight request
/// fails with a structured error (not a silent hangup), and the daemon
/// keeps serving and still drains to a clean exit.
#[test]
fn panicked_workers_are_respawned_and_requests_fail_cleanly() {
    let socket = sock("respawn");
    let mut config = ServerConfig::new(&socket);
    config.workers = 2;
    config.chaos = Some(Arc::new(
        abcd::ChaosPlan::parse("seed:7,worker_panic:500").unwrap(),
    ));
    let handle = abcd_server::start(config).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    let (mut panics, mut pongs) = (0u32, 0u32);
    for _ in 0..40 {
        match abcd_server::roundtrip(&socket, "{\"cmd\":\"ping\"}") {
            Ok(Reply::Ok(..)) => pongs += 1,
            Ok(Reply::Err(e)) => {
                assert!(e.contains("worker panicked"), "{e}");
                panics += 1;
            }
            Ok(Reply::Busy { .. }) | Err(_) => {}
        }
    }
    assert!(panics > 0, "chaos at 50% must fire in 40 requests");
    assert!(pongs > 0, "respawned workers must keep serving");

    let stats = loop {
        match abcd_server::stats(&socket) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };
    let restarts = stats
        .get("worker_restarts")
        .and_then(abcd_server::json::Json::as_u64)
        .unwrap();
    assert!(restarts >= u64::from(panics), "{stats:?}");

    while abcd_server::shutdown(&socket).is_err() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    handle.join();
    assert!(!socket.exists(), "clean drain even under chaos");
}

/// Supervision: a worker stuck in compute past `stuck_after` first has
/// its connection kicked, then is detached and replaced, so capacity
/// recovers without waiting for the runaway request.
#[test]
fn stuck_workers_are_kicked_then_replaced() {
    let socket = sock("stuck");
    let mut config = ServerConfig::new(&socket);
    config.workers = 1;
    config.stuck_after = std::time::Duration::from_millis(100);
    let handle = abcd_server::start(config).unwrap();
    assert!(ping_eventually(&socket), "server must come up");

    // `sleep` stands in for a runaway optimization: not blocked on IO,
    // so only detachment can recover the worker's slot.
    let wedged = std::thread::spawn({
        let socket = socket.clone();
        move || abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":1500}")
    });
    // Kick fires ~100ms in; detach+respawn fires ~400ms in. By 800ms a
    // fresh worker must be serving again even though the old one still
    // has ~700ms of wedge left.
    assert!(
        ping_eventually(&socket),
        "replacement worker must take over while the wedged one sleeps"
    );
    let wedged = wedged.join().unwrap();
    assert!(
        wedged.is_err(),
        "the kicked request must fail, not hang: {wedged:?}"
    );

    let stats = abcd_server::stats(&socket).unwrap();
    let n = |k: &str| {
        stats
            .get(k)
            .and_then(abcd_server::json::Json::as_u64)
            .unwrap()
    };
    assert!(n("worker_kicks") >= 1, "{stats:?}");
    assert!(n("worker_restarts") >= 1, "{stats:?}");

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

#[test]
fn shutdown_drains_admitted_requests() {
    let socket = sock("drain");
    let mut config = ServerConfig::new(&socket);
    config.workers = 2;
    config.queue = 8;
    let handle = abcd_server::start(config).unwrap();

    // Occupy both workers, then shut down via a third connection; the
    // sleeps were admitted and must still be answered.
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":400}")
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    abcd_server::shutdown(&socket).unwrap();
    for sleeper in sleepers {
        assert!(
            matches!(sleeper.join().unwrap(), Ok(Reply::Ok(..))),
            "admitted requests are drained, not dropped"
        );
    }
    handle.join();
    assert!(!socket.exists(), "socket file removed after join");
    assert!(!abcd_server::ping(&socket), "server is gone");
}
