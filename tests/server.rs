//! End-to-end tests of the `abcdd` service: served output is
//! byte-identical to in-process optimization, concurrent clients agree,
//! the bounded queue sheds load with the documented `busy` reply, and
//! shutdown drains gracefully.

use abcd::{AnalysisCache, Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_server::{Reply, ServerConfig};
use std::sync::Arc;

const PROGRAM: &str = r#"
    fn sum(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }
    fn main() -> int {
        let a: int[] = new int[8];
        return sum(a);
    }
"#;

fn sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcdd-test-{}-{tag}.sock", std::process::id()))
}

fn ping_eventually(socket: &std::path::Path) -> bool {
    for _ in 0..100 {
        if abcd_server::ping(socket) {
            return true;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    false
}

fn local_reference(src: &str) -> String {
    let mut module = compile(src).expect("compiles");
    Optimizer::new().optimize_module(&mut module, None);
    module.to_string()
}

#[test]
fn served_output_is_byte_identical_to_local() {
    let socket = sock("roundtrip");
    let mut config = ServerConfig::new(&socket);
    config.cache = Some(Arc::new(AnalysisCache::in_memory(1 << 20)));
    let handle = abcd_server::start(config).unwrap();

    let reference = local_reference(PROGRAM);
    let options = OptimizerOptions::default();
    // Twice: the second request is a warm-cache replay and must not differ.
    for pass in 0..2 {
        let reply = abcd_server::optimize(
            &socket,
            (PROGRAM, false),
            &options,
            None,
            true,
            true,
            true,
            4,
        )
        .unwrap();
        assert_eq!(reply.ir, reference, "pass {pass}");
        assert_eq!(reply.incidents, (0, 0), "pass {pass}");
        let trace = reply.trace.expect("trace requested");
        assert!(trace.starts_with("{\"schema\":\"abcd-trace/2\""), "{trace}");
        assert!(trace.contains("\"span\":\"request\""), "{trace}");
        let metrics = reply.metrics.expect("metrics requested");
        assert!(
            metrics.contains("\"schema\":\"abcd-metrics/5\""),
            "{metrics}"
        );
        assert!(metrics.contains("\"deterministic\":true"), "{metrics}");
        // Deterministic metrics zero the request latency.
        assert!(metrics.contains("\"request_latency_us\":0"), "{metrics}");
        if pass == 1 {
            assert!(reply.functions_from_cache > 0, "warm pass must replay");
        }
    }

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

#[test]
fn concurrent_clients_all_get_the_sequential_answer() {
    let socket = sock("concurrent");
    let mut config = ServerConfig::new(&socket);
    config.workers = 4;
    config.queue = 16;
    config.cache = Some(Arc::new(AnalysisCache::in_memory(1 << 20)));
    let handle = abcd_server::start(config).unwrap();

    let reference = local_reference(PROGRAM);
    let results: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let socket = socket.clone();
                scope.spawn(move || {
                    abcd_server::optimize(
                        &socket,
                        (PROGRAM, false),
                        &OptimizerOptions::default(),
                        None,
                        false,
                        false,
                        false,
                        16,
                    )
                    .unwrap()
                    .ir
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, ir) in results.iter().enumerate() {
        assert_eq!(
            *ir, reference,
            "client {i} must match the sequential answer"
        );
    }

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

#[test]
fn full_queue_sheds_load_with_busy_and_recovers() {
    let socket = sock("busy");
    let mut config = ServerConfig::new(&socket);
    config.workers = 1;
    config.queue = 0; // rendezvous: a request is admitted only if a worker is free
    let handle = abcd_server::start(config).unwrap();
    // With a rendezvous queue a ping is admitted only while the worker sits
    // in recv(), so poll until the worker is demonstrably idle.
    assert!(ping_eventually(&socket), "server must come up");

    // Pin the only worker, then probe: the probe must be shed, not queued.
    let pin = std::thread::spawn({
        let socket = socket.clone();
        move || abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":600}")
    });
    std::thread::sleep(std::time::Duration::from_millis(150));
    match abcd_server::roundtrip(&socket, "{\"cmd\":\"ping\"}").unwrap() {
        Reply::Busy { retry_after_ms } => assert!(retry_after_ms > 0),
        other => panic!("expected busy, got {other:?}"),
    }
    assert!(matches!(pin.join().unwrap(), Ok(Reply::Ok(..))));

    // After the worker frees up, the identical retry succeeds — the
    // documented contract: busy is transient and side-effect free.
    assert!(ping_eventually(&socket));
    let stats = (0..100)
        .find_map(|_| {
            abcd_server::stats(&socket).ok().or_else(|| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                None
            })
        })
        .expect("stats should be admitted once the worker idles");
    let shed = stats
        .get("shed")
        .and_then(abcd_server::json::Json::as_u64)
        .unwrap();
    assert!(shed >= 1, "{stats:?}");

    while abcd_server::shutdown(&socket).is_err() {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.join();
}

#[test]
fn malformed_requests_get_structured_errors_not_disconnects() {
    let socket = sock("errors");
    let handle = abcd_server::start(ServerConfig::new(&socket)).unwrap();

    for (request, needle) in [
        ("this is not json", "bad JSON"),
        ("{\"cmd\":\"launch\"}", "unknown cmd"),
        ("{\"no_cmd\":1}", "missing string field `cmd`"),
        ("{\"cmd\":\"optimize\"}", "`source` or `ir`"),
        (
            "{\"cmd\":\"optimize\",\"source\":\"fn main( {\"}",
            "compile",
        ),
        ("{\"cmd\":\"optimize\",\"ir\":\"garbage\"}", "parse"),
        (
            "{\"cmd\":\"optimize\",\"source\":\"fn main() -> int { return 0; }\",\
             \"options\":{\"warp_drive\":true}}",
            "unknown option",
        ),
    ] {
        match abcd_server::roundtrip(&socket, request).unwrap() {
            Reply::Err(e) => assert!(e.contains(needle), "{request} → {e}"),
            other => panic!("{request} → {other:?}"),
        }
    }

    abcd_server::shutdown(&socket).unwrap();
    handle.join();
}

#[test]
fn shutdown_drains_admitted_requests() {
    let socket = sock("drain");
    let mut config = ServerConfig::new(&socket);
    config.workers = 2;
    config.queue = 8;
    let handle = abcd_server::start(config).unwrap();

    // Occupy both workers, then shut down via a third connection; the
    // sleeps were admitted and must still be answered.
    let sleepers: Vec<_> = (0..2)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                abcd_server::roundtrip(&socket, "{\"cmd\":\"sleep\",\"ms\":400}")
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    abcd_server::shutdown(&socket).unwrap();
    for sleeper in sleepers {
        assert!(
            matches!(sleeper.join().unwrap(), Ok(Reply::Ok(..))),
            "admitted requests are drained, not dropped"
        );
    }
    handle.join();
    assert!(!socket.exists(), "socket file removed after join");
    assert!(!abcd_server::ping(&socket), "server is gone");
}
