//! End-to-end tests for the `abcd-trace/3` structured-tracing layer: the
//! witness-path certificates re-verify against the inequality graph, every
//! emitted artifact is valid JSON even under hostile function names, the
//! schema is pinned by a golden file, fault injections surface in the
//! trace, and tracing disabled is a no-op on the prove path.

use abcd::{DemandProver, InequalityGraph, Optimizer, Problem, Vertex, VertexId};
use abcd_frontend::compile;
use abcd_ir::{CheckKind, InstKind, Value};
use abcd_server::json::Json;
use std::collections::HashMap;

/// The shipped observability example: `sum` eliminates both checks,
/// `peek` keeps both.
const PROGRAM: &str = include_str!("../examples/observability.mj");

/// Finds the first bounds check of `kind` in the named e-SSA function.
fn find_check(module: &abcd_ir::Module, name: &str, kind: CheckKind) -> (Value, Value) {
    let func = module
        .functions()
        .find(|(_, f)| f.name() == name)
        .map(|(_, f)| f)
        .expect("function exists");
    for b in func.blocks() {
        for &id in func.block(b).insts() {
            if let InstKind::BoundsCheck {
                array,
                index,
                kind: k,
                ..
            } = func.inst(id).kind
            {
                if k == kind {
                    return (array, index);
                }
            }
        }
    }
    panic!("no {kind:?} check in {name}");
}

/// Acceptance criterion: every hop of a certificate's derivation path is a
/// real edge of the inequality graph, its printed weight is exactly that
/// edge's weight, and the hops sum to a weight that proves the inequality.
#[test]
fn witness_path_weights_reverify_against_the_inequality_graph() {
    let mut module = compile(PROGRAM).unwrap();
    abcd_ssa::module_to_essa(&mut module).unwrap();
    let (array, index) = find_check(&module, "sum", CheckKind::Upper);
    let func = module
        .functions()
        .find(|(_, f)| f.name() == "sum")
        .map(|(_, f)| f)
        .unwrap();
    let graph = InequalityGraph::build(func, Problem::Upper, None);
    let mut prover = DemandProver::new(&graph, Vertex::ArrayLen(array));
    prover.enable_trace();
    assert!(
        prover.demand_prove(Vertex::Value(index), -1),
        "sum's upper check is the paper's eliminable shape"
    );
    let events = prover.take_trace();
    let path = abcd::witness_path(&events).expect("a proven query yields a witness path");
    assert!(path.len() >= 2, "path must have at least target and source");

    // Rendered vertex names → graph ids (names are unique by construction).
    let by_name: HashMap<String, VertexId> = (0..graph.vertex_count())
        .map(|i| {
            let vid = VertexId::from_index(i);
            (graph.vertex(vid).to_string(), vid)
        })
        .collect();

    let mut total = 0i64;
    for pair in path.windows(2) {
        let (parent_name, parent_c) = &pair[0];
        let (child_name, child_c) = &pair[1];
        let parent = by_name[parent_name.as_str()];
        let child = by_name[child_name.as_str()];
        let hop = parent_c - child_c;
        assert!(
            graph
                .in_edges(parent)
                .iter()
                .any(|e| e.src == child && e.weight == hop),
            "hop {child_name} →({hop}) {parent_name} is not an edge of the inequality graph"
        );
        total += hop;
    }
    // A source→target path of weight W establishes `target ≤ source + W`;
    // the upper check needs `index ≤ len − 1`, so W must be ≤ −1.
    assert!(total <= -1, "path weight {total} does not prove the check");
}

/// The certificates the example in the README demonstrates: at least one
/// eliminated check with a derivation path and one kept check with a
/// reason, straight from `explain_function`.
#[test]
fn explain_renders_eliminated_and_kept_certificates() {
    let mut module = compile(PROGRAM).unwrap();
    let report = Optimizer::new()
        .with_trace(true)
        .optimize_module(&mut module, None);
    let sum = report.functions.iter().find(|f| f.name == "sum").unwrap();
    let text = abcd::explain_function(sum, None).expect("sum has a trace");
    assert!(text.contains("eliminated: "), "{text}");
    assert!(text.contains("via path "), "{text}");
    assert!(text.contains("weight "), "{text}");
    let peek = report.functions.iter().find(|f| f.name == "peek").unwrap();
    let text = abcd::explain_function(peek, None).expect("peek has a trace");
    assert!(text.contains("kept: "), "{text}");
    // Narrowing to one site filters the others out.
    let only = abcd::explain_function(peek, Some(0)).unwrap();
    assert!(only.contains("ck0") && !only.contains("ck1"), "{only}");
}

/// Satellite: a function whose name contains quotes, backslashes and
/// control characters must still produce valid JSON in every artifact —
/// validated with the repo's own strict parser, not eyeballs.
#[test]
fn hostile_function_names_stay_valid_json_in_every_artifact() {
    let mut module =
        compile("fn f(a: int[], i: int) -> int { return a[i]; } fn main() -> int { return 0; }")
            .unwrap();
    let id = module
        .functions()
        .find(|(_, f)| f.name() == "f")
        .map(|(i, _)| i)
        .unwrap();
    module
        .function_mut(id)
        .set_name("we\"ird\\name\nwith\tctl\u{1}");
    let report = Optimizer::new()
        .with_trace(true)
        .optimize_module(&mut module, None);

    let trace = abcd::module_trace_jsonl(&report, 1, true);
    for line in trace.lines() {
        Json::parse(line).unwrap_or_else(|e| panic!("trace line not valid JSON ({e}): {line}"));
    }
    let metrics = abcd::module_metrics_json(
        &report,
        abcd::RunInfo::new(1, std::time::Duration::ZERO).deterministic(),
    );
    Json::parse(&metrics).expect("metrics document parses");
    assert!(metrics.contains("we\\\"ird\\\\name\\nwith\\tctl\\u0001"));
    let response =
        abcd_server::proto::ok_response("ir text", &report, false, Some(&trace), Some(&metrics));
    let doc = Json::parse(&response).expect("ok_response parses");
    assert!(doc.get("trace").and_then(Json::as_str).is_some());
}

/// Satellite: golden-file pin of the `abcd-trace/3` schema. Deterministic
/// mode must render the example module byte-identically to the checked-in
/// document; a diff here means the schema changed and needs a version bump
/// (and a regenerated golden file).
#[test]
fn trace_schema_v1_matches_the_golden_file() {
    let mut module = compile(PROGRAM).unwrap();
    let report = Optimizer::new()
        .with_trace(true)
        .optimize_module(&mut module, None);
    let trace = abcd::module_trace_jsonl(&report, 1, true);
    let golden = include_str!("golden/observability_trace.jsonl");
    assert_eq!(
        trace, golden,
        "abcd-trace/3 drifted from tests/golden/observability_trace.jsonl; \
         if intentional, bump TRACE_SCHEMA and regenerate with \
         `mjc opt examples/observability.mj --trace-out tests/golden/observability_trace.jsonl --deterministic-metrics`"
    );
}

/// Satellite: an armed fault plan (`panic:sum:solve`) must leave the
/// PassPanic incident as the last trace span for that function, so the
/// trace tells the story even when the pipeline lost its in-flight spans.
#[test]
fn armed_fault_plan_is_the_last_span_of_the_panicked_function() {
    let mut module = compile(PROGRAM).unwrap();
    let plan = abcd::FaultPlan::parse("panic:sum:solve").unwrap();
    let report = Optimizer::new()
        .with_trace(true)
        .with_fault_plan(plan)
        .optimize_module(&mut module, None);
    let trace = abcd::module_trace_jsonl(&report, 1, true);
    let last = trace
        .lines()
        .rfind(|l| l.contains("\"function\":\"sum\""))
        .expect("sum appears in the trace");
    assert!(last.contains("\"span\":\"incident\""), "{last}");
    assert!(last.contains("\"kind\":\"pass_panic\""), "{last}");
    assert!(last.contains("\"pass\":\"solve\""), "{last}");
}

/// Acceptance criterion: tracing disabled is a no-op. Structurally, an
/// untraced prover never allocates an event buffer; behaviorally, traced
/// and untraced runs agree on every output and counter.
#[test]
fn tracing_disabled_is_a_no_op_on_the_prove_path() {
    let mut module = compile(PROGRAM).unwrap();
    abcd_ssa::module_to_essa(&mut module).unwrap();
    let (array, index) = find_check(&module, "sum", CheckKind::Upper);
    let func = module
        .functions()
        .find(|(_, f)| f.name() == "sum")
        .map(|(_, f)| f)
        .unwrap();
    let graph = InequalityGraph::build(func, Problem::Upper, None);
    let mut prover = DemandProver::new(&graph, Vertex::ArrayLen(array));
    assert!(prover.demand_prove(Vertex::Value(index), -1));
    let buf = prover.take_trace();
    assert!(
        buf.is_empty() && buf.capacity() == 0,
        "an untraced prover must not allocate an event buffer"
    );

    let mut plain = compile(PROGRAM).unwrap();
    let mut traced = compile(PROGRAM).unwrap();
    let report_plain = Optimizer::new().optimize_module(&mut plain, None);
    let report_traced = Optimizer::new()
        .with_trace(true)
        .optimize_module(&mut traced, None);
    assert_eq!(plain.to_string(), traced.to_string());
    for (a, b) in report_plain.functions.iter().zip(&report_traced.functions) {
        assert_eq!(a.steps, b.steps, "{}", a.name);
        assert_eq!(a.pre_steps, b.pre_steps, "{}", a.name);
        assert_eq!(a.outcomes, b.outcomes, "{}", a.name);
        assert!(
            a.trace.is_none(),
            "{}: untraced run carries no trace",
            a.name
        );
        assert!(b.trace.is_some(), "{}: traced run carries one", b.name);
    }
}

/// The `metrics` exposition reply and the optimize trace reply are valid
/// JSON end to end through the wire protocol builders.
#[test]
fn provenance_object_reports_verdicts_per_function() {
    let mut module = compile(PROGRAM).unwrap();
    let report = Optimizer::new().optimize_module(&mut module, None);
    let metrics = abcd::module_metrics_json(
        &report,
        abcd::RunInfo::new(1, std::time::Duration::ZERO).deterministic(),
    );
    let doc = Json::parse(&metrics).unwrap();
    let funcs = doc.get("functions").unwrap().as_arr().unwrap();
    let sum = funcs
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some("sum"))
        .unwrap();
    let prov = sum.get("provenance").expect("abcd-metrics/6 provenance");
    let n = |key: &str| prov.get(key).and_then(Json::as_u64).unwrap();
    assert_eq!(
        n("removed_local") + n("removed_global") + n("removed_congruent"),
        2
    );
    assert_eq!(n("kept"), 0);
    let peek = funcs
        .iter()
        .find(|f| f.get("name").and_then(Json::as_str) == Some("peek"))
        .unwrap();
    let prov = peek.get("provenance").unwrap();
    assert_eq!(prov.get("kept").and_then(Json::as_u64), Some(2));
}
