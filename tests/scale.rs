//! Scale behavior: the demand-driven design's selling point is that cost
//! grows with the number of *analyzed checks*, not with program size. This
//! test compiles a synthetic module two orders of magnitude larger than the
//! benchmark kernels and asserts the per-check effort stays in the paper's
//! regime (<10 steps/check on loop kernels) and the whole pipeline stays
//! interactive.

use abcd::Optimizer;
use abcd_frontend::compile;
use abcd_vm::{RtVal, Vm};
use std::fmt::Write;

fn big_module(functions: usize) -> String {
    let mut src = String::new();
    for i in 0..functions {
        // A mix of fully-removable, partially-redundant, and stubborn
        // shapes, cycling by index.
        match i % 3 {
            0 => write!(
                src,
                "fn k{i}(a: int[]) -> int {{
                    let s: int = 0;
                    for (let x: int = 0; x < a.length; x = x + 1) {{ s = s + a[x]; }}
                    return s;
                }}\n"
            )
            .unwrap(),
            1 => write!(
                src,
                "fn k{i}(a: int[], n: int) -> int {{
                    let s: int = 0;
                    let lim: int = n;
                    while (lim > 0) {{
                        for (let x: int = 0; x < lim; x = x + 1) {{ s = s + a[x]; }}
                        lim = lim - 1;
                    }}
                    return s;
                }}\n"
            )
            .unwrap(),
            _ => write!(
                src,
                "fn k{i}(a: int[], idx: int[]) -> int {{
                    let s: int = 0;
                    for (let x: int = 0; x < idx.length; x = x + 1) {{
                        s = s + a[idx[x]];
                    }}
                    return s;
                }}\n"
            )
            .unwrap(),
        }
    }
    src.push_str("fn main() -> int {\n    let a: int[] = new int[16];\n    let idx: int[] = new int[4];\n    let s: int = 0;\n");
    for i in 0..functions {
        match i % 3 {
            0 => writeln!(src, "    s = s + k{i}(a);").unwrap(),
            1 => writeln!(src, "    s = s + k{i}(a, 8);").unwrap(),
            _ => writeln!(src, "    s = s + k{i}(a, idx);").unwrap(),
        }
    }
    src.push_str("    return s;\n}\n");
    src
}

#[test]
fn two_hundred_functions_optimize_quickly_and_soundly() {
    let src = big_module(200);
    let baseline = compile(&src).expect("large module compiles");

    let started = std::time::Instant::now();
    let mut optimized = compile(&src).unwrap();
    let report = Optimizer::new().optimize_module(&mut optimized, None);
    let elapsed = started.elapsed();

    // 200 functions ≈ 1000+ checks: the whole pass must stay interactive
    // even in debug builds (the paper's budget was milliseconds per check
    // on 1999 hardware; we allow a generous ceiling for CI machines).
    assert!(
        elapsed.as_secs() < 60,
        "optimization took {elapsed:?} for {} checks",
        report.checks_total()
    );
    assert!(report.checks_total() > 500, "{}", report.checks_total());
    assert!(
        report.steps_per_check() < 15.0,
        "steps/check degraded at scale: {}",
        report.steps_per_check()
    );
    // Two thirds of the kernels are fully or partially optimizable.
    assert!(
        report.checks_removed_fully() + report.checks_hoisted() > report.checks_total() / 3,
        "removed {} + hoisted {} of {}",
        report.checks_removed_fully(),
        report.checks_hoisted(),
        report.checks_total()
    );

    // And it still computes the same thing.
    let mut vm1 = Vm::new(&baseline);
    let r1 = vm1.call_by_name("main", &[]).unwrap();
    let mut vm2 = Vm::new(&optimized);
    let r2 = vm2.call_by_name("main", &[]).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1, Some(RtVal::Int(0))); // arrays are zero-initialized
    assert!(
        vm2.stats().dynamic_checks_total() < vm1.stats().dynamic_checks_total() / 2,
        "{} -> {}",
        vm1.stats().dynamic_checks_total(),
        vm2.stats().dynamic_checks_total()
    );
}

#[test]
fn deep_expression_nesting_compiles() {
    // 200-deep parenthesized expression: recursive-descent parser and
    // expression lowering must handle it without stack trouble.
    let mut expr = String::from("1");
    for _ in 0..200 {
        expr = format!("({expr} + 1)");
    }
    let src = format!("fn f() -> int {{ return {expr}; }}");
    let m = compile(&src).unwrap();
    let mut vm = Vm::new(&m);
    assert_eq!(vm.call_by_name("f", &[]).unwrap(), Some(RtVal::Int(201)));
}

#[test]
fn long_straightline_check_chain_is_linear() {
    // 300 sequential accesses to a[0]: the first pair of checks survives,
    // every later one is subsumed via π-chains with memoized proofs.
    let mut body = String::from("    let s: int = 0;\n");
    for _ in 0..300 {
        body.push_str("    s = s + a[0];\n");
    }
    let src = format!("fn f(a: int[]) -> int {{\n{body}    return s;\n}}");
    let mut m = compile(&src).unwrap();
    let report = Optimizer::new().optimize_module(&mut m, None);
    assert_eq!(report.checks_total(), 600);
    // Every lower check is provable (index 0 ≥ 0); of the uppers, only the
    // very first survives — the rest are subsumed by its π-chain.
    assert_eq!(
        report.checks_removed_fully(),
        599,
        "all but the first upper"
    );
    assert!(
        report.steps_per_check() < 10.0,
        "chain proofs must be O(1) amortized: {}",
        report.steps_per_check()
    );
}
