//! The chaos soak — the service-level fault-injection harness.
//!
//! Thousands of requests from concurrent clients against a daemon with an
//! armed [`abcd::ChaosPlan`]: worker panics, disk-cache write faults
//! (short write, corrupt-on-write, ENOSPC), truncated and slow-trickled
//! response frames, and mid-request disconnects — all seeded, so a
//! failing run replays. The invariants, in order of importance:
//!
//! 1. **No wrong bytes, ever.** Every `ok` reply is byte-identical to the
//!    one-shot reference: the optimized module normally, the unoptimized
//!    module when the deadline failed open. Chaos may fail a request; it
//!    may never corrupt one.
//! 2. **No deadlock.** Every client thread finishes (each call is bounded
//!    by its own timeouts, so a hang surfaces as an error, not a freeze).
//! 3. **Healthy after the storm.** The daemon still serves correct
//!    replies, exposes its counters, and drains to a clean shutdown.
//! 4. **Crash debris is recovered.** Short writes strand `*.tmp` files in
//!    the cache dir exactly like `kill -9` mid-write would; a restart
//!    quarantines them and reports `recovered` in the stats.
//!
//! Scale via `CHAOS_SOAK_REQUESTS` (default 2000; CI smoke uses less) and
//! `CHAOS_SOAK_SHARDS` (default 2 — the storm runs against a sharded,
//! work-stealing server, with half the clients sending pipelined
//! protocol-v2 batches).

use abcd::{AnalysisCache, ChaosPlan, Optimizer, OptimizerOptions};
use abcd_frontend::compile;
use abcd_server::{CallOptions, Endpoint, RetryPolicy, ServerConfig};
use std::sync::Arc;

fn sock(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcdd-soak-{}-{tag}.sock", std::process::id()))
}

/// Silences the backtraces of *injected* panics (they are the test
/// working as intended); real panics still print.
fn quiet_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str))
            .unwrap_or("");
        if !msg.contains("chaos: injected") {
            default_hook(info);
        }
    }));
}

/// A few distinct programs so the cache sees hits, misses and stores
/// under chaos, not one key hammered 2000 times.
fn programs() -> Vec<String> {
    (0..12)
        .map(|k| {
            format!(
                r#"
                fn scan{k}(a: int[]) -> int {{
                    let s: int = 0;
                    for (let i: int = 0; i < a.length; i = i + 1) {{ s = s + a[i] + {k}; }}
                    return s;
                }}
                fn main() -> int {{
                    let a: int[] = new int[{len}];
                    return scan{k}(a);
                }}
                "#,
                k = k,
                len = 4 + k,
            )
        })
        .collect()
}

struct Reference {
    source: String,
    optimized: String,
    unoptimized: String,
}

fn references() -> Vec<Reference> {
    programs()
        .into_iter()
        .map(|source| {
            let unoptimized = compile(&source).expect("compiles").to_string();
            let mut module = compile(&source).unwrap();
            Optimizer::new().optimize_module(&mut module, None);
            Reference {
                source,
                optimized: module.to_string(),
                unoptimized,
            }
        })
        .collect()
}

fn soak_requests() -> usize {
    std::env::var("CHAOS_SOAK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

fn soak_shards() -> usize {
    std::env::var("CHAOS_SOAK_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(1)
}

#[test]
fn chaos_soak_no_wrong_bytes_no_deadlock_healthy_after_storm() {
    quiet_injected_panics();
    let socket = sock("storm");
    let cache_dir = std::env::temp_dir().join(format!(
        "abcdd-soak-cache-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos() as u64
    ));
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Disk sites look high, but they only fire on cache *stores* — one
    // per distinct function, ~two dozen in the whole soak — so they need
    // aggressive rates to matter. Per-request sites stay low.
    let plan = Arc::new(
        ChaosPlan::parse(
            "seed:42,worker_panic:25,disk_short:350,disk_corrupt:200,disk_full:150,\
             frame_truncate:25,frame_slow:10,disconnect:25",
        )
        .unwrap(),
    );
    let mut config = ServerConfig::new(&socket);
    config.shards = soak_shards();
    config.workers = 3; // per shard
    config.queue = 16;
    config.cache = Some(Arc::new(
        AnalysisCache::with_dir(&cache_dir, 1 << 20).unwrap(),
    ));
    config.io_timeout = Some(std::time::Duration::from_secs(5));
    config.stuck_after = std::time::Duration::from_secs(2);
    config.chaos = Some(Arc::clone(&plan));
    let handle = abcd_server::start(config).unwrap();

    let refs = references();
    let total = soak_requests();
    let clients = 8usize;
    let per_client = total.div_ceil(clients);

    // The storm. Each thread's outcome tally: (ok, fail_open, errors).
    let tallies: Vec<(u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let socket = socket.clone();
                let refs = &refs;
                scope.spawn(move || {
                    let mut tally = (0u64, 0u64, 0u64);
                    // Odd clients speak protocol v2: 4 requests per
                    // pipelined frame. Even clients stay on v1 singles,
                    // so both protocols share the storm (and the socket).
                    let batch = if c % 2 == 1 { 4 } else { 1 };
                    let endpoint = Endpoint::uds(&socket);
                    let options = OptimizerOptions::default();
                    let first = c * per_client;
                    let mut n = first;
                    while n < first + per_client {
                        let frame: Vec<usize> =
                            (n..(n + batch).min(first + per_client)).collect();
                        let calls: Vec<CallOptions> = frame
                            .iter()
                            .map(|&n| CallOptions {
                                metrics: n.is_multiple_of(7),
                                deterministic_metrics: true,
                                trace: n.is_multiple_of(11),
                                // A zero deadline trips deterministically;
                                // a tiny one races — both answers are
                                // legal, and the reply flag says which we
                                // got. In a batch this also exercises the
                                // partial-trip contract: one element fails
                                // open, its neighbors are unaffected.
                                deadline_ms: match n % 10 {
                                    3 => Some(0),
                                    7 => Some(5),
                                    _ => None,
                                },
                            })
                            .collect();
                        let retry = RetryPolicy {
                            max_attempts: 10,
                            overall_ms: Some(30_000),
                            io_timeout_ms: Some(5_000),
                            seed: n as u64,
                            ..RetryPolicy::default()
                        };
                        let items: Vec<_> = frame
                            .iter()
                            .zip(&calls)
                            .map(|(&n, call)| {
                                (
                                    (refs[n % refs.len()].source.as_str(), false),
                                    &options,
                                    None,
                                    *call,
                                )
                            })
                            .collect();
                        let replies = if items.len() == 1 {
                            // v1 single-request path, unchanged.
                            vec![abcd_server::optimize(
                                &socket, items[0].0, &options, None, &calls[0], &retry,
                            )]
                        } else {
                            abcd_server::optimize_batch_at(&endpoint, &items, &retry)
                                .unwrap_or_else(|e| {
                                    frame.iter().map(|_| Err(e.clone())).collect()
                                })
                        };
                        for (&n, reply) in frame.iter().zip(replies) {
                            let r = &refs[n % refs.len()];
                            match reply {
                                Ok(reply) => {
                                    // Invariant 1: never wrong bytes.
                                    if reply.deadline_exceeded {
                                        assert_eq!(
                                            reply.ir, r.unoptimized,
                                            "request {n}: fail-open reply must be the unoptimized module"
                                        );
                                        tally.1 += 1;
                                    } else {
                                        assert_eq!(
                                            reply.ir, r.optimized,
                                            "request {n}: served bytes differ from one-shot optimization"
                                        );
                                        tally.0 += 1;
                                    }
                                }
                                // Chaos is allowed to fail a request — the
                                // client sees a structured error or a
                                // broken connection, never a hang
                                // (timeouts above).
                                Err(_) => tally.2 += 1,
                            }
                        }
                        n += frame.len();
                    }
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok: u64 = tallies.iter().map(|t| t.0).sum();
    let fail_open: u64 = tallies.iter().map(|t| t.1).sum();
    let errors: u64 = tallies.iter().map(|t| t.2).sum();
    assert!(ok > 0, "some requests must succeed outright");
    assert!(
        fail_open > 0,
        "zero-deadline requests must fail open ({ok} ok / {errors} errors)"
    );
    assert!(errors > 0, "chaos at these rates must fail some requests");

    // Invariant 3: healthy after the storm. Chaos is still armed, so
    // probe until a clean request gets through.
    let mut healthy = false;
    for _ in 0..100 {
        if let Ok(reply) = abcd_server::optimize(
            &socket,
            (&refs[0].source, false),
            &OptimizerOptions::default(),
            None,
            &CallOptions::default(),
            &RetryPolicy {
                overall_ms: Some(10_000),
                io_timeout_ms: Some(2_000),
                ..RetryPolicy::default()
            },
        ) {
            assert_eq!(
                reply.ir, refs[0].optimized,
                "post-storm reply must be exact"
            );
            healthy = true;
            break;
        }
    }
    assert!(healthy, "daemon must serve correct replies after the storm");

    // Counters prove the chaos actually happened and was survived.
    let stats = loop {
        match abcd_server::stats(&socket) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    let n = |k: &str| {
        stats
            .get(k)
            .and_then(abcd_server::json::Json::as_u64)
            .unwrap_or(0)
    };
    assert!(
        n("worker_restarts") > 0,
        "panics must have forced respawns: {stats:?}"
    );
    assert!(n("deadline_exceeded") > 0, "{stats:?}");
    let cache_doc = stats.get("cache").expect("cache stats");
    let cn = |k: &str| {
        cache_doc
            .get(k)
            .and_then(abcd_server::json::Json::as_u64)
            .unwrap_or(0)
    };
    assert!(
        cn("write_errors") > 0,
        "disk_short/disk_full must have fired: {stats:?}"
    );
    let exposition = loop {
        match abcd_server::metrics(&socket, false) {
            Ok(e) => break e,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
        }
    };
    for needle in [
        "abcdd_worker_restarts_total",
        "abcdd_deadline_exceeded_total",
        "abcdd_cache_events_total{event=\"recovered\"}",
        "abcdd_cache_events_total{event=\"write_errors\"}",
        "abcdd_chaos_injections_total{site=\"worker_panic\"}",
    ] {
        assert!(
            exposition.contains(needle),
            "missing `{needle}` in exposition"
        );
    }
    assert!(plan.total_injected() > 0, "the plan must have fired");

    // Drain to exit 0 — shutdown itself can be hit by chaos, so retry.
    while abcd_server::shutdown(&socket).is_err() {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.join();
    assert!(!socket.exists(), "socket removed after a chaotic drain");

    // Invariant 4: the short writes above strand `*.tmp` files exactly
    // like kill -9 mid-write; a fresh cache on the same dir must sweep
    // them into quarantine and still serve correct bytes.
    let stranded: Vec<_> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .collect();
    assert!(
        !stranded.is_empty(),
        "disk_short at 35% of stores over {total} requests must strand tmp files"
    );
    let reborn = AnalysisCache::with_dir(&cache_dir, 1 << 20).unwrap();
    assert!(
        reborn.stats().recovered >= stranded.len() as u64,
        "restart must quarantine the debris: {:?}",
        reborn.stats()
    );
    let leftovers = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
        .count();
    assert_eq!(leftovers, 0, "no tmp debris after the recovery sweep");

    let socket2 = sock("after");
    let mut config2 = ServerConfig::new(&socket2);
    config2.cache = Some(Arc::new(reborn));
    let handle2 = abcd_server::start(config2).unwrap();
    for r in &refs {
        let reply = abcd_server::optimize(
            &socket2,
            (&r.source, false),
            &OptimizerOptions::default(),
            None,
            &CallOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(
            reply.ir, r.optimized,
            "post-recovery cache serves exact bytes"
        );
    }
    abcd_server::shutdown(&socket2).unwrap();
    handle2.join();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
