//! CLI robustness golden tests (PR: fail-open optimizer): `mjc` must never
//! panic on malformed input — every failure is a structured `mjc: ` error
//! on stderr with a documented exit code:
//!
//! * 0 — success (including non-degraded budget exhaustion)
//! * 1 — bad input / usage / trap
//! * 2 — the pipeline degraded fail-open (pass panic, verifier rollback,
//!   validation reinstatement)
//! * 3 — an internal `mjc` panic (never expected; tested only for absence)

use std::path::PathBuf;
use std::process::{Command, Output};

fn mjc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mjc"))
        .args(args)
        .output()
        .expect("mjc spawns")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("mjc exited (not signalled)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a scratch input file unique to this test process.
fn scratch(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mjc_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("scratch file writes");
    path
}

const GOOD_PROGRAM: &str = "fn main() -> int {
    let a: int[] = new int[10];
    let s: int = 0;
    for (let i: int = 0; i < a.length; i = i + 1) { a[i] = i; s = s + a[i]; }
    print(s);
    return s;
}";

#[test]
fn help_exits_zero() {
    let out = mjc(&["--help"]);
    assert_eq!(exit_code(&out), 0);
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn usage_errors_are_structured() {
    for args in [
        &[][..],
        &["frobnicate", "x.mj"][..],
        &["run"][..],
        &["run", "/nonexistent/path.mj"][..],
    ] {
        let out = mjc(args);
        assert_eq!(exit_code(&out), 1, "args {args:?}");
        assert!(
            stderr(&out).starts_with("mjc: "),
            "args {args:?}: stderr not structured: {}",
            stderr(&out)
        );
        assert!(
            !stderr(&out).contains("panicked"),
            "args {args:?} panicked: {}",
            stderr(&out)
        );
    }
}

#[test]
fn malformed_source_is_a_structured_error() {
    let mj = scratch("broken.mj", "fn main( -> int { retur 1; }");
    let ir = scratch("broken.ir", "func @main {\n  blergh\n}");
    let truncated = scratch("trunc.mj", "fn main() -> int { return a[");
    for file in [&mj, &ir, &truncated] {
        for cmd in ["run", "opt", "dump", "graph"] {
            let out = mjc(&[cmd, file.to_str().unwrap()]);
            assert_eq!(exit_code(&out), 1, "{cmd} {}", file.display());
            let err = stderr(&out);
            assert!(err.starts_with("mjc: "), "{cmd}: {err}");
            assert!(!err.contains("panicked"), "{cmd} panicked: {err}");
        }
    }
}

#[test]
fn unknown_and_malformed_flags_are_rejected() {
    let file = scratch("flags.mj", GOOD_PROGRAM);
    let file = file.to_str().unwrap();
    for args in [
        &["opt", file, "--explode"][..],
        &["opt", file, "--fuel"][..],
        &["opt", file, "--fuel", "lots"][..],
        &["opt", file, "--fault-plan", "meteor:main"][..],
        &["run", file, "--opt", "--jobs", "many"][..],
    ] {
        let out = mjc(args);
        assert_eq!(exit_code(&out), 1, "args {args:?}");
        assert!(stderr(&out).starts_with("mjc: "), "args {args:?}");
    }
}

#[test]
fn injected_pass_panic_exits_degraded_but_still_runs() {
    let file = scratch("panic.mj", GOOD_PROGRAM);
    let out = mjc(&[
        "run",
        file.to_str().unwrap(),
        "--opt",
        "--fault-plan",
        "panic:main:solve",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("mjc: incident:"), "{}", stderr(&out));
    // The program itself still ran (fail-open: shipped unoptimized).
    assert!(String::from_utf8_lossy(&out.stdout).contains("45"));
}

#[test]
fn budget_exhaustion_is_not_degraded() {
    let file = scratch("fuel.mj", GOOD_PROGRAM);
    let out = mjc(&[
        "run",
        file.to_str().unwrap(),
        "--opt",
        "--fault-plan",
        "fuel:*",
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("mjc: incident:"),
        "exhaustion must still be reported: {}",
        stderr(&out)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("45"));
}

#[test]
fn full_fail_open_flags_run_clean() {
    let file = scratch("clean.mj", GOOD_PROGRAM);
    let out = mjc(&[
        "run",
        file.to_str().unwrap(),
        "--opt",
        "--validate",
        "--verify-ir",
        "--fuel",
        "100000",
        "--metrics",
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("\"schema\":\"abcd-metrics/2\""), "{err}");
    assert!(err.contains("\"incidents\":[]"), "{err}");
}

#[test]
fn trapping_program_exits_one_with_trap_message() {
    let file = scratch(
        "trap.mj",
        "fn main() -> int { let a: int[] = new int[2]; let i: int = 5; return a[i]; }",
    );
    for extra in [&[][..], &["--opt", "--validate"][..]] {
        let mut args = vec!["run", file.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = mjc(&args);
        assert_eq!(exit_code(&out), 1, "args {args:?}");
        let err = stderr(&out);
        // `--opt` prints its stats line first; the trap itself must still
        // be a structured `mjc: ` line.
        assert!(
            err.lines()
                .any(|l| l.starts_with("mjc: ") && l.contains("trap")),
            "{err}"
        );
        assert!(!err.contains("panicked"), "{err}");
    }
}
