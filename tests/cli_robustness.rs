//! CLI robustness golden tests (PR: fail-open optimizer): `mjc` must never
//! panic on malformed input — every failure is a structured `mjc: ` error
//! on stderr with a documented exit code:
//!
//! * 0 — success (including non-degraded budget exhaustion)
//! * 1 — bad input / usage / trap
//! * 2 — the pipeline degraded fail-open (pass panic, verifier rollback,
//!   validation reinstatement)
//! * 3 — an internal `mjc` panic (never expected; tested only for absence)

use std::path::PathBuf;
use std::process::{Command, Output};

fn mjc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_mjc"))
        .args(args)
        .output()
        .expect("mjc spawns")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("mjc exited (not signalled)")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a scratch input file unique to this test process.
fn scratch(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("mjc_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, contents).expect("scratch file writes");
    path
}

const GOOD_PROGRAM: &str = "fn main() -> int {
    let a: int[] = new int[10];
    let s: int = 0;
    for (let i: int = 0; i < a.length; i = i + 1) { a[i] = i; s = s + a[i]; }
    print(s);
    return s;
}";

#[test]
fn help_exits_zero() {
    let out = mjc(&["--help"]);
    assert_eq!(exit_code(&out), 0);
    let help = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(help.contains("USAGE"));
    // Every subcommand and the exit codes are documented in one place.
    for needle in [
        "mjc serve",
        "mjc client",
        "--cache-dir",
        "--deterministic-metrics",
        "abcd-metrics/6",
        "EXIT CODES",
        "0  success",
        "2  degraded",
        "3  internal panic",
    ] {
        assert!(help.contains(needle), "help is missing `{needle}`:\n{help}");
    }
}

#[test]
fn serve_and_client_usage_errors_are_structured() {
    let file = scratch("client.mj", GOOD_PROGRAM);
    for args in [
        // serve without a socket, with a bad flag value, with a typo
        &["serve"][..],
        &["serve", "--socket"][..],
        &["serve", "--socket", "/tmp/x.sock", "--workers", "many"][..],
        &["serve", "--socket", "/tmp/x.sock", "--frobnicate"][..],
        // client without a socket / against a dead socket
        &["client", file.to_str().unwrap()][..],
        &["client", "ping", "--socket", "/nonexistent/dir/abcdd.sock"][..],
        &[
            "client",
            "shutdown",
            "--socket",
            "/nonexistent/dir/abcdd.sock",
        ][..],
    ] {
        let out = mjc(args);
        assert_eq!(exit_code(&out), 1, "args {args:?}: {}", stderr(&out));
        assert!(
            stderr(&out).starts_with("mjc: "),
            "args {args:?}: stderr not structured: {}",
            stderr(&out)
        );
        assert!(
            !stderr(&out).contains("panicked"),
            "args {args:?} panicked: {}",
            stderr(&out)
        );
    }
}

/// The full loop as CI runs it: boot `mjc serve`, round-trip a module with
/// `mjc client`, compare byte-for-byte against one-shot `mjc dump --stage
/// opt`, and shut down gracefully.
#[test]
fn serve_client_roundtrip_matches_dump() {
    let file = scratch("served.mj", GOOD_PROGRAM);
    let socket = std::env::temp_dir().join(format!("mjc_cli_serve_{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);

    let mut server = Command::new(env!("CARGO_BIN_EXE_mjc"))
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--workers",
            "2",
        ])
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("server spawns");

    // Wait for the socket to come up.
    for _ in 0..200 {
        if socket.exists() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let reference = mjc(&["dump", file.to_str().unwrap(), "--stage", "opt"]);
    assert_eq!(exit_code(&reference), 0, "{}", stderr(&reference));

    let served = mjc(&[
        "client",
        file.to_str().unwrap(),
        "--socket",
        socket.to_str().unwrap(),
    ]);
    assert_eq!(exit_code(&served), 0, "{}", stderr(&served));
    assert_eq!(
        String::from_utf8_lossy(&served.stdout),
        String::from_utf8_lossy(&reference.stdout),
        "served output must be byte-identical to one-shot `mjc dump --stage opt`"
    );

    let down = mjc(&["client", "shutdown", "--socket", socket.to_str().unwrap()]);
    assert_eq!(exit_code(&down), 0, "{}", stderr(&down));
    let status = server.wait().expect("server exits");
    assert_eq!(status.code(), Some(0), "graceful drain exits 0");
    assert!(!socket.exists(), "socket file cleaned up");
}

#[test]
fn usage_errors_are_structured() {
    for args in [
        &[][..],
        &["frobnicate", "x.mj"][..],
        &["run"][..],
        &["run", "/nonexistent/path.mj"][..],
    ] {
        let out = mjc(args);
        assert_eq!(exit_code(&out), 1, "args {args:?}");
        assert!(
            stderr(&out).starts_with("mjc: "),
            "args {args:?}: stderr not structured: {}",
            stderr(&out)
        );
        assert!(
            !stderr(&out).contains("panicked"),
            "args {args:?} panicked: {}",
            stderr(&out)
        );
    }
}

#[test]
fn malformed_source_is_a_structured_error() {
    let mj = scratch("broken.mj", "fn main( -> int { retur 1; }");
    let ir = scratch("broken.ir", "func @main {\n  blergh\n}");
    let truncated = scratch("trunc.mj", "fn main() -> int { return a[");
    for file in [&mj, &ir, &truncated] {
        for cmd in ["run", "opt", "dump", "graph"] {
            let out = mjc(&[cmd, file.to_str().unwrap()]);
            assert_eq!(exit_code(&out), 1, "{cmd} {}", file.display());
            let err = stderr(&out);
            assert!(err.starts_with("mjc: "), "{cmd}: {err}");
            assert!(!err.contains("panicked"), "{cmd} panicked: {err}");
        }
    }
}

#[test]
fn unknown_and_malformed_flags_are_rejected() {
    let file = scratch("flags.mj", GOOD_PROGRAM);
    let file = file.to_str().unwrap();
    for args in [
        &["opt", file, "--explode"][..],
        &["opt", file, "--fuel"][..],
        &["opt", file, "--fuel", "lots"][..],
        &["opt", file, "--fault-plan", "meteor:main"][..],
        &["run", file, "--opt", "--jobs", "many"][..],
    ] {
        let out = mjc(args);
        assert_eq!(exit_code(&out), 1, "args {args:?}");
        assert!(stderr(&out).starts_with("mjc: "), "args {args:?}");
    }
}

#[test]
fn injected_pass_panic_exits_degraded_but_still_runs() {
    let file = scratch("panic.mj", GOOD_PROGRAM);
    let out = mjc(&[
        "run",
        file.to_str().unwrap(),
        "--opt",
        "--fault-plan",
        "panic:main:solve",
    ]);
    assert_eq!(exit_code(&out), 2, "stderr: {}", stderr(&out));
    assert!(stderr(&out).contains("mjc: incident:"), "{}", stderr(&out));
    // The program itself still ran (fail-open: shipped unoptimized).
    assert!(String::from_utf8_lossy(&out.stdout).contains("45"));
}

#[test]
fn budget_exhaustion_is_not_degraded() {
    let file = scratch("fuel.mj", GOOD_PROGRAM);
    let out = mjc(&[
        "run",
        file.to_str().unwrap(),
        "--opt",
        "--fault-plan",
        "fuel:*",
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    assert!(
        stderr(&out).contains("mjc: incident:"),
        "exhaustion must still be reported: {}",
        stderr(&out)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("45"));
}

#[test]
fn full_fail_open_flags_run_clean() {
    let file = scratch("clean.mj", GOOD_PROGRAM);
    let out = mjc(&[
        "run",
        file.to_str().unwrap(),
        "--opt",
        "--validate",
        "--verify-ir",
        "--fuel",
        "100000",
        "--metrics",
    ]);
    assert_eq!(exit_code(&out), 0, "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("\"schema\":\"abcd-metrics/6\""), "{err}");
    assert!(err.contains("\"incidents\":[]"), "{err}");
}

#[test]
fn trapping_program_exits_one_with_trap_message() {
    let file = scratch(
        "trap.mj",
        "fn main() -> int { let a: int[] = new int[2]; let i: int = 5; return a[i]; }",
    );
    for extra in [&[][..], &["--opt", "--validate"][..]] {
        let mut args = vec!["run", file.to_str().unwrap()];
        args.extend_from_slice(extra);
        let out = mjc(&args);
        assert_eq!(exit_code(&out), 1, "args {args:?}");
        let err = stderr(&out);
        // `--opt` prints its stats line first; the trap itself must still
        // be a structured `mjc: ` line.
        assert!(
            err.lines()
                .any(|l| l.starts_with("mjc: ") && l.contains("trap")),
            "{err}"
        );
        assert!(!err.contains("panicked"), "{err}");
    }
}
