//! Differential guarantees of the content-addressed analysis cache.
//!
//! The cache must be invisible in the output: a warm run is byte-identical
//! to a cold run, corruption falls back to a cold recompile (reported,
//! never miscompiled), and invalidation is exactly function-granular plus
//! interprocedural dependents.

use abcd::{AnalysisCache, Optimizer, OptimizerOptions, RunInfo};
use abcd_frontend::compile;
use std::sync::Arc;

const PROGRAM: &str = r#"
    fn sum(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }
    fn rev(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = a.length - 1; i >= 0; i = i - 1) { s = s + a[i]; }
        return s;
    }
    fn main() -> int {
        let a: int[] = new int[8];
        return sum(a) + rev(a);
    }
"#;

fn optimize_with(
    cache: Option<&Arc<AnalysisCache>>,
    threads: usize,
    src: &str,
) -> (String, abcd::ModuleReport) {
    let mut module = compile(src).expect("compiles");
    let mut optimizer = Optimizer::new().with_threads(threads);
    if let Some(cache) = cache {
        optimizer = optimizer.with_cache(Arc::clone(cache));
    }
    let report = optimizer.optimize_module(&mut module, None);
    (module.to_string(), report)
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("abcd-cache-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Acceptance (b): the warm run is byte-identical to the cold run, with
/// `hits > 0` visible in the `abcd-metrics/6` cache object, and the
/// deterministic metrics documents (cache counters aside) match too.
#[test]
fn warm_run_is_byte_identical_to_cold_with_hits() {
    let cache = Arc::new(AnalysisCache::in_memory(1 << 20));
    let (cold_ir, cold_report) = optimize_with(Some(&cache), 1, PROGRAM);
    assert_eq!(cold_report.functions_from_cache(), 0);
    assert!(cache.stats().stores > 0, "{:?}", cache.stats());

    let (warm_ir, warm_report) = optimize_with(Some(&cache), 1, PROGRAM);
    assert_eq!(cold_ir, warm_ir, "warm output must be byte-identical");
    assert_eq!(
        warm_report.functions_from_cache(),
        warm_report.functions.len(),
        "every function should replay"
    );
    let stats = cache.stats();
    assert!(stats.hits > 0, "{stats:?}");

    // Replay reproduces the cold run's verdicts and solver-effort numbers
    // (memo/graph observability is intentionally zero on replay: no solver
    // work happened this run).
    assert_eq!(cold_report.steps(), warm_report.steps());
    for (cold_fn, warm_fn) in cold_report.functions.iter().zip(&warm_report.functions) {
        assert_eq!(cold_fn.outcomes, warm_fn.outcomes, "{}", cold_fn.name);
        assert_eq!(cold_fn.steps, warm_fn.steps, "{}", cold_fn.name);
    }

    // Two identical warm runs emit byte-identical deterministic metrics,
    // including the cache object with `hits > 0` (satellite: deterministic
    // metrics for byte-for-byte comparison).
    let (_, rerun_report) = optimize_with(Some(&cache), 1, PROGRAM);
    let stats_now = cache.stats();
    let det = |report: &abcd::ModuleReport, stats: abcd::CacheStats| {
        abcd::module_metrics_json(
            report,
            RunInfo::new(1, std::time::Duration::ZERO)
                .deterministic()
                .with_cache(stats),
        )
    };
    let a = det(&warm_report, stats_now);
    let b = det(&rerun_report, stats_now);
    assert_eq!(a, b, "deterministic metrics must be byte-identical");
    assert!(a.contains("\"schema\":\"abcd-metrics/6\""), "{a}");
    assert!(a.contains(&format!("\"hits\":{}", stats_now.hits)), "{a}");
    assert!(stats_now.hits > stats.hits);
}

/// Acceptance (a)-adjacent: a parallel warm run over a shared cache is
/// byte-identical to the sequential cold run.
#[test]
fn parallel_warm_run_matches_sequential_cold() {
    let (cold_ir, _) = optimize_with(None, 1, PROGRAM);
    let cache = Arc::new(AnalysisCache::in_memory(1 << 20));
    let (seed_ir, _) = optimize_with(Some(&cache), 1, PROGRAM);
    assert_eq!(cold_ir, seed_ir, "caching itself must not change output");
    for threads in [2, 4] {
        let (warm_ir, report) = optimize_with(Some(&cache), threads, PROGRAM);
        assert_eq!(cold_ir, warm_ir, "threads={threads}");
        assert!(report.functions_from_cache() > 0, "threads={threads}");
    }
}

/// Acceptance (c): editing one function invalidates only that function;
/// untouched functions still replay.
#[test]
fn editing_one_function_invalidates_only_it() {
    let cache = Arc::new(AnalysisCache::in_memory(1 << 20));
    let (_, first) = optimize_with(Some(&cache), 1, PROGRAM);
    let total = first.functions.len();

    // Same program with only `rev` edited (different loop start).
    let edited = PROGRAM.replace("a.length - 1", "a.length - 2");
    assert_ne!(edited, PROGRAM);
    let (_, second) = optimize_with(Some(&cache), 1, &edited);
    assert_eq!(
        second.functions_from_cache(),
        total - 1,
        "exactly the edited function recompiles"
    );
    let rev = second.functions.iter().find(|f| f.name == "rev").unwrap();
    assert!(!rev.from_cache, "the edited function must not replay");
    let sum = second.functions.iter().find(|f| f.name == "sum").unwrap();
    assert!(sum.from_cache, "untouched functions must replay");
}

/// Acceptance (c), interprocedural: an edit in a *caller* that weakens the
/// callee's inferred parameter facts recompiles the callee too — its
/// summary fingerprint is part of the key — while unrelated functions
/// still replay.
#[test]
fn interproc_caller_edit_invalidates_callee() {
    let src_strong = r#"
        fn get(a: int[], i: int) -> int { return a[i]; }
        fn other(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
            return s;
        }
        fn main() -> int {
            let a: int[] = new int[4];
            return get(a, 0) + other(a);
        }
    "#;
    // Caller now passes an index the fact inference can no longer bound.
    let src_weak = src_strong.replace(
        "return get(a, 0) + other(a);",
        "return get(a, 7) + other(a);",
    );
    assert_ne!(src_strong, src_weak);

    let options = OptimizerOptions {
        interprocedural: true,
        ..OptimizerOptions::default()
    };
    let run = |cache: &Arc<AnalysisCache>, src: &str| {
        let mut module = compile(src).expect("compiles");
        let report = Optimizer::with_options(options)
            .with_cache(Arc::clone(cache))
            .optimize_module(&mut module, None);
        (module.to_string(), report)
    };

    let cache = Arc::new(AnalysisCache::in_memory(1 << 20));
    let (_, first) = run(&cache, src_strong);
    assert_eq!(first.functions_from_cache(), 0);

    let (weak_ir, second) = run(&cache, &src_weak);
    let get = second.functions.iter().find(|f| f.name == "get").unwrap();
    let other = second.functions.iter().find(|f| f.name == "other").unwrap();
    assert!(
        !get.from_cache,
        "callee facts changed with the caller edit; it must recompile"
    );
    assert!(other.from_cache, "an unrelated function still replays");

    // And the cached run of the edited program equals the uncached one.
    let mut module = compile(src_weak.as_str()).expect("compiles");
    Optimizer::with_options(options).optimize_module(&mut module, None);
    assert_eq!(weak_ir, module.to_string());
}

/// Acceptance (d): a corrupted disk entry is detected by re-verification,
/// surfaced as a non-degraded `cache_corrupt` incident, recompiled cold to
/// a byte-identical module, and healed in place.
#[test]
fn corrupted_disk_entry_falls_back_cold_and_heals() {
    let dir = scratch_dir("corrupt");
    let (reference_ir, _) = optimize_with(None, 1, PROGRAM);

    {
        let cache = Arc::new(AnalysisCache::with_dir(&dir, 1 << 20).unwrap());
        let (ir, _) = optimize_with(Some(&cache), 1, PROGRAM);
        assert_eq!(ir, reference_ir);
        assert!(cache.stats().stores > 0);
    }

    // Flip one payload byte in every persisted entry.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("abcdc") {
            continue;
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        corrupted += 1;
    }
    assert!(
        corrupted > 0,
        "expected persisted entries in {}",
        dir.display()
    );

    // A fresh process (fresh in-memory cache, same directory) must detect
    // the corruption, report it, and still produce identical output.
    let cache = Arc::new(AnalysisCache::with_dir(&dir, 1 << 20).unwrap());
    let (ir, report) = optimize_with(Some(&cache), 1, PROGRAM);
    assert_eq!(ir, reference_ir, "corruption must never change output");
    assert_eq!(report.functions_from_cache(), 0);
    let stats = cache.stats();
    assert_eq!(stats.corrupt as usize, corrupted, "{stats:?}");
    assert!(
        report
            .incidents()
            .any(|i| i.kind_name() == "cache_corrupt" && !i.is_degraded()),
        "corruption is an incident, not a degradation: {:?}",
        report.incidents().collect::<Vec<_>>()
    );

    // The quarantined entries were rewritten by the cold recompile: a
    // third run replays cleanly with no further incidents.
    let cache = Arc::new(AnalysisCache::with_dir(&dir, 1 << 20).unwrap());
    let (ir, report) = optimize_with(Some(&cache), 1, PROGRAM);
    assert_eq!(ir, reference_ir);
    assert_eq!(report.incident_count(), 0, "the cache healed");
    assert!(cache.stats().disk_hits > 0, "{:?}", cache.stats());

    let _ = std::fs::remove_dir_all(&dir);
}

/// An armed fault plan disables the cache entirely: injected faults must
/// fire identically on every run (a replay would swallow them), and
/// faulted results must never be stored.
#[test]
fn fault_plan_disables_the_cache() {
    let cache = Arc::new(AnalysisCache::in_memory(1 << 20));
    // Warm the cache first so a hit *would* be available.
    let (_, _) = optimize_with(Some(&cache), 1, PROGRAM);
    assert!(cache.stats().stores > 0);
    let before = cache.stats();

    let plan = abcd::FaultPlan::parse("panic:sum:solve").unwrap();
    let mut module = compile(PROGRAM).unwrap();
    let report = Optimizer::new()
        .with_cache(Arc::clone(&cache))
        .with_fault_plan(plan)
        .optimize_module(&mut module, None);
    assert!(
        report.incident_count() > 0,
        "the fault must fire through the warm cache"
    );
    assert_eq!(report.functions_from_cache(), 0);
    let after = cache.stats();
    assert_eq!(
        (before.hits, before.misses, before.stores),
        (after.hits, after.misses, after.stores),
        "a faulted run must not touch the cache"
    );
}

/// The disk cache round-trips across "process" boundaries: a fresh cache
/// over the same directory replays from disk alone.
#[test]
fn disk_entries_survive_restart() {
    let dir = scratch_dir("restart");
    let (cold_ir, _) = {
        let cache = Arc::new(AnalysisCache::with_dir(&dir, 1 << 20).unwrap());
        optimize_with(Some(&cache), 1, PROGRAM)
    };
    let cache = Arc::new(AnalysisCache::with_dir(&dir, 1 << 20).unwrap());
    let (warm_ir, report) = optimize_with(Some(&cache), 1, PROGRAM);
    assert_eq!(cold_ir, warm_ir);
    assert_eq!(report.functions_from_cache(), report.functions.len());
    assert!(cache.stats().disk_hits > 0, "{:?}", cache.stats());
    let _ = std::fs::remove_dir_all(&dir);
}
