//! Umbrella crate for the ABCD reproduction.
//!
//! Re-exports every sub-crate so examples and integration tests can depend on
//! a single package. See `README.md` for an overview and `DESIGN.md` for the
//! system inventory.

pub use abcd as core;
pub use abcd_analysis as analysis;
pub use abcd_benchsuite as benchsuite;
pub use abcd_frontend as frontend;
pub use abcd_ir as ir;
pub use abcd_ssa as ssa;
pub use abcd_vm as vm;
