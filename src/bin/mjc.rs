//! `mjc` — the MJ compiler driver of the ABCD reproduction.
//!
//! ```text
//! mjc run <file.mj> [--opt] [--stats] [--arg N]...   compile and execute main()
//! mjc opt <file.mj> [passes…] [--dump]               optimize and report
//! mjc explain <file.mj> <fn> [--check N]             print proof certificates
//! mjc dump <file.mj> [--stage ir|ssa|essa|opt]       print the IR of a stage
//! mjc graph <file.mj> [--fn NAME] [--lower]          print the inequality graph
//! mjc serve --socket PATH [server flags]             run the abcdd daemon
//! mjc client <file|ping|stats|metrics|shutdown> --socket P   talk to abcdd
//! ```
//!
//! Inputs ending in `.ir` are parsed as textual IR instead of MJ source.
//!
//! Pass flags for `opt`/`run --opt`: `--no-pre`, `--no-lower`, `--no-upper`,
//! `--no-cleanup`, `--no-gvn-hook`, `--merge`, `--ipa` (closed-world
//! interprocedural facts), `--version-fns` (guarded fast/slow clones),
//! `--hot N` (with `--profile`), `--jobs N` (parallel driver),
//! `--prover demand|batch|dbm|auto` (query-engine selection),
//! `--metrics`/`--metrics-out FILE` (`abcd-metrics/6` JSON),
//! `--trace-out FILE` (`abcd-trace/3` JSONL structured trace),
//! `--deterministic-metrics` (zero every duration for byte-comparable
//! output), `--cache-dir DIR`/`--cache-bytes N` (content-addressed analysis
//! cache), and the fail-open controls `--fuel N`, `--fuel-fn N`,
//! `--validate`, `--verify-ir`, `--fault-plan SPEC`, `--no-isolate`.
//!
//! Exit codes: `0` success, `1` error (bad input, trap, usage), `2` the
//! pipeline degraded fail-open (a pass panicked, IR verification failed, or
//! validation reinstated a check — the output is still correct, just less
//! optimized), `3` internal panic (a bug in `mjc` itself).

use abcd::{FaultPlan, InequalityGraph, Optimizer, OptimizerOptions, Problem, VertexId};
use abcd_frontend::compile;
use abcd_ir::Module;
use abcd_vm::{RtVal, Vm};
use std::process::ExitCode;
use std::time::Instant;

/// The pipeline finished but only by degrading fail-open somewhere.
const EXIT_DEGRADED: u8 = 2;
/// `mjc` itself panicked — never expected; distinct so scripts can tell an
/// internal bug from a bad input.
const EXIT_INTERNAL: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match std::panic::catch_unwind(|| run(&args)) {
        Ok(Ok(code)) => code,
        Ok(Err(msg)) => {
            eprintln!("mjc: {msg}");
            ExitCode::FAILURE
        }
        Err(_) => {
            // The panic hook already printed the payload and location.
            eprintln!("mjc: internal error (panic) — please report this");
            ExitCode::from(EXIT_INTERNAL)
        }
    }
}

const HELP: &str = "\
mjc — the MJ compiler driver of the ABCD reproduction

USAGE:
    mjc run   <file.mj|file.ir> [--opt] [--profile] [--stats] [--arg N]...
    mjc opt   <file.mj|file.ir> [pass flags] [--version-fns] [--dump]
    mjc explain <file.mj|file.ir> <fn> [--check N] [pass flags]
    mjc dump  <file.mj|file.ir> [--stage ir|ssa|essa|opt]
    mjc graph <file.mj|file.ir> [--fn NAME] [--lower]        (Graphviz output)
    mjc serve --socket PATH [--listen ADDR]... [--shards N] [--workers N]
              [--queue N] [--jobs N]
              [--cache-dir DIR] [--cache-bytes N] [--no-cache]
              [--request-timeout MS] [--io-timeout MS] [--stuck-after MS]
              [--chaos PLAN]
    mjc client <file.mj|file.ir> (--socket PATH | --tcp ADDR) [pass flags]
               [--metrics] [--timeout MS] [--deadline MS] [--batch N]
    mjc client ping|stats|metrics|shutdown (--socket PATH | --tcp ADDR)

PASS FLAGS (for `opt`, `run --opt` and `client <file>`):
    --no-pre --no-lower --no-upper --no-cleanup --no-gvn-hook
    --merge            merge surviving lower+upper pairs (§7.2)
    --ipa              closed-world interprocedural parameter facts
    --version-fns      guarded fast/slow function clones
    --hot N            with --profile: analyze only sites with ≥N hits
    --jobs N           optimize functions on N worker threads (default and
                       ceiling: all host CPUs — requests are clamped to the
                       available parallelism)
    --prover ENGINE    query engine: demand (default, the paper's DFS),
                       batch (one shortest-path sweep per source), dbm
                       (dense difference-bound relaxation), or auto (pick
                       per function by graph shape); verdicts are identical
    --metrics          emit abcd-metrics/6 JSON (stdout for opt, stderr for run)
    --metrics-out F    write the metrics JSON to file F
    --trace-out F      record an abcd-trace/3 JSONL structured trace to F
                       (spans for every pass, prove query, PRE decision and
                       cache lookup; zero overhead when absent)
    --deterministic-metrics
                       zero every duration in the metrics JSON (and every
                       trace timestamp) so identical runs are byte-identical
                       (warm/cold cache comparisons)

EXPLAIN (`mjc explain <file> <fn> [--check N]`):
    replays the recorded derivation into human-readable proof certificates:
    why each check was eliminated (the derivation path and its weight) or
    kept (amplifying cycle, fuel exhaustion, unconstrained vertex).
    `--check N` narrows the output to check site ckN.

CACHING (for `opt`, `run --opt`; always on in `serve` unless --no-cache):
    --cache-dir DIR    persist analysis-cache entries to DIR; entries are
                       content-addressed and re-verified on load, corruption
                       is reported as an incident and recompiled cold
    --cache-bytes N    in-memory cache budget in bytes (default 64 MiB)

SERVER (for `serve`; `client` retries `busy` and queue-position replies
with exponential backoff + jitter, floored by the server's adaptive hint):
    --socket PATH      Unix-domain socket (serve: same as --listen uds:PATH;
                       client: where to connect)
    --listen ADDR      (serve) extra endpoint: uds:/path.sock or
                       tcp:host:port (tcp:127.0.0.1:0 picks a free port);
                       repeatable — all endpoints share one shard set
    --shards N         (serve) independent run queues with work stealing
                       between them; admission is least-loaded (default 1)
    --tcp ADDR         (client) connect over TCP to host:port instead of
                       the Unix socket
    --batch N          (client) send the request N times as one pipelined
                       protocol-v2 frame; replies stream back in order and
                       must all carry identical IR (printed once)
    --workers N        request handlers per shard (default: all host CPUs;
                       clamped to the available parallelism)
    --queue N          bounded admission queue per shard; when every shard
                       is full the reply is a queue-position `busy` with
                       `queued`/`retry_after_ms` instead of blocking
                       (default 8)
    --request-timeout MS   (serve) default per-request deadline; tripping it
                       fails open: the module is served unoptimized with a
                       non-degraded deadline_exceeded incident
    --io-timeout MS    (serve) socket read/write timeout per frame
                       (default 30000; 0 disables)
    --stuck-after MS   (serve) supervision threshold: a request in flight
                       longer than this gets its connection kicked, 4x
                       longer gets its worker replaced (default 30000)
    --chaos PLAN       (serve) seeded fault injection, e.g.
                       `seed:42,worker_panic:20` (see `abcd::ChaosPlan`)
    --timeout MS       (client) end-to-end budget: connect, each frame, all
                       retries and backoff sleeps combined
    --deadline MS      (client) per-request deadline_ms sent to the server

FAIL-OPEN CONTROLS (for `opt` and `run --opt`):
    --fuel N           per-query solver step budget (exhaustion keeps the check)
    --fuel-fn N        per-function solver step budget
    --validate         translation-validate: re-prove every elimination on a
                       fresh constraint graph, reinstating anything unproven
    --verify-ir        verify the IR between passes (failing pass is rolled back)
    --fault-plan SPEC  inject deterministic faults, e.g. panic:f:solve,fuel:g,
                       edge:*:42 (see `abcd::FaultPlan`)
    --no-isolate       disable per-function panic isolation (panics become
                       fatal instead of shipping the function unoptimized)

EXIT CODES:
    0  success     1  error (bad input, trap, usage)
    2  degraded    3  internal panic
";

fn usage() -> String {
    HELP.to_string()
}

/// Loads `file` as a module: textual IR when the extension is `.ir`, MJ
/// source otherwise. All failure modes are structured errors, never panics.
fn load_module(file: &str) -> Result<Module, String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    if file.ends_with(".ir") {
        abcd_ir::parse_module(&source).map_err(|e| format!("{file}: {e}"))
    } else {
        compile(&source).map_err(|e| format!("{file}: {e}"))
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or_else(usage)?;
    if cmd == "--help" || cmd == "help" || cmd == "-h" {
        print!("{HELP}");
        return Ok(ExitCode::SUCCESS);
    }
    if cmd == "serve" {
        return cmd_serve(&args[1..]);
    }
    let file = args.get(1).ok_or_else(usage)?;
    let rest = &args[2..];

    match cmd.as_str() {
        "run" => cmd_run(file, rest),
        "opt" => cmd_opt(file, rest),
        "explain" => cmd_explain(file, rest),
        "dump" => cmd_dump(file, rest),
        "graph" => cmd_graph(file, rest),
        "client" => cmd_client(file, rest),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn parse_options(rest: &[String]) -> Result<OptimizerOptions, String> {
    let mut o = OptimizerOptions::default();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--no-pre" => o.pre = false,
            "--no-lower" => o.lower = false,
            "--no-upper" => o.upper = false,
            "--no-cleanup" => o.cleanup = false,
            "--no-gvn-hook" => o.gvn_hook = false,
            "--ipa" => o.interprocedural = true,
            "--version-fns" => {}
            "--merge" => o.merge_checks = true,
            "--validate" => o.validate = true,
            "--verify-ir" => o.verify_ir = true,
            "--no-isolate" => o.isolate_panics = false,
            "--hot" => {
                i += 1;
                let n = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("`--hot` needs a count")?;
                o.hot_threshold = Some(n);
            }
            "--fuel" => {
                i += 1;
                let n = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("`--fuel` needs a step count")?;
                o.fuel_per_query = Some(n);
            }
            "--fuel-fn" => {
                i += 1;
                let n = rest
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("`--fuel-fn` needs a step count")?;
                o.fuel_per_function = Some(n);
            }
            "--prover" => {
                i += 1;
                let v = rest
                    .get(i)
                    .ok_or("`--prover` needs an engine (demand|batch|dbm|auto)")?;
                o.prover = abcd::ProverBackend::parse(v)
                    .ok_or_else(|| format!("unknown prover `{v}` (demand|batch|dbm|auto)"))?;
            }
            // run/dump/serve/client flags handled by callers
            "--opt"
            | "--stats"
            | "--profile"
            | "--dump"
            | "--metrics"
            | "--deterministic-metrics"
            | "--no-cache" => {}
            "--arg" | "--stage" | "--fn" | "--jobs" | "--metrics-out" | "--trace-out"
            | "--check" | "--fault-plan" | "--cache-dir" | "--cache-bytes" | "--socket"
            | "--listen" | "--shards" | "--tcp" | "--batch" | "--workers" | "--queue"
            | "--request-timeout" | "--io-timeout" | "--stuck-after" | "--chaos" | "--timeout"
            | "--deadline" => i += 1,
            "--lower" if rest[i] == "--lower" => {}
            other => return Err(format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Ok(o)
}

fn has(rest: &[String], flag: &str) -> bool {
    rest.iter().any(|a| a == flag)
}

fn value_of<'a>(rest: &'a [String], flag: &str) -> Option<&'a str> {
    rest.iter()
        .position(|a| a == flag)
        .and_then(|i| rest.get(i + 1))
        .map(String::as_str)
}

fn jobs_of(rest: &[String]) -> Result<usize, String> {
    // Requests are clamped to the host's available parallelism: extra
    // workers on an undersized host only add contention (the benchsuite ran
    // ~40% slower oversubscribed — see `pipeline/abcd_suite_threads/*` in
    // `BENCH_pipeline.json`). `--jobs 0` / absent means "all host CPUs".
    match value_of(rest, "--jobs") {
        None => Ok(abcd::clamp_jobs(0)),
        Some(v) => v
            .parse()
            .map(abcd::clamp_jobs)
            .map_err(|_| "`--jobs` needs a count".to_string()),
    }
}

/// Builds the analysis cache requested by `--cache-dir`/`--cache-bytes`
/// (batch mode caches only when asked; `serve` defaults the other way).
fn cache_for(rest: &[String]) -> Result<Option<std::sync::Arc<abcd::AnalysisCache>>, String> {
    let bytes = match value_of(rest, "--cache-bytes") {
        None => abcd::cache::DEFAULT_CACHE_BYTES,
        Some(v) => v
            .parse()
            .map_err(|_| "`--cache-bytes` needs a byte count".to_string())?,
    };
    match value_of(rest, "--cache-dir") {
        Some(dir) => {
            let cache = abcd::AnalysisCache::with_dir(std::path::Path::new(dir), bytes)
                .map_err(|e| format!("--cache-dir {dir}: {e}"))?;
            Ok(Some(std::sync::Arc::new(cache)))
        }
        None if has(rest, "--cache-bytes") => Ok(Some(std::sync::Arc::new(
            abcd::AnalysisCache::in_memory(bytes),
        ))),
        None => Ok(None),
    }
}

/// Builds the optimizer for `opt`/`run --opt`, wiring in any `--fault-plan`
/// and cache. Returns the cache too so metrics can report its counters.
fn optimizer_for(
    options: OptimizerOptions,
    rest: &[String],
) -> Result<(Optimizer, Option<std::sync::Arc<abcd::AnalysisCache>>), String> {
    let mut optimizer = Optimizer::with_options(options)
        .with_threads(jobs_of(rest)?)
        .with_trace(value_of(rest, "--trace-out").is_some());
    let cache = cache_for(rest)?;
    if let Some(cache) = &cache {
        optimizer = optimizer.with_cache(std::sync::Arc::clone(cache));
    }
    if let Some(spec) = value_of(rest, "--fault-plan") {
        let plan = FaultPlan::parse(spec).map_err(|e| format!("--fault-plan: {e}"))?;
        optimizer = optimizer.with_fault_plan(plan);
    }
    Ok((optimizer, cache))
}

/// Prints every incident to stderr and picks the exit code: degraded
/// incidents (panics, verifier failures, reinstatements) exit 2 so scripts
/// notice, while pure budget exhaustion — requested behavior, not a failure
/// — stays at 0.
fn incident_exit(report: &abcd::ModuleReport) -> ExitCode {
    for incident in report.incidents() {
        eprintln!("mjc: incident: {incident}");
    }
    if report.degraded_incident_count() > 0 {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

/// Emits the `abcd-metrics/6` JSON if `--metrics` or `--metrics-out` was
/// given. `to_stderr` keeps `run`'s program output clean on stdout.
fn emit_metrics(
    report: &abcd::ModuleReport,
    threads: usize,
    wall: std::time::Duration,
    cache: Option<&abcd::AnalysisCache>,
    rest: &[String],
    to_stderr: bool,
) -> Result<(), String> {
    let to_file = value_of(rest, "--metrics-out");
    if !has(rest, "--metrics") && to_file.is_none() {
        return Ok(());
    }
    let mut run = abcd::RunInfo::new(threads, wall);
    if let Some(cache) = cache {
        run = run.with_cache(cache.stats());
    }
    if has(rest, "--deterministic-metrics") {
        run = run.deterministic();
    }
    let json = abcd::module_metrics_json(report, run);
    if let Some(path) = to_file {
        std::fs::write(path, format!("{json}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if has(rest, "--metrics") {
        if to_stderr {
            eprintln!("{json}");
        } else {
            emit(format!("{json}\n"));
        }
    }
    Ok(())
}

/// Writes the `abcd-trace/3` JSONL document if `--trace-out` was given.
fn emit_trace(report: &abcd::ModuleReport, threads: usize, rest: &[String]) -> Result<(), String> {
    let Some(path) = value_of(rest, "--trace-out") else {
        return Ok(());
    };
    let doc = abcd::module_trace_jsonl(report, threads, has(rest, "--deterministic-metrics"));
    std::fs::write(path, doc).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(file: &str, rest: &[String]) -> Result<ExitCode, String> {
    // Validate flags up front so typos are rejected even without --opt.
    let options = parse_options(rest)?;
    let mut module = load_module(file)?;
    let mut profile = None;
    let mut exit = ExitCode::SUCCESS;

    if has(rest, "--opt") {
        if has(rest, "--profile") {
            // Training run first (the JIT scenario).
            let mut vm = Vm::new(&module);
            vm.call_by_name("main", &[]).map_err(|t| t.to_string())?;
            profile = Some(vm.into_profile());
        }
        let (optimizer, cache) = optimizer_for(options, rest)?;
        let threads = optimizer.threads();
        let started = Instant::now();
        let report = optimizer.optimize_module(&mut module, profile.as_ref());
        let wall = started.elapsed();
        eprintln!(
            "abcd: {}/{} checks removed, {} hoisted, {:.1} steps/check",
            report.checks_removed_fully(),
            report.checks_total(),
            report.checks_hoisted(),
            report.steps_per_check()
        );
        emit_metrics(&report, threads, wall, cache.as_deref(), rest, true)?;
        emit_trace(&report, threads, rest)?;
        exit = incident_exit(&report);
    }

    let int_args: Vec<RtVal> = rest
        .iter()
        .zip(rest.iter().skip(1))
        .filter(|(a, _)| a.as_str() == "--arg")
        .map(|(_, v)| v.parse().map(RtVal::Int))
        .collect::<Result<_, _>>()
        .map_err(|e| format!("bad --arg: {e}"))?;

    let mut vm = Vm::new(&module);
    let result = vm
        .call_by_name("main", &int_args)
        .map_err(|t| t.to_string())?;
    for v in vm.output() {
        println!("{v}");
    }
    if let Some(r) = result {
        eprintln!("=> {r}");
    }
    if has(rest, "--stats") {
        let s = vm.stats();
        eprintln!(
            "instructions: {}, cycles: {}, checks: lower {} / upper {} / merged {}, speculative {}, residual traps {}",
            s.insts,
            s.cycles,
            s.checks[0],
            s.checks[1],
            s.checks[2],
            s.spec_checks.iter().sum::<u64>(),
            s.trap_tests
        );
    }
    Ok(exit)
}

fn cmd_opt(file: &str, rest: &[String]) -> Result<ExitCode, String> {
    let mut module = load_module(file)?;
    let options = parse_options(rest)?;
    let (optimizer, cache) = optimizer_for(options, rest)?;
    let threads = optimizer.threads();
    let started = Instant::now();
    let report = optimizer.optimize_module(&mut module, None);
    let wall = started.elapsed();
    emit_metrics(&report, threads, wall, cache.as_deref(), rest, false)?;
    emit_trace(&report, threads, rest)?;
    if has(rest, "--version-fns") {
        let v = abcd::version_functions(&mut module, None, 0);
        for (name, facts, removed) in &v.versioned {
            println!("versioned {name}: {removed} checks removed in fast path under {facts:?}");
        }
    }
    for f in &report.functions {
        println!(
            "{}: {} checks — {} fully redundant ({} local), {} hoisted ({} compensating inserted), {} merged, {} steps",
            f.name,
            f.checks_total,
            f.removed_fully(),
            f.removed_locally(),
            f.hoisted(),
            f.spec_checks_inserted,
            f.checks_merged,
            f.steps,
        );
    }
    if has(rest, "--dump") {
        println!("\n{module}");
    }
    Ok(incident_exit(&report))
}

/// `mjc explain`: run the pipeline with tracing on and replay the recorded
/// derivation for one function as human-readable proof certificates.
fn cmd_explain(file: &str, rest: &[String]) -> Result<ExitCode, String> {
    let func_name = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("`explain` needs a function name: mjc explain <file> <fn> [--check N]")?
        .clone();
    let flags = &rest[1..];
    let check = match value_of(flags, "--check") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| "`--check` needs a check number".to_string())?,
        ),
    };
    let options = parse_options(flags)?;
    let mut module = load_module(file)?;
    let (optimizer, _cache) = optimizer_for(options, flags)?;
    let report = optimizer
        .with_trace(true)
        .optimize_module(&mut module, None);
    let Some(frep) = report
        .functions
        .iter()
        .find(|f| f.name.as_str() == func_name)
    else {
        return Err(format!("no function `{func_name}` in {file}"));
    };
    match abcd::explain_function(frep, check) {
        Some(text) => {
            emit(text);
            Ok(incident_exit(&report))
        }
        None => Err(format!("no derivation recorded for `{func_name}`")),
    }
}

fn cmd_dump(file: &str, rest: &[String]) -> Result<ExitCode, String> {
    let stage = value_of(rest, "--stage").unwrap_or("essa");
    let mut module = load_module(file)?;
    match stage {
        "ir" => {}
        "ssa" => {
            let ids: Vec<_> = module.functions().map(|(i, _)| i).collect();
            for id in ids {
                let f = module.function_mut(id);
                abcd_ssa::split_critical_edges(f);
                abcd_ssa::promote_locals(f).map_err(|e| e.to_string())?;
            }
        }
        "essa" => {
            abcd_ssa::module_to_essa(&mut module).map_err(|(n, e)| format!("{n}: {e}"))?;
        }
        "opt" => {
            Optimizer::new().optimize_module(&mut module, None);
        }
        other => return Err(format!("unknown stage `{other}` (ir|ssa|essa|opt)")),
    }
    emit(format!("{module}\n"));
    Ok(ExitCode::SUCCESS)
}

/// Writes to stdout, tolerating a closed pipe (`mjc dump … | head`).
fn emit(text: String) {
    use std::io::Write;
    let _ = std::io::stdout().write_all(text.as_bytes());
}

/// `mjc serve`: run the `abcdd` daemon in the foreground until a client
/// sends `shutdown`, then drain and exit 0. The cache is on by default
/// here (the whole point of a persistent service); `--no-cache` opts out.
fn cmd_serve(rest: &[String]) -> Result<ExitCode, String> {
    let options = parse_options(rest)?; // reject typos even though serve ignores pass flags
    let _ = options;
    // Every `--socket PATH` and `--listen uds:…|tcp:…`, in argv order.
    let mut listen: Vec<abcd_server::ListenAddr> = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        match rest[i].as_str() {
            "--socket" => {
                let path = rest.get(i + 1).ok_or("`--socket` needs a path")?;
                listen.push(abcd_server::ListenAddr::Uds(path.into()));
                i += 1;
            }
            "--listen" => {
                let spec = rest.get(i + 1).ok_or("`--listen` needs an address")?;
                listen.push(
                    abcd_server::ListenAddr::parse(spec).map_err(|e| format!("--listen: {e}"))?,
                );
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    if listen.is_empty() {
        return Err("`serve` needs `--socket PATH` or `--listen ADDR`".to_string());
    }
    let count = |flag: &str, default: usize| -> Result<usize, String> {
        match value_of(rest, flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("`{flag}` needs a count")),
        }
    };
    let cache = if has(rest, "--no-cache") {
        None
    } else {
        match cache_for(rest)? {
            Some(cache) => Some(cache),
            None => Some(std::sync::Arc::new(abcd::AnalysisCache::in_memory(
                abcd::cache::DEFAULT_CACHE_BYTES,
            ))),
        }
    };
    let ms = |flag: &str| -> Result<Option<u64>, String> {
        match value_of(rest, flag) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("`{flag}` needs milliseconds")),
        }
    };
    let nonzero = |default_ms: u64, v: Option<u64>| match v.unwrap_or(default_ms) {
        0 => None,
        n => Some(std::time::Duration::from_millis(n)),
    };
    let chaos = match value_of(rest, "--chaos") {
        None => None,
        Some(spec) => Some(std::sync::Arc::new(
            abcd::ChaosPlan::parse(spec).map_err(|e| format!("--chaos: {e}"))?,
        )),
    };
    let shards = count("--shards", 1)?.max(1);
    let config = abcd_server::ServerConfig {
        listen,
        shards,
        // Clamped like abcdd: worker counts beyond the host's available
        // parallelism only add contention.
        workers: abcd::clamp_jobs(count("--workers", 0)?),
        queue: count("--queue", 8)?,
        jobs: jobs_of(rest)?,
        // Stripe the shared cache to the shard count so parallel shards
        // don't serialize on one cache lock (the Arc is freshly built
        // above, so the unwrap never actually fails).
        cache: cache.map(|c| match std::sync::Arc::try_unwrap(c) {
            Ok(inner) => std::sync::Arc::new(inner.with_stripes(shards)),
            Err(shared) => shared,
        }),
        request_timeout: ms("--request-timeout")?.map(std::time::Duration::from_millis),
        io_timeout: nonzero(30_000, ms("--io-timeout")?),
        stuck_after: nonzero(30_000, ms("--stuck-after")?)
            .unwrap_or(std::time::Duration::from_secs(86_400)),
        chaos,
    };
    let handle = abcd_server::start(config).map_err(|e| format!("bind: {e}"))?;
    for endpoint in handle.endpoints() {
        eprintln!("mjc: serving on {}", endpoint.describe());
    }
    handle.join();
    eprintln!("mjc: server drained");
    Ok(ExitCode::SUCCESS)
}

/// `mjc client`: one request against a running daemon. `file` is either a
/// module to optimize or one of the control verbs `ping`/`stats`/`shutdown`.
/// The optimized IR goes to stdout exactly as `mjc dump --stage opt` would
/// print it, so the two are byte-comparable.
fn cmd_client(file: &str, rest: &[String]) -> Result<ExitCode, String> {
    let endpoint = match (value_of(rest, "--tcp"), value_of(rest, "--socket")) {
        (Some(addr), _) => abcd_server::Endpoint::parse(&format!("tcp:{addr}"))
            .map_err(|e| format!("--tcp: {e}"))?,
        (None, Some(path)) => abcd_server::Endpoint::uds(std::path::Path::new(path)),
        (None, None) => return Err("`client` needs `--socket PATH` or `--tcp ADDR`".to_string()),
    };
    match file {
        "ping" => {
            if abcd_server::ping_at(&endpoint) {
                println!("pong");
                Ok(ExitCode::SUCCESS)
            } else {
                Err(format!("no server at {}", endpoint.describe()))
            }
        }
        "stats" => {
            // Print the server's reply verbatim: it is already one
            // `abcdd-stats/2` JSON document, ready to pipe into jq.
            match abcd_server::roundtrip_at(&endpoint, "{\"cmd\":\"stats\"}", None)? {
                abcd_server::Reply::Ok(_, raw) => {
                    emit(format!("{raw}\n"));
                    Ok(ExitCode::SUCCESS)
                }
                abcd_server::Reply::Busy { .. } => Err("server busy".to_string()),
                abcd_server::Reply::Err(e) => Err(e),
            }
        }
        "metrics" => {
            let text = abcd_server::metrics_at(&endpoint, has(rest, "--deterministic-metrics"))?;
            emit(text);
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            abcd_server::shutdown_at(&endpoint)?;
            Ok(ExitCode::SUCCESS)
        }
        _ => {
            let options = parse_options(rest)?;
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let ms = |flag: &str| -> Result<Option<u64>, String> {
                match value_of(rest, flag) {
                    None => Ok(None),
                    Some(v) => v
                        .parse()
                        .map(Some)
                        .map_err(|_| format!("`{flag}` needs milliseconds")),
                }
            };
            let call = abcd_server::CallOptions {
                metrics: has(rest, "--metrics") || value_of(rest, "--metrics-out").is_some(),
                deterministic_metrics: has(rest, "--deterministic-metrics"),
                trace: value_of(rest, "--trace-out").is_some(),
                deadline_ms: ms("--deadline")?,
            };
            let retry = match ms("--timeout")? {
                None => abcd_server::RetryPolicy::default(),
                Some(t) => abcd_server::RetryPolicy::with_timeout_ms(t),
            };
            let batch: usize = match value_of(rest, "--batch") {
                None => 1,
                Some(v) => match v.parse() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err("`--batch` needs a count >= 1".to_string()),
                },
            };
            let reply = if batch == 1 {
                abcd_server::optimize_at(
                    &endpoint,
                    (&text, file.ends_with(".ir")),
                    &options,
                    None,
                    &call,
                    &retry,
                )?
            } else {
                // One pipelined frame carrying the same request N times;
                // the N replies stream back in order and must agree —
                // a cheap differential check of the batch path itself.
                let item = ((text.as_str(), file.ends_with(".ir")), &options, None, call);
                let items: Vec<_> = (0..batch).map(|_| item).collect();
                let mut replies = abcd_server::optimize_batch_at(&endpoint, &items, &retry)?
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| r.map_err(|e| format!("batch element {i}: {e}")))
                    .collect::<Result<Vec<_>, String>>()?;
                let first = replies.remove(0);
                for (i, other) in replies.iter().enumerate() {
                    if other.ir != first.ir {
                        return Err(format!(
                            "batch element {} served different IR than element 0",
                            i + 1
                        ));
                    }
                }
                first
            };
            // Exactly what `cmd_dump` prints: `{module}` + one newline.
            emit(format!("{}\n", reply.ir));
            if reply.deadline_exceeded {
                eprintln!("mjc: server deadline exceeded; module served unoptimized (fail open)");
            }
            if let Some(path) = value_of(rest, "--trace-out") {
                std::fs::write(path, reply.trace.as_deref().unwrap_or(""))
                    .map_err(|e| format!("{path}: {e}"))?;
            }
            if let Some(metrics) = &reply.metrics {
                if let Some(path) = value_of(rest, "--metrics-out") {
                    std::fs::write(path, format!("{metrics}\n"))
                        .map_err(|e| format!("{path}: {e}"))?;
                }
                if has(rest, "--metrics") {
                    eprintln!("{metrics}");
                }
            }
            let (incidents, degraded) = reply.incidents;
            if incidents > 0 {
                eprintln!("mjc: server reported {incidents} incident(s), {degraded} degraded");
            }
            if degraded > 0 {
                Ok(ExitCode::from(EXIT_DEGRADED))
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
    }
}

fn cmd_graph(file: &str, rest: &[String]) -> Result<ExitCode, String> {
    let mut module = load_module(file)?;
    abcd_ssa::module_to_essa(&mut module).map_err(|(n, e)| format!("{n}: {e}"))?;
    let problem = if has(rest, "--lower") {
        Problem::Lower
    } else {
        Problem::Upper
    };
    let wanted = value_of(rest, "--fn");

    let mut out = String::new();
    use std::fmt::Write as _;
    for (_, func) in module.functions() {
        if let Some(w) = wanted {
            if func.name() != w {
                continue;
            }
        }
        let _ = writeln!(out, "; inequality graph ({problem:?}) of @{}", func.name());
        let g = InequalityGraph::build(func, problem, None);
        let _ = writeln!(out, "digraph \"{}\" {{", func.name());
        for v in 0..g.vertex_count() {
            let vid = VertexId::from_index(v);
            let shape = if g.is_max(vid) {
                "doublecircle"
            } else {
                "circle"
            };
            let _ = writeln!(out, "  n{v} [label=\"{}\", shape={shape}];", g.vertex(vid));
            for e in g.in_edges(vid) {
                let _ = writeln!(
                    out,
                    "  n{} -> n{v} [label=\"{}\"];",
                    e.src.index(),
                    e.weight
                );
            }
        }
        let _ = writeln!(out, "}}");
    }
    emit(out);
    Ok(ExitCode::SUCCESS)
}
