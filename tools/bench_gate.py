#!/usr/bin/env python3
"""CI gate over the committed perf trajectories.

Usage: bench_gate.py COMMITTED.json REGENERATED.json

The schema field of the committed document selects the gate:

abcd-bench-pipeline/2 (BENCH_pipeline.json)
  * schema                      — exact
  * backends.*.suite_solver_steps — exact: solver traversal is deterministic,
                                  any drift is an algorithm change
  * phases.steady_prove.allocs  — exactly 0: the zero-allocation prove-path
                                  claim, in both files
  * other alloc counts          — regression-banded (x1.25): allocation
                                  counts are deterministic per binary but may
                                  shift slightly across toolchains
  * wall times (ns)             — regression-banded (x2.5): runner hardware
                                  differs from the calibration host, so only
                                  order-of-magnitude slowdowns fail

abcd-bench-abcdd/1 (BENCH_abcdd.json, written by `loadgen`)
  * schema + params             — exact: the offered load is a pure function
                                  of the seed, so both runs must have replayed
                                  the identical request sequence
  * per-scenario requests_sent  — exact, and ok + fail_open + errors must
                                  account for every request (nothing dropped)
  * regenerated errors          — exactly 0: the differential guarantee and
                                  the retry contract must hold under load
  * sum of steals               — >= 1: the work-stealing witness (a sharded
                                  run over a zipf-skewed corpus must steal)
  * throughput_rps              — regression-banded (x2.5 slowdown allowed):
                                  latency percentiles are reported, not gated
                                  (shared CI boxes make tails meaningless)

Improvements never fail the gate. Exit 0 on pass, 1 with a report on fail.
"""

import json
import sys

ALLOC_BAND = 1.25
WALL_BAND = 2.5
THROUGHPUT_BAND = 2.5

failures = []


def check(ok, msg):
    if not ok:
        failures.append(msg)


def banded(name, old, new, band):
    check(
        new <= old * band,
        f"{name}: {new:.0f} vs committed {old:.0f} (allowed x{band})",
    )


def gate_pipeline(old, new):
    check(new.get("schema") == old.get("schema"), "regenerated schema differs")

    for name, row in old.get("backends", {}).items():
        got = new.get("backends", {}).get(name)
        check(got is not None, f"backends.{name}: missing from regenerated run")
        if got is None:
            continue
        check(
            got["suite_solver_steps"] == row["suite_solver_steps"],
            f"backends.{name}.suite_solver_steps: {got['suite_solver_steps']} "
            f"vs committed {row['suite_solver_steps']} (must match exactly)",
        )
        banded(f"backends.{name}.suite_ns_per_iter",
               row["suite_ns_per_iter"], got["suite_ns_per_iter"], WALL_BAND)

    for name, row in old.get("phases", {}).items():
        got = new.get("phases", {}).get(name)
        check(got is not None, f"phases.{name}: missing from regenerated run")
        if got is None:
            continue
        if name == "steady_prove":
            check(row["allocs"] == 0, "committed steady_prove.allocs is not 0")
            check(
                got["allocs"] == 0,
                f"phases.steady_prove.allocs: {got['allocs']} — the "
                "zero-allocation prove path regressed",
            )
        else:
            banded(f"phases.{name}.allocs", row["allocs"], got["allocs"], ALLOC_BAND)
        banded(f"phases.{name}.ns", row["ns"], got["ns"], WALL_BAND)

    for name, row in old.get("benchmarks", {}).items():
        got = new.get("benchmarks", {}).get(name)
        check(got is not None, f"benchmarks[{name}]: missing from regenerated run")
        if got is None:
            continue
        banded(f"benchmarks[{name}].ns", row["ns"], got["ns"], WALL_BAND)
        banded(f"benchmarks[{name}].allocs", row["allocs"], got["allocs"], ALLOC_BAND)


def gate_abcdd(old, new):
    check(new.get("schema") == old.get("schema"), "regenerated schema differs")
    check(
        new.get("params") == old.get("params"),
        f"params differ: committed {old.get('params')} vs "
        f"regenerated {new.get('params')} — the offered load must replay exactly",
    )

    old_scenarios = {s["name"]: s for s in old.get("scenarios", [])}
    new_scenarios = {s["name"]: s for s in new.get("scenarios", [])}
    check(
        sorted(old_scenarios) == sorted(new_scenarios),
        f"scenario sets differ: {sorted(old_scenarios)} vs {sorted(new_scenarios)}",
    )

    total_steals = 0
    for name, row in old_scenarios.items():
        got = new_scenarios.get(name)
        if got is None:
            continue
        check(
            got["requests_sent"] == row["requests_sent"],
            f"{name}.requests_sent: {got['requests_sent']} vs committed "
            f"{row['requests_sent']} (the seeded schedule is exact)",
        )
        for doc, which in ((row, "committed"), (got, "regenerated")):
            accounted = doc["ok"] + doc["fail_open"] + doc["errors"]
            check(
                accounted == doc["requests_sent"],
                f"{name} ({which}): ok {doc['ok']} + fail_open {doc['fail_open']} "
                f"+ errors {doc['errors']} != sent {doc['requests_sent']}",
            )
        check(
            got["errors"] == 0,
            f"{name}.errors: {got['errors']} — differential or retry "
            "contract violated under load",
        )
        banded_floor = row["throughput_rps"] / THROUGHPUT_BAND
        check(
            got["throughput_rps"] >= banded_floor,
            f"{name}.throughput_rps: {got['throughput_rps']:.1f} vs committed "
            f"{row['throughput_rps']:.1f} (floor {banded_floor:.1f}, x{THROUGHPUT_BAND})",
        )
        total_steals += got.get("server", {}).get("steals", 0)

    check(
        total_steals >= 1,
        "no scenario recorded a steal — work stealing is not exercised "
        "(shards misconfigured, or the zipf skew collapsed)",
    )


def main(committed_path, regenerated_path):
    old = json.load(open(committed_path))
    new = json.load(open(regenerated_path))

    schema = old.get("schema")
    if schema == "abcd-bench-pipeline/2":
        gate_pipeline(old, new)
    elif schema == "abcd-bench-abcdd/1":
        gate_abcdd(old, new)
    else:
        check(False, f"unknown committed schema {schema!r}")

    if failures:
        print(f"bench gate: {len(failures)} regression(s) vs {committed_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"bench gate: regenerated run is within tolerance of {committed_path}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1], sys.argv[2]))
