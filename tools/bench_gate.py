#!/usr/bin/env python3
"""CI gate over the BENCH_pipeline.json perf trajectory.

Usage: bench_gate.py COMMITTED.json REGENERATED.json

Compares a freshly regenerated pipeline-bench document against the
committed one, with per-quantity strictness matching how deterministic
each quantity is:

  * schema                      — exact (both must be abcd-bench-pipeline/2)
  * backends.*.suite_solver_steps — exact: solver traversal is deterministic,
                                  any drift is an algorithm change
  * phases.steady_prove.allocs  — exactly 0: the zero-allocation prove-path
                                  claim, in both files
  * other alloc counts          — regression-banded (x1.25): allocation
                                  counts are deterministic per binary but may
                                  shift slightly across toolchains
  * wall times (ns)             — regression-banded (x2.5): runner hardware
                                  differs from the calibration host, so only
                                  order-of-magnitude slowdowns fail

Improvements never fail the gate. Exit 0 on pass, 1 with a report on fail.
"""

import json
import sys

ALLOC_BAND = 1.25
WALL_BAND = 2.5

failures = []


def check(ok, msg):
    if not ok:
        failures.append(msg)


def banded(name, old, new, band):
    check(
        new <= old * band,
        f"{name}: {new:.0f} vs committed {old:.0f} (allowed x{band})",
    )


def main(committed_path, regenerated_path):
    old = json.load(open(committed_path))
    new = json.load(open(regenerated_path))

    check(old.get("schema") == "abcd-bench-pipeline/2", "committed schema is not /2")
    check(new.get("schema") == old.get("schema"), "regenerated schema differs")

    for name, row in old.get("backends", {}).items():
        got = new.get("backends", {}).get(name)
        check(got is not None, f"backends.{name}: missing from regenerated run")
        if got is None:
            continue
        check(
            got["suite_solver_steps"] == row["suite_solver_steps"],
            f"backends.{name}.suite_solver_steps: {got['suite_solver_steps']} "
            f"vs committed {row['suite_solver_steps']} (must match exactly)",
        )
        banded(f"backends.{name}.suite_ns_per_iter",
               row["suite_ns_per_iter"], got["suite_ns_per_iter"], WALL_BAND)

    for name, row in old.get("phases", {}).items():
        got = new.get("phases", {}).get(name)
        check(got is not None, f"phases.{name}: missing from regenerated run")
        if got is None:
            continue
        if name == "steady_prove":
            check(row["allocs"] == 0, "committed steady_prove.allocs is not 0")
            check(
                got["allocs"] == 0,
                f"phases.steady_prove.allocs: {got['allocs']} — the "
                "zero-allocation prove path regressed",
            )
        else:
            banded(f"phases.{name}.allocs", row["allocs"], got["allocs"], ALLOC_BAND)
        banded(f"phases.{name}.ns", row["ns"], got["ns"], WALL_BAND)

    for name, row in old.get("benchmarks", {}).items():
        got = new.get("benchmarks", {}).get(name)
        check(got is not None, f"benchmarks[{name}]: missing from regenerated run")
        if got is None:
            continue
        banded(f"benchmarks[{name}].ns", row["ns"], got["ns"], WALL_BAND)
        banded(f"benchmarks[{name}].allocs", row["allocs"], got["allocs"], ALLOC_BAND)

    if failures:
        print(f"bench gate: {len(failures)} regression(s) vs {committed_path}:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"bench gate: regenerated run is within tolerance of {committed_path}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 3:
        print(__doc__)
        sys.exit(2)
    sys.exit(main(sys.argv[1], sys.argv[2]))
