//! A counting global allocator for the zero-allocation prove-path gates.
//!
//! The analysis crates (`abcd-ir`, `abcd`, `abcd-bench`) all
//! `forbid(unsafe_code)`, and a `GlobalAlloc` impl is necessarily unsafe —
//! so the instrument lives in this leaf crate, which nothing on the prove
//! path depends on. Register it in a test or bench binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: abcd_alloc::CountingAlloc = abcd_alloc::CountingAlloc;
//! ```
//!
//! then bracket the region under measurement with [`snapshot`]/[`delta`].
//! Counters are global and monotonic; concurrent allocations from other
//! threads are counted too, so gates should measure on a single thread.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
///
/// `realloc` counts as one allocation of the new size (it may move and
/// copy, which is exactly the steady-state cost the gates exist to catch);
/// `dealloc` is not counted — the gates assert on acquisition, not
/// lifetime.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// A point-in-time reading of the global counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// Allocations (including reallocs) observed so far.
    pub allocs: u64,
    /// Bytes requested so far.
    pub bytes: u64,
}

/// Reads the current counters.
pub fn snapshot() -> Snapshot {
    Snapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Counter movement since `before`.
pub fn delta(before: Snapshot) -> Snapshot {
    let now = snapshot();
    Snapshot {
        allocs: now.allocs - before.allocs,
        bytes: now.bytes - before.bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary registers the allocator itself so the counters move.
    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counts_a_vec_allocation() {
        let before = snapshot();
        let v: Vec<u64> = Vec::with_capacity(1024);
        let d = delta(before);
        assert!(d.allocs >= 1, "{d:?}");
        assert!(d.bytes >= 8 * 1024, "{d:?}");
        drop(v);
    }

    #[test]
    fn warm_vec_reuse_counts_zero() {
        let mut v: Vec<u64> = Vec::with_capacity(1024);
        v.extend(0..1024);
        v.clear();
        let before = snapshot();
        v.extend(0..1024); // into retained capacity
        let d = delta(before);
        assert_eq!(d.allocs, 0, "{d:?}");
    }
}
