//! The benchmark suite of the ABCD reproduction.
//!
//! Fifteen MJ programs mirroring the paper's §8 evaluation set:
//!
//! * five SPECjvm98-like kernels (`db`, `mpeg`, `jack`, `compress`,
//!   `jess`) with the same array-access character as the originals,
//! * the seven Symantec micro-benchmarks (`bubble_sort`,
//!   `bidir_bubble_sort` — the paper's Figure 1 — `qsort`, `sieve`,
//!   `hanoi`, `dhrystone`, `array`),
//! * three "other" programs (`toba`, `bytemark`, `jolt`); `bytemark` is
//!   shaped to exhibit a large partially-redundant fraction, matching the
//!   paper's report of 26% static partial redundancy.
//!
//! Every program is deterministic and self-contained: inputs come from an
//! in-program linear congruential generator, and `main` returns (and
//! prints) a checksum used by the differential tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abcd_frontend::FrontendError;
use abcd_ir::Module;

/// The benchmark group, matching the paper's presentation of Figure 6.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// SPECjvm98-like kernels (shown with a local/global split).
    Spec,
    /// Symantec micro-benchmarks.
    Symantec,
    /// Other Java programs (toba, bytemark, jolt).
    Other,
}

impl Group {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Group::Spec => "SPECjvm98-like",
            Group::Symantec => "Symantec",
            Group::Other => "other",
        }
    }
}

/// One benchmark program.
#[derive(Clone, Copy, Debug)]
pub struct Benchmark {
    /// Short name (matches the paper's Figure 6 labels).
    pub name: &'static str,
    /// Group for reporting.
    pub group: Group,
    /// MJ source text.
    pub source: &'static str,
}

impl Benchmark {
    /// Compiles the program to an unoptimized module (locals form, all
    /// checks present).
    ///
    /// # Errors
    ///
    /// Propagates frontend errors (none occur for the bundled programs;
    /// the test suite compiles each one).
    pub fn compile(&self) -> Result<Module, FrontendError> {
        abcd_frontend::compile(self.source)
    }
}

macro_rules! bench {
    ($name:literal, $group:expr, $file:literal) => {
        Benchmark {
            name: $name,
            group: $group,
            source: include_str!(concat!("../programs/", $file)),
        }
    };
}

/// All benchmarks, in the order Figure 6 lists them (SPEC first).
pub const BENCHMARKS: &[Benchmark] = &[
    bench!("db", Group::Spec, "db.mj"),
    bench!("mpeg", Group::Spec, "mpeg.mj"),
    bench!("jack", Group::Spec, "jack.mj"),
    bench!("compress", Group::Spec, "compress.mj"),
    bench!("jess", Group::Spec, "jess.mj"),
    bench!("bubbleSort", Group::Symantec, "bubble_sort.mj"),
    bench!("biDirBubbleSort", Group::Symantec, "bidir_bubble_sort.mj"),
    bench!("qsort", Group::Symantec, "qsort.mj"),
    bench!("sieve", Group::Symantec, "sieve.mj"),
    bench!("hanoi", Group::Symantec, "hanoi.mj"),
    bench!("dhrystone", Group::Symantec, "dhrystone.mj"),
    bench!("array", Group::Symantec, "array.mj"),
    bench!("toba", Group::Other, "toba.mj"),
    bench!("bytemark", Group::Other, "bytemark.mj"),
    bench!("jolt", Group::Other, "jolt.mj"),
];

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd::Optimizer;
    use abcd_vm::Vm;

    #[test]
    fn all_benchmarks_compile_and_run() {
        for b in BENCHMARKS {
            let module = b.compile().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            let mut vm = Vm::new(&module);
            let r = vm
                .call_by_name("main", &[])
                .unwrap_or_else(|t| panic!("{} trapped: {t}", b.name));
            assert!(r.is_some(), "{} returned nothing", b.name);
            assert!(
                vm.stats().dynamic_checks_total() > 0,
                "{} executed no checks",
                b.name
            );
        }
    }

    #[test]
    fn optimization_preserves_every_benchmark() {
        for b in BENCHMARKS {
            let baseline = b.compile().unwrap();
            let mut optimized = b.compile().unwrap();
            Optimizer::new().optimize_module(&mut optimized, None);

            let mut vm1 = Vm::new(&baseline);
            let r1 = vm1.call_by_name("main", &[]).unwrap();
            let mut vm2 = Vm::new(&optimized);
            let r2 = vm2
                .call_by_name("main", &[])
                .unwrap_or_else(|t| panic!("{} trapped after opt: {t}", b.name));

            assert_eq!(r1, r2, "{} result changed", b.name);
            assert_eq!(vm1.output(), vm2.output(), "{} output changed", b.name);
            assert!(
                vm2.stats().dynamic_checks_total() <= vm1.stats().dynamic_checks_total(),
                "{} got slower",
                b.name
            );
        }
    }

    #[test]
    fn by_name_finds_figure1_program() {
        assert!(by_name("biDirBubbleSort").is_some());
        assert!(by_name("nonexistent").is_none());
        assert_eq!(BENCHMARKS.len(), 15);
    }

    #[test]
    fn groups_match_paper_layout() {
        let spec = BENCHMARKS.iter().filter(|b| b.group == Group::Spec).count();
        let sym = BENCHMARKS
            .iter()
            .filter(|b| b.group == Group::Symantec)
            .count();
        let other = BENCHMARKS
            .iter()
            .filter(|b| b.group == Group::Other)
            .count();
        assert_eq!((spec, sym, other), (5, 7, 3));
    }
}
