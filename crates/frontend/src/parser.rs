//! Recursive-descent parser for MJ.

use crate::ast::*;
use crate::error::{FrontendError, Pos};
use crate::token::{lex, Keyword, Spanned, Sym, Token};

/// Parses MJ source text into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_pos(&self) -> Pos {
        self.tokens[self.pos].pos
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, FrontendError> {
        Err(FrontendError::Parse {
            pos: self.peek_pos(),
            message: message.into(),
        })
    }

    fn expect_sym(&mut self, s: Sym) -> Result<(), FrontendError> {
        if self.peek() == &Token::Sym(s) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {s:?}, found `{}`", self.peek()))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> Result<(), FrontendError> {
        if self.peek() == &Token::Keyword(k) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {k:?}, found `{}`", self.peek()))
        }
    }

    fn eat_sym(&mut self, s: Sym) -> bool {
        if self.peek() == &Token::Sym(s) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.peek().clone() {
            Token::Ident(s) => {
                self.bump();
                Ok(s)
            }
            t => self.err(format!("expected identifier, found `{t}`")),
        }
    }

    fn program(&mut self) -> Result<Program, FrontendError> {
        let mut functions = Vec::new();
        while self.peek() != &Token::Eof {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<FnDecl, FrontendError> {
        let pos = self.peek_pos();
        self.expect_kw(Keyword::Fn)?;
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Token::Sym(Sym::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect_sym(Sym::Colon)?;
                let ty = self.type_ast()?;
                params.push((pname, ty));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_sym(Sym::RParen)?;
        let ret = if self.eat_sym(Sym::Arrow) {
            Some(self.type_ast()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(FnDecl {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    fn type_ast(&mut self) -> Result<TypeAst, FrontendError> {
        let mut ty = match self.bump() {
            Token::Keyword(Keyword::Int) => TypeAst::Int,
            Token::Keyword(Keyword::Bool) => TypeAst::Bool,
            t => return self.err(format!("expected type, found `{t}`")),
        };
        while self.peek() == &Token::Sym(Sym::LBracket)
            && self.tokens[self.pos + 1].token == Token::Sym(Sym::RBracket)
        {
            self.bump();
            self.bump();
            ty = TypeAst::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect_sym(Sym::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &Token::Sym(Sym::RBrace) {
            stmts.push(self.stmt()?);
        }
        self.expect_sym(Sym::RBrace)?;
        Ok(stmts)
    }

    /// A statement usable in `for` headers: `let` or assignment (no `;`).
    fn simple_stmt(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.peek_pos();
        if self.peek() == &Token::Keyword(Keyword::Let) {
            self.bump();
            let name = self.ident()?;
            self.expect_sym(Sym::Colon)?;
            let ty = self.type_ast()?;
            self.expect_sym(Sym::Assign)?;
            let init = self.expr()?;
            return Ok(Stmt::Let {
                name,
                ty,
                init,
                pos,
            });
        }
        // assignment or store
        let target = self.expr()?;
        match (target, self.peek().clone()) {
            (Expr::Var(name, _), Token::Sym(Sym::Assign)) => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Assign { name, value, pos })
            }
            (Expr::Index { array, index, .. }, Token::Sym(Sym::Assign)) => {
                self.bump();
                let value = self.expr()?;
                Ok(Stmt::Store {
                    array: *array,
                    index: *index,
                    value,
                    pos,
                })
            }
            (expr, _) => Ok(Stmt::Expr { expr, pos }),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let pos = self.peek_pos();
        match self.peek().clone() {
            Token::Keyword(Keyword::If) => {
                self.bump();
                self.expect_sym(Sym::LParen)?;
                let cond = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.peek() == &Token::Keyword(Keyword::Else) {
                    self.bump();
                    if self.peek() == &Token::Keyword(Keyword::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    pos,
                })
            }
            Token::Keyword(Keyword::While) => {
                self.bump();
                self.expect_sym(Sym::LParen)?;
                let cond = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Token::Keyword(Keyword::For) => {
                self.bump();
                self.expect_sym(Sym::LParen)?;
                let init = if self.peek() == &Token::Sym(Sym::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_sym(Sym::Semi)?;
                let cond = if self.peek() == &Token::Sym(Sym::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_sym(Sym::Semi)?;
                let step = if self.peek() == &Token::Sym(Sym::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect_sym(Sym::RParen)?;
                let body = self.block()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                    pos,
                })
            }
            Token::Keyword(Keyword::Return) => {
                self.bump();
                let value = if self.peek() == &Token::Sym(Sym::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_sym(Sym::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            Token::Keyword(Keyword::Break) => {
                self.bump();
                self.expect_sym(Sym::Semi)?;
                Ok(Stmt::Break { pos })
            }
            Token::Keyword(Keyword::Continue) => {
                self.bump();
                self.expect_sym(Sym::Semi)?;
                Ok(Stmt::Continue { pos })
            }
            Token::Keyword(Keyword::Print) => {
                self.bump();
                self.expect_sym(Sym::LParen)?;
                let value = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                self.expect_sym(Sym::Semi)?;
                Ok(Stmt::Print { value, pos })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect_sym(Sym::Semi)?;
                Ok(s)
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.binary_expr(0)
    }

    /// Precedence-climbing binary expression parser.
    fn binary_expr(&mut self, min_level: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, level) = match self.peek() {
                Token::Sym(Sym::OrOr) => (BinOpAst::LogicalOr, 1),
                Token::Sym(Sym::AndAnd) => (BinOpAst::LogicalAnd, 2),
                Token::Sym(Sym::Pipe) => (BinOpAst::Or, 3),
                Token::Sym(Sym::Caret) => (BinOpAst::Xor, 4),
                Token::Sym(Sym::Amp) => (BinOpAst::And, 5),
                Token::Sym(Sym::EqEq) => (BinOpAst::Eq, 6),
                Token::Sym(Sym::Ne) => (BinOpAst::Ne, 6),
                Token::Sym(Sym::Lt) => (BinOpAst::Lt, 7),
                Token::Sym(Sym::Le) => (BinOpAst::Le, 7),
                Token::Sym(Sym::Gt) => (BinOpAst::Gt, 7),
                Token::Sym(Sym::Ge) => (BinOpAst::Ge, 7),
                Token::Sym(Sym::Shl) => (BinOpAst::Shl, 8),
                Token::Sym(Sym::Shr) => (BinOpAst::Shr, 8),
                Token::Sym(Sym::Plus) => (BinOpAst::Add, 9),
                Token::Sym(Sym::Minus) => (BinOpAst::Sub, 9),
                Token::Sym(Sym::Star) => (BinOpAst::Mul, 10),
                Token::Sym(Sym::Slash) => (BinOpAst::Div, 10),
                Token::Sym(Sym::Percent) => (BinOpAst::Rem, 10),
                _ => break,
            };
            if level < min_level {
                break;
            }
            let pos = self.peek_pos();
            self.bump();
            let rhs = self.binary_expr(level + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                pos,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        let pos = self.peek_pos();
        match self.peek() {
            Token::Sym(Sym::Minus) => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.unary_expr()?), pos))
            }
            Token::Sym(Sym::Bang) => {
                self.bump();
                Ok(Expr::Not(Box::new(self.unary_expr()?), pos))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.primary_expr()?;
        loop {
            let pos = self.peek_pos();
            if self.eat_sym(Sym::LBracket) {
                let index = self.expr()?;
                self.expect_sym(Sym::RBracket)?;
                e = Expr::Index {
                    array: Box::new(e),
                    index: Box::new(index),
                    pos,
                };
            } else if self.peek() == &Token::Sym(Sym::Dot) {
                self.bump();
                self.expect_kw(Keyword::Length)?;
                e = Expr::Length(Box::new(e), pos);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, FrontendError> {
        let pos = self.peek_pos();
        match self.bump() {
            Token::Int(i) => Ok(Expr::Int(i, pos)),
            Token::Keyword(Keyword::True) => Ok(Expr::Bool(true, pos)),
            Token::Keyword(Keyword::False) => Ok(Expr::Bool(false, pos)),
            Token::Keyword(Keyword::New) => {
                // new <base-type> [len] ([len2])? ([])*
                let base = match self.bump() {
                    Token::Keyword(Keyword::Int) => TypeAst::Int,
                    Token::Keyword(Keyword::Bool) => TypeAst::Bool,
                    t => {
                        return self.err(format!("expected element type after `new`, found `{t}`"))
                    }
                };
                self.expect_sym(Sym::LBracket)?;
                let len = self.expr()?;
                self.expect_sym(Sym::RBracket)?;
                let mut elem = base;
                let mut len2 = None;
                if self.peek() == &Token::Sym(Sym::LBracket)
                    && self.tokens[self.pos + 1].token != Token::Sym(Sym::RBracket)
                {
                    self.bump();
                    len2 = Some(Box::new(self.expr()?));
                    self.expect_sym(Sym::RBracket)?;
                }
                // trailing `[]` pairs add array nesting to the element type
                while self.peek() == &Token::Sym(Sym::LBracket)
                    && self.tokens[self.pos + 1].token == Token::Sym(Sym::RBracket)
                {
                    self.bump();
                    self.bump();
                    elem = TypeAst::Array(Box::new(elem));
                }
                if len2.is_some() {
                    // `new int[n][m]`: element type of the outer array is T[].
                    elem = TypeAst::Array(Box::new(elem));
                }
                Ok(Expr::NewArray {
                    elem,
                    len: Box::new(len),
                    len2,
                    pos,
                })
            }
            Token::Sym(Sym::LParen) => {
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                if self.peek() == &Token::Sym(Sym::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if self.peek() != &Token::Sym(Sym::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    Ok(Expr::Call { name, args, pos })
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            t => Err(FrontendError::Parse {
                pos,
                message: format!("expected expression, found `{t}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bubble_sort_skeleton() {
        let src = r#"
            fn sort(a: int[]) {
                for (let i: int = 0; i < a.length - 1; i = i + 1) {
                    for (let j: int = 0; j < a.length - 1 - i; j = j + 1) {
                        if (a[j] > a[j + 1]) {
                            let t: int = a[j];
                            a[j] = a[j + 1];
                            a[j + 1] = t;
                        }
                    }
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "sort");
        assert_eq!(p.functions[0].params.len(), 1);
        assert!(p.functions[0].ret.is_none());
    }

    #[test]
    fn parses_types_and_new() {
        let src = r#"
            fn f() -> int[][] {
                let m: int[][] = new int[3][4];
                let v: int[] = new int[10];
                let b: bool = true && !false || 1 < 2;
                return m;
            }
        "#;
        let p = parse(src).unwrap();
        match &p.functions[0].ret {
            Some(TypeAst::Array(inner)) => {
                assert_eq!(**inner, TypeAst::Array(Box::new(TypeAst::Int)))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn f() -> int { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!()
        };
        let Expr::Binary { op, rhs, .. } = e else {
            panic!()
        };
        assert_eq!(*op, BinOpAst::Add);
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: BinOpAst::Mul,
                ..
            }
        ));
    }

    #[test]
    fn else_if_chains() {
        let src = "fn f(x: int) -> int { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }";
        let p = parse(src).unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn store_statement_parses() {
        let p = parse("fn f(a: int[][]) { a[0][1] = 5; }").unwrap();
        let Stmt::Store { array, .. } = &p.functions[0].body[0] else {
            panic!("expected store")
        };
        assert!(matches!(array, Expr::Index { .. }));
    }

    #[test]
    fn missing_semi_is_reported() {
        let err = parse("fn f() { let x: int = 1 }").unwrap_err();
        assert!(matches!(err, FrontendError::Parse { .. }));
    }

    #[test]
    fn break_continue_parse() {
        let p = parse("fn f() { while (true) { break; continue; } }").unwrap();
        let Stmt::While { body, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(body[0], Stmt::Break { .. }));
        assert!(matches!(body[1], Stmt::Continue { .. }));
    }
}
