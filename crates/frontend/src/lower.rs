//! Lowering MJ ASTs to the (pre-SSA, locals-form) IR.
//!
//! Every array read or write lowers to an explicit **lower** bounds check,
//! an **upper** bounds check, and an unchecked access — the same shape a
//! Java bytecode frontend presents to the Jalapeño optimizer. ABCD (and the
//! baselines) then remove checks; nothing else ever does.

use crate::ast::*;
use crate::error::{FrontendError, Pos};
use abcd_ir::{
    BinOp, Block, CheckKind, CmpOp, FuncId, Function, FunctionBuilder, Local, Module, Type, UnOp,
    Value,
};
use std::collections::HashMap;

/// Lowers a parsed program to an IR module (locals form, checks inserted).
///
/// # Errors
///
/// Returns the first type or name-resolution error.
pub fn lower(program: &Program) -> Result<Module, FrontendError> {
    // Pass 1: collect signatures (enables mutual recursion).
    let mut sigs: Vec<(String, Vec<Type>, Option<Type>)> = Vec::new();
    let mut by_name: HashMap<String, FuncId> = HashMap::new();
    for (i, f) in program.functions.iter().enumerate() {
        if by_name.insert(f.name.clone(), FuncId::new(i)).is_some() {
            return Err(FrontendError::Type {
                pos: f.pos,
                message: format!("duplicate function `{}`", f.name),
            });
        }
        let params = f.params.iter().map(|(_, t)| lower_type(t)).collect();
        sigs.push((f.name.clone(), params, f.ret.as_ref().map(lower_type)));
    }

    // Pass 2: lower bodies.
    let mut module = Module::new();
    for decl in &program.functions {
        let func = Lowerer::new(decl, &sigs, &by_name)?.run(decl)?;
        module.add_function(func);
    }
    abcd_ir::verify_module(&module).map_err(|(name, e)| FrontendError::Type {
        pos: Pos { line: 0, col: 0 },
        message: format!("internal: lowered function `{name}` failed verification: {e}"),
    })?;
    Ok(module)
}

fn lower_type(t: &TypeAst) -> Type {
    match t {
        TypeAst::Int => Type::Int,
        TypeAst::Bool => Type::Bool,
        TypeAst::Array(e) => Type::array_of(lower_type(e)),
    }
}

struct Lowerer<'a> {
    b: FunctionBuilder,
    scopes: Vec<HashMap<String, Local>>,
    /// (break target, continue target) for the innermost loops.
    loops: Vec<(Block, Block)>,
    /// Whether the current block already has a terminator.
    terminated: bool,
    sigs: &'a [(String, Vec<Type>, Option<Type>)],
    by_name: &'a HashMap<String, FuncId>,
    ret: Option<Type>,
}

impl<'a> Lowerer<'a> {
    fn new(
        decl: &FnDecl,
        sigs: &'a [(String, Vec<Type>, Option<Type>)],
        by_name: &'a HashMap<String, FuncId>,
    ) -> Result<Self, FrontendError> {
        let params: Vec<Type> = decl.params.iter().map(|(_, t)| lower_type(t)).collect();
        let ret = decl.ret.as_ref().map(lower_type);
        let mut b = FunctionBuilder::new(decl.name.clone(), params.clone(), ret.clone());

        // Bind parameters as mutable locals (MJ parameters are assignable).
        let mut scope = HashMap::new();
        for (i, (name, _)) in decl.params.iter().enumerate() {
            if scope.contains_key(name) {
                return Err(FrontendError::Type {
                    pos: decl.pos,
                    message: format!("duplicate parameter `{name}`"),
                });
            }
            let l = b.new_local(params[i].clone());
            let pv = b.param(i);
            b.set_local(l, pv);
            scope.insert(name.clone(), l);
        }

        Ok(Lowerer {
            b,
            scopes: vec![scope],
            loops: Vec::new(),
            terminated: false,
            sigs,
            by_name,
            ret,
        })
    }

    fn run(mut self, decl: &FnDecl) -> Result<Function, FrontendError> {
        self.stmts(&decl.body)?;
        if !self.terminated {
            // Fall-through termination: void functions return; value
            // functions return the type's default (0 / false). Functions
            // returning arrays must end in an explicit return.
            match &self.ret {
                None => self.b.ret(None),
                Some(Type::Int) => {
                    let z = self.b.iconst(0);
                    self.b.ret(Some(z));
                }
                Some(Type::Bool) => {
                    let z = self.b.bconst(false);
                    self.b.ret(Some(z));
                }
                Some(t) => {
                    return Err(FrontendError::Type {
                        pos: decl.pos,
                        message: format!(
                            "function `{}` returning {t} may fall off the end",
                            decl.name
                        ),
                    })
                }
            }
        }
        self.b.finish().map_err(|e| FrontendError::Type {
            pos: decl.pos,
            message: format!("internal: builder verification failed: {e}"),
        })
    }

    // ---- helpers ------------------------------------------------------

    fn lookup(&self, name: &str, pos: Pos) -> Result<Local, FrontendError> {
        for scope in self.scopes.iter().rev() {
            if let Some(l) = scope.get(name) {
                return Ok(*l);
            }
        }
        Err(FrontendError::Type {
            pos,
            message: format!("unknown variable `{name}`"),
        })
    }

    fn ty(&self, v: Value) -> Type {
        self.b.func().value_type(v).clone()
    }

    fn expect(&self, v: Value, want: &Type, pos: Pos, what: &str) -> Result<(), FrontendError> {
        let got = self.ty(v);
        if &got != want {
            return Err(FrontendError::Type {
                pos,
                message: format!("{what} has type {got}, expected {want}"),
            });
        }
        Ok(())
    }

    /// Switches to a fresh, unterminated block.
    fn switch(&mut self, block: Block) {
        self.b.switch_to_block(block);
        self.terminated = false;
    }

    fn jump(&mut self, dst: Block) {
        if !self.terminated {
            self.b.jump(dst);
            self.terminated = true;
        }
    }

    // ---- statements ---------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), FrontendError> {
        self.scopes.push(HashMap::new());
        for s in body {
            if self.terminated {
                // Unreachable code after return/break: Java rejects it; we
                // simply stop lowering the rest of the block.
                break;
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), FrontendError> {
        match s {
            Stmt::Let {
                name,
                ty,
                init,
                pos,
            } => {
                let want = lower_type(ty);
                let v = self.expr(init)?;
                self.expect(v, &want, *pos, "initializer")?;
                let l = self.b.new_local(want);
                self.b.set_local(l, v);
                self.scopes
                    .last_mut()
                    .expect("scope stack nonempty")
                    .insert(name.clone(), l);
                Ok(())
            }
            Stmt::Assign { name, value, pos } => {
                let l = self.lookup(name, *pos)?;
                let v = self.expr(value)?;
                let want = self.b.func().local_type(l).clone();
                self.expect(v, &want, *pos, "assigned value")?;
                self.b.set_local(l, v);
                Ok(())
            }
            Stmt::Store {
                array,
                index,
                value,
                pos,
            } => {
                let a = self.expr(array)?;
                if !self.ty(a).is_array() {
                    return Err(FrontendError::Type {
                        pos: *pos,
                        message: format!("cannot index into {}", self.ty(a)),
                    });
                }
                let i = self.expr(index)?;
                self.expect(i, &Type::Int, *pos, "array index")?;
                let v = self.expr(value)?;
                let elem = self.ty(a).elem().expect("checked above").clone();
                self.expect(v, &elem, *pos, "stored value")?;
                self.b.bounds_check(a, i, CheckKind::Lower);
                self.b.bounds_check(a, i, CheckKind::Upper);
                self.b.store(a, i, v);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                pos,
            } => {
                let c = self.expr(cond)?;
                self.expect(c, &Type::Bool, *pos, "if condition")?;
                let then_b = self.b.new_block();
                let else_b = self.b.new_block();
                let join = self.b.new_block();
                self.b.branch(c, then_b, else_b);
                self.terminated = true;

                self.switch(then_b);
                self.stmts(then_body)?;
                self.jump(join);

                self.switch(else_b);
                self.stmts(else_body)?;
                self.jump(join);

                self.switch(join);
                Ok(())
            }
            Stmt::While { cond, body, pos } => {
                let head = self.b.new_block();
                let body_b = self.b.new_block();
                let exit = self.b.new_block();
                self.jump(head);
                self.switch(head);
                let c = self.expr(cond)?;
                self.expect(c, &Type::Bool, *pos, "while condition")?;
                self.b.branch(c, body_b, exit);
                self.terminated = true;

                self.loops.push((exit, head));
                self.switch(body_b);
                self.stmts(body)?;
                self.jump(head);
                self.loops.pop();

                self.switch(exit);
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                pos,
            } => {
                // Scope for the induction variable.
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let head = self.b.new_block();
                let body_b = self.b.new_block();
                let step_b = self.b.new_block();
                let exit = self.b.new_block();
                self.jump(head);
                self.switch(head);
                match cond {
                    Some(c) => {
                        let cv = self.expr(c)?;
                        self.expect(cv, &Type::Bool, *pos, "for condition")?;
                        self.b.branch(cv, body_b, exit);
                    }
                    None => self.b.jump(body_b),
                }
                self.terminated = true;

                self.loops.push((exit, step_b));
                self.switch(body_b);
                self.stmts(body)?;
                self.jump(step_b);
                self.loops.pop();

                self.switch(step_b);
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                self.jump(head);

                self.scopes.pop();
                self.switch(exit);
                Ok(())
            }
            Stmt::Return { value, pos } => {
                match (value, self.ret.clone()) {
                    (None, None) => self.b.ret(None),
                    (Some(e), Some(want)) => {
                        let v = self.expr(e)?;
                        self.expect(v, &want, *pos, "return value")?;
                        self.b.ret(Some(v));
                    }
                    (None, Some(t)) => {
                        return Err(FrontendError::Type {
                            pos: *pos,
                            message: format!("missing return value of type {t}"),
                        })
                    }
                    (Some(_), None) => {
                        return Err(FrontendError::Type {
                            pos: *pos,
                            message: "void function returns a value".into(),
                        })
                    }
                }
                self.terminated = true;
                Ok(())
            }
            Stmt::Break { pos } => {
                let (exit, _) = *self.loops.last().ok_or(FrontendError::Type {
                    pos: *pos,
                    message: "`break` outside a loop".into(),
                })?;
                self.b.jump(exit);
                self.terminated = true;
                Ok(())
            }
            Stmt::Continue { pos } => {
                let (_, cont) = *self.loops.last().ok_or(FrontendError::Type {
                    pos: *pos,
                    message: "`continue` outside a loop".into(),
                })?;
                self.b.jump(cont);
                self.terminated = true;
                Ok(())
            }
            Stmt::Print { value, pos } => {
                let v = self.expr(value)?;
                self.expect(v, &Type::Int, *pos, "printed value")?;
                self.b.output(v);
                Ok(())
            }
            Stmt::Expr { expr, pos } => {
                match expr {
                    Expr::Call { .. } => {
                        self.call_expr(expr, /*allow_void=*/ true)?;
                        Ok(())
                    }
                    _ => Err(FrontendError::Type {
                        pos: *pos,
                        message: "only calls may be used as statements".into(),
                    }),
                }
            }
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self, e: &Expr) -> Result<Value, FrontendError> {
        match e {
            Expr::Int(i, _) => Ok(self.b.iconst(*i)),
            Expr::Bool(v, _) => Ok(self.b.bconst(*v)),
            Expr::Var(name, pos) => {
                let l = self.lookup(name, *pos)?;
                Ok(self.b.get_local(l))
            }
            Expr::Neg(inner, pos) => {
                let v = self.expr(inner)?;
                self.expect(v, &Type::Int, *pos, "negation operand")?;
                Ok(self.b.unary(UnOp::Neg, v))
            }
            Expr::Not(inner, pos) => {
                let v = self.expr(inner)?;
                self.expect(v, &Type::Bool, *pos, "`!` operand")?;
                Ok(self.b.unary(UnOp::Not, v))
            }
            Expr::Length(inner, pos) => {
                let v = self.expr(inner)?;
                if !self.ty(v).is_array() {
                    return Err(FrontendError::Type {
                        pos: *pos,
                        message: format!("`.length` of non-array {}", self.ty(v)),
                    });
                }
                Ok(self.b.array_len(v))
            }
            Expr::Index { array, index, pos } => {
                let a = self.expr(array)?;
                if !self.ty(a).is_array() {
                    return Err(FrontendError::Type {
                        pos: *pos,
                        message: format!("cannot index into {}", self.ty(a)),
                    });
                }
                let i = self.expr(index)?;
                self.expect(i, &Type::Int, *pos, "array index")?;
                self.b.bounds_check(a, i, CheckKind::Lower);
                self.b.bounds_check(a, i, CheckKind::Upper);
                Ok(self.b.load(a, i))
            }
            Expr::NewArray {
                elem,
                len,
                len2,
                pos,
            } => {
                let n = self.expr(len)?;
                self.expect(n, &Type::Int, *pos, "array length")?;
                let elem_ty = lower_type(elem);
                let outer = self.b.new_array(elem_ty.clone(), n);
                if let Some(len2) = len2 {
                    // new T[n][m]: fill each row. The generated stores are
                    // in-bounds by construction, so no checks are emitted
                    // (they would be pure noise for the optimizer study).
                    let m = self.expr(len2)?;
                    self.expect(m, &Type::Int, *pos, "inner array length")?;
                    let inner_ty = match &elem_ty {
                        Type::Array(e) => (**e).clone(),
                        _ => {
                            return Err(FrontendError::Type {
                                pos: *pos,
                                message: "two-dimensional `new` needs an array element type".into(),
                            })
                        }
                    };
                    let i = self.b.new_local(Type::Int);
                    let zero = self.b.iconst(0);
                    self.b.set_local(i, zero);
                    let head = self.b.new_block();
                    let body = self.b.new_block();
                    let done = self.b.new_block();
                    self.jump(head);
                    self.switch(head);
                    let iv = self.b.get_local(i);
                    let c = self.b.compare(CmpOp::Lt, iv, n);
                    self.b.branch(c, body, done);
                    self.terminated = true;
                    self.switch(body);
                    let iv2 = self.b.get_local(i);
                    let row = self.b.new_array(inner_ty, m);
                    self.b.store(outer, iv2, row);
                    let one = self.b.iconst(1);
                    let inc = self.b.binary(BinOp::Add, iv2, one);
                    self.b.set_local(i, inc);
                    self.jump(head);
                    self.switch(done);
                }
                Ok(outer)
            }
            Expr::Call { .. } => {
                let v = self.call_expr(e, /*allow_void=*/ false)?;
                Ok(v.expect("non-void enforced by call_expr"))
            }
            Expr::Binary { op, lhs, rhs, pos } => self.binary(*op, lhs, rhs, *pos),
        }
    }

    fn call_expr(&mut self, e: &Expr, allow_void: bool) -> Result<Option<Value>, FrontendError> {
        let Expr::Call { name, args, pos } = e else {
            unreachable!("call_expr on non-call")
        };
        let id = *self.by_name.get(name).ok_or_else(|| FrontendError::Type {
            pos: *pos,
            message: format!("unknown function `{name}`"),
        })?;
        let (_, param_tys, ret) = &self.sigs[id.index()];
        if args.len() != param_tys.len() {
            return Err(FrontendError::Type {
                pos: *pos,
                message: format!(
                    "`{name}` expects {} arguments, found {}",
                    param_tys.len(),
                    args.len()
                ),
            });
        }
        let mut argv = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(param_tys) {
            let v = self.expr(a)?;
            self.expect(v, want, a.pos(), "call argument")?;
            argv.push(v);
        }
        if ret.is_none() && !allow_void {
            return Err(FrontendError::Type {
                pos: *pos,
                message: format!("void function `{name}` used as a value"),
            });
        }
        Ok(self.b.call(id, argv, ret.clone()))
    }

    fn binary(
        &mut self,
        op: BinOpAst,
        lhs: &Expr,
        rhs: &Expr,
        pos: Pos,
    ) -> Result<Value, FrontendError> {
        // Short-circuit forms lower to control flow through a temporary.
        if matches!(op, BinOpAst::LogicalAnd | BinOpAst::LogicalOr) {
            let tmp = self.b.new_local(Type::Bool);
            let l = self.expr(lhs)?;
            self.expect(l, &Type::Bool, pos, "logical operand")?;
            let rhs_b = self.b.new_block();
            let short_b = self.b.new_block();
            let join = self.b.new_block();
            if op == BinOpAst::LogicalAnd {
                self.b.branch(l, rhs_b, short_b);
            } else {
                self.b.branch(l, short_b, rhs_b);
            }
            self.terminated = true;

            self.switch(short_b);
            let konst = self.b.bconst(op == BinOpAst::LogicalOr);
            self.b.set_local(tmp, konst);
            self.jump(join);

            self.switch(rhs_b);
            let r = self.expr(rhs)?;
            self.expect(r, &Type::Bool, pos, "logical operand")?;
            self.b.set_local(tmp, r);
            self.jump(join);

            self.switch(join);
            return Ok(self.b.get_local(tmp));
        }

        let l = self.expr(lhs)?;
        let r = self.expr(rhs)?;
        self.expect(l, &Type::Int, pos, "operand")?;
        self.expect(r, &Type::Int, pos, "operand")?;
        let v = match op {
            BinOpAst::Add => self.b.binary(BinOp::Add, l, r),
            BinOpAst::Sub => self.b.binary(BinOp::Sub, l, r),
            BinOpAst::Mul => self.b.binary(BinOp::Mul, l, r),
            BinOpAst::Div => self.b.binary(BinOp::Div, l, r),
            BinOpAst::Rem => self.b.binary(BinOp::Rem, l, r),
            BinOpAst::And => self.b.binary(BinOp::And, l, r),
            BinOpAst::Or => self.b.binary(BinOp::Or, l, r),
            BinOpAst::Xor => self.b.binary(BinOp::Xor, l, r),
            BinOpAst::Shl => self.b.binary(BinOp::Shl, l, r),
            BinOpAst::Shr => self.b.binary(BinOp::Shr, l, r),
            BinOpAst::Lt => self.b.compare(CmpOp::Lt, l, r),
            BinOpAst::Le => self.b.compare(CmpOp::Le, l, r),
            BinOpAst::Gt => self.b.compare(CmpOp::Gt, l, r),
            BinOpAst::Ge => self.b.compare(CmpOp::Ge, l, r),
            BinOpAst::Eq => self.b.compare(CmpOp::Eq, l, r),
            BinOpAst::Ne => self.b.compare(CmpOp::Ne, l, r),
            BinOpAst::LogicalAnd | BinOpAst::LogicalOr => unreachable!("handled above"),
        };
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use abcd_vm::{RtVal, Vm};

    fn compile(src: &str) -> Module {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn every_index_gets_two_checks() {
        let m = compile("fn f(a: int[]) -> int { return a[3] + a[4]; }");
        let f = m.function(m.function_by_name("f").unwrap());
        assert_eq!(f.count_checks(), (4, 0, 0));
        assert_eq!(f.check_site_count(), 4);
    }

    #[test]
    fn bubble_sort_sorts() {
        let src = r#"
            fn sort(a: int[]) {
                for (let i: int = 0; i < a.length - 1; i = i + 1) {
                    for (let j: int = 0; j < a.length - 1 - i; j = j + 1) {
                        if (a[j] > a[j + 1]) {
                            let t: int = a[j];
                            a[j] = a[j + 1];
                            a[j + 1] = t;
                        }
                    }
                }
            }
        "#;
        let m = compile(src);
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[5, 1, 4, 2, 3]);
        vm.call_by_name("sort", &[arr]).unwrap();
        assert_eq!(vm.read_int_array(arr), vec![1, 2, 3, 4, 5]);
        assert!(vm.stats().dynamic_upper_checks() > 0);
    }

    #[test]
    fn short_circuit_avoids_rhs() {
        // rhs would trap (a[9]) if evaluated.
        let src = r#"
            fn f(a: int[]) -> int {
                if (false && a[9] == 0) { return 1; }
                return 2;
            }
        "#;
        let m = compile(src);
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[1]);
        assert_eq!(vm.call_by_name("f", &[arr]).unwrap(), Some(RtVal::Int(2)));
    }

    #[test]
    fn two_dimensional_new_allocates_rows() {
        let src = r#"
            fn f() -> int {
                let m: int[][] = new int[3][5];
                m[2][4] = 7;
                return m[2][4] + m[0].length;
            }
        "#;
        let m = compile(src);
        let mut vm = Vm::new(&m);
        assert_eq!(vm.call_by_name("f", &[]).unwrap(), Some(RtVal::Int(12)));
    }

    #[test]
    fn break_and_continue_flow() {
        let src = r#"
            fn f() -> int {
                let s: int = 0;
                for (let i: int = 0; i < 10; i = i + 1) {
                    if (i == 3) { continue; }
                    if (i == 6) { break; }
                    s = s + i;
                }
                return s;
            }
        "#;
        let m = compile(src);
        let mut vm = Vm::new(&m);
        // 0+1+2+4+5 = 12
        assert_eq!(vm.call_by_name("f", &[]).unwrap(), Some(RtVal::Int(12)));
    }

    #[test]
    fn recursion_and_calls() {
        let src = r#"
            fn fib(n: int) -> int {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() -> int { return fib(10); }
        "#;
        let m = compile(src);
        let mut vm = Vm::new(&m);
        assert_eq!(vm.call_by_name("main", &[]).unwrap(), Some(RtVal::Int(55)));
    }

    #[test]
    fn type_errors_are_reported() {
        let bad = [
            "fn f() { let x: int = true; }",
            "fn f() { y = 1; }",
            "fn f(a: int) -> int { return a[0]; }",
            "fn f() -> int { return g(); }",
            "fn f() { break; }",
            "fn f(a: int[]) { print(a); }",
            "fn f() -> int[] { let x: int = 0; }",
            "fn g() {} fn f() -> int { return g(); }",
        ];
        for src in bad {
            let p = parse(src).unwrap();
            assert!(lower(&p).is_err(), "should reject: {src}");
        }
    }

    #[test]
    fn params_are_assignable() {
        let src = "fn f(x: int) -> int { x = x + 1; return x; }";
        let m = compile(src);
        let mut vm = Vm::new(&m);
        assert_eq!(
            vm.call_by_name("f", &[RtVal::Int(4)]).unwrap(),
            Some(RtVal::Int(5))
        );
    }

    #[test]
    fn shadowing_in_inner_scope() {
        let src = r#"
            fn f() -> int {
                let x: int = 1;
                if (true) { let x: int = 2; print(x); }
                return x;
            }
        "#;
        let m = compile(src);
        let mut vm = Vm::new(&m);
        assert_eq!(vm.call_by_name("f", &[]).unwrap(), Some(RtVal::Int(1)));
        assert_eq!(vm.output(), &[2]);
    }

    #[test]
    fn whole_pipeline_to_essa_executes_identically() {
        let src = r#"
            fn sum(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }
        "#;
        let m = compile(src);
        let mut m2 = m.clone();
        abcd_ssa::module_to_essa(&mut m2).unwrap();
        let mut vm1 = Vm::new(&m);
        let a1 = vm1.alloc_int_array(&[2, 4, 8]);
        let mut vm2 = Vm::new(&m2);
        let a2 = vm2.alloc_int_array(&[2, 4, 8]);
        assert_eq!(
            vm1.call_by_name("sum", &[a1]).unwrap(),
            vm2.call_by_name("sum", &[a2]).unwrap()
        );
    }
}
