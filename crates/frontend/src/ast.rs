//! The MJ abstract syntax tree.

use crate::error::Pos;

/// A source type annotation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TypeAst {
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `T[]`
    Array(Box<TypeAst>),
}

/// A whole program: a list of functions.
#[derive(Clone, Debug)]
pub struct Program {
    /// Functions in source order.
    pub functions: Vec<FnDecl>,
}

/// A function declaration.
#[derive(Clone, Debug)]
pub struct FnDecl {
    /// Name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, TypeAst)>,
    /// Return type, if any.
    pub ret: Option<TypeAst>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Position of the `fn` keyword.
    pub pos: Pos,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let name: ty = init;`
    Let {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: TypeAst,
        /// Mandatory initializer (enforces definite assignment).
        init: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `name = value;`
    Assign {
        /// Target variable.
        name: String,
        /// Assigned value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `array[index] = value;`
    Store {
        /// Array expression.
        array: Expr,
        /// Index expression.
        index: Expr,
        /// Stored value.
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `for (init; cond; step) { .. }` — sugar retained in the AST so the
    /// lowering can mirror the paper's loop shapes exactly.
    For {
        /// Initializer (a `Let` or `Assign`), if any.
        init: Option<Box<Stmt>>,
        /// Condition (defaults to `true`).
        cond: Option<Expr>,
        /// Step statement, if any.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source position.
        pos: Pos,
    },
    /// `return e?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `break;`
    Break {
        /// Source position.
        pos: Pos,
    },
    /// `continue;`
    Continue {
        /// Source position.
        pos: Pos,
    },
    /// `print(e);`
    Print {
        /// Printed value (must be `int`).
        value: Expr,
        /// Source position.
        pos: Pos,
    },
    /// An expression evaluated for its side effects (a call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source position.
        pos: Pos,
    },
}

/// A binary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum BinOpAst {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    LogicalAnd,
    LogicalOr,
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Pos),
    /// Boolean literal.
    Bool(bool, Pos),
    /// Variable reference.
    Var(String, Pos),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOpAst,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// Unary negation `-e`.
    Neg(Box<Expr>, Pos),
    /// Logical not `!e`.
    Not(Box<Expr>, Pos),
    /// Array indexing `a[i]` (lowered with lower+upper bounds checks).
    Index {
        /// Array expression.
        array: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
    /// `a.length`
    Length(Box<Expr>, Pos),
    /// `new int[n]` / `new int[n][m]` (the 2-D form lowers to a loop that
    /// allocates inner rows).
    NewArray {
        /// Element type of the outermost dimension.
        elem: TypeAst,
        /// Length of the outermost dimension.
        len: Box<Expr>,
        /// Optional second dimension.
        len2: Option<Box<Expr>>,
        /// Source position.
        pos: Pos,
    },
    /// Function call `f(a, b)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// The expression's source position.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int(_, p)
            | Expr::Bool(_, p)
            | Expr::Var(_, p)
            | Expr::Neg(_, p)
            | Expr::Not(_, p)
            | Expr::Length(_, p) => *p,
            Expr::Binary { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::NewArray { pos, .. }
            | Expr::Call { pos, .. } => *pos,
        }
    }
}
