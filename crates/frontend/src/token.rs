//! Lexical analysis for MJ.

use crate::error::{FrontendError, Pos};
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    /// A keyword (`fn`, `let`, `if`, ...).
    Keyword(Keyword),
    /// A punctuation or operator symbol.
    Sym(Sym),
    /// End of input.
    Eof,
}

/// MJ keywords.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Keyword {
    Fn,
    Let,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Print,
    New,
    True,
    False,
    Int,
    Bool,
    Length,
}

/// Operator and punctuation symbols.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Sym {
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Dot,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Int(i) => write!(f, "{i}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Sym(s) => write!(f, "{s:?}"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source position.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenizes MJ source text.
///
/// # Errors
///
/// Returns [`FrontendError::Lex`] on unknown characters or malformed
/// literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, FrontendError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                bump!();
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(FrontendError::Lex {
                            pos,
                            message: "unterminated block comment".into(),
                        });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &src[start..i];
                let value = text.parse::<i64>().map_err(|_| FrontendError::Lex {
                    pos,
                    message: format!("integer literal `{text}` out of range"),
                })?;
                out.push(Spanned {
                    token: Token::Int(value),
                    pos,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let text = &src[start..i];
                let token = match text {
                    "fn" => Token::Keyword(Keyword::Fn),
                    "let" => Token::Keyword(Keyword::Let),
                    "if" => Token::Keyword(Keyword::If),
                    "else" => Token::Keyword(Keyword::Else),
                    "while" => Token::Keyword(Keyword::While),
                    "for" => Token::Keyword(Keyword::For),
                    "return" => Token::Keyword(Keyword::Return),
                    "break" => Token::Keyword(Keyword::Break),
                    "continue" => Token::Keyword(Keyword::Continue),
                    "print" => Token::Keyword(Keyword::Print),
                    "new" => Token::Keyword(Keyword::New),
                    "true" => Token::Keyword(Keyword::True),
                    "false" => Token::Keyword(Keyword::False),
                    "int" => Token::Keyword(Keyword::Int),
                    "bool" => Token::Keyword(Keyword::Bool),
                    "length" => Token::Keyword(Keyword::Length),
                    _ => Token::Ident(text.to_string()),
                };
                out.push(Spanned { token, pos });
            }
            _ => {
                let two = if i + 1 < bytes.len() {
                    &src[i..i + 2]
                } else {
                    ""
                };
                let (sym, width) = match two {
                    "->" => (Sym::Arrow, 2),
                    "<=" => (Sym::Le, 2),
                    ">=" => (Sym::Ge, 2),
                    "==" => (Sym::EqEq, 2),
                    "!=" => (Sym::Ne, 2),
                    "&&" => (Sym::AndAnd, 2),
                    "||" => (Sym::OrOr, 2),
                    "<<" => (Sym::Shl, 2),
                    ">>" => (Sym::Shr, 2),
                    _ => {
                        let sym = match c {
                            '(' => Sym::LParen,
                            ')' => Sym::RParen,
                            '{' => Sym::LBrace,
                            '}' => Sym::RBrace,
                            '[' => Sym::LBracket,
                            ']' => Sym::RBracket,
                            ',' => Sym::Comma,
                            ';' => Sym::Semi,
                            ':' => Sym::Colon,
                            '.' => Sym::Dot,
                            '=' => Sym::Assign,
                            '+' => Sym::Plus,
                            '-' => Sym::Minus,
                            '*' => Sym::Star,
                            '/' => Sym::Slash,
                            '%' => Sym::Percent,
                            '!' => Sym::Bang,
                            '<' => Sym::Lt,
                            '>' => Sym::Gt,
                            '&' => Sym::Amp,
                            '|' => Sym::Pipe,
                            '^' => Sym::Caret,
                            other => {
                                return Err(FrontendError::Lex {
                                    pos,
                                    message: format!("unexpected character `{other}`"),
                                })
                            }
                        };
                        (sym, 1)
                    }
                };
                for _ in 0..width {
                    bump!();
                }
                out.push(Spanned {
                    token: Token::Sym(sym),
                    pos,
                });
            }
        }
    }
    out.push(Spanned {
        token: Token::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_signature() {
        assert_eq!(
            toks("fn f(a: int[]) -> int {"),
            vec![
                Token::Keyword(Keyword::Fn),
                Token::Ident("f".into()),
                Token::Sym(Sym::LParen),
                Token::Ident("a".into()),
                Token::Sym(Sym::Colon),
                Token::Keyword(Keyword::Int),
                Token::Sym(Sym::LBracket),
                Token::Sym(Sym::RBracket),
                Token::Sym(Sym::RParen),
                Token::Sym(Sym::Arrow),
                Token::Keyword(Keyword::Int),
                Token::Sym(Sym::LBrace),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn two_char_operators_win() {
        assert_eq!(
            toks("<= < == = != ! >> >"),
            vec![
                Token::Sym(Sym::Le),
                Token::Sym(Sym::Lt),
                Token::Sym(Sym::EqEq),
                Token::Sym(Sym::Assign),
                Token::Sym(Sym::Ne),
                Token::Sym(Sym::Bang),
                Token::Sym(Sym::Shr),
                Token::Sym(Sym::Gt),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("1 // line\n/* block\n */ 2"),
            vec![Token::Int(1), Token::Int(2), Token::Eof]
        );
    }

    #[test]
    fn positions_track_lines() {
        let s = lex("a\n  b").unwrap();
        assert_eq!(s[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(s[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unknown_char_is_reported() {
        assert!(matches!(lex("#"), Err(FrontendError::Lex { .. })));
    }

    #[test]
    fn huge_literal_is_rejected() {
        assert!(matches!(
            lex("99999999999999999999999"),
            Err(FrontendError::Lex { .. })
        ));
    }
}
