//! Frontend diagnostics.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A compilation error in MJ source.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrontendError {
    /// Lexical error.
    Lex {
        /// Location of the error.
        pos: Pos,
        /// Explanation.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Location of the error.
        pos: Pos,
        /// Explanation.
        message: String,
    },
    /// Type or name-resolution error.
    Type {
        /// Location of the error.
        pos: Pos,
        /// Explanation.
        message: String,
    },
}

impl FrontendError {
    /// The error's source position.
    pub fn pos(&self) -> Pos {
        match self {
            FrontendError::Lex { pos, .. }
            | FrontendError::Parse { pos, .. }
            | FrontendError::Type { pos, .. } => *pos,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            FrontendError::Parse { pos, message } => {
                write!(f, "parse error at {pos}: {message}")
            }
            FrontendError::Type { pos, message } => write!(f, "type error at {pos}: {message}"),
        }
    }
}

impl Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = FrontendError::Type {
            pos: Pos { line: 4, col: 9 },
            message: "mismatch".into(),
        };
        assert_eq!(e.to_string(), "type error at 4:9: mismatch");
        assert_eq!(e.pos(), Pos { line: 4, col: 9 });
    }
}
