//! MJ: a small Java-like array language, compiled to the ABCD IR.
//!
//! The ABCD paper optimizes Java bytecode inside the Jalapeño JVM. MJ is
//! this reproduction's stand-in source language: integers, booleans,
//! (nested) arrays with `.length`, `if`/`while`/`for`/`break`/`continue`,
//! functions with recursion, and `print`. Lowering inserts an explicit
//! lower- and upper-bounds check before **every** array access — the exact
//! input shape ABCD consumes.
//!
//! # Example
//!
//! ```
//! use abcd_frontend::compile;
//! use abcd_vm::{Vm, RtVal};
//!
//! let module = compile(r#"
//!     fn first(a: int[]) -> int { return a[0]; }
//! "#)?;
//! let mut vm = Vm::new(&module);
//! let arr = vm.alloc_int_array(&[42, 7]);
//! assert_eq!(vm.call_by_name("first", &[arr])?, Some(RtVal::Int(42)));
//! // Each access carries a lower and an upper check:
//! assert_eq!(vm.stats().checks, [1, 1, 0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod lower;
mod parser;
mod token;

pub use error::{FrontendError, Pos};
pub use lower::lower;
pub use parser::parse;
pub use token::{lex, Keyword, Spanned, Sym, Token};

use abcd_ir::Module;

/// Compiles MJ source text to an IR module in locals form (pre-SSA), with
/// bounds checks inserted.
///
/// # Errors
///
/// Returns the first lexical, syntax, or type error.
pub fn compile(src: &str) -> Result<Module, FrontendError> {
    lower(&parse(src)?)
}

/// Compiles MJ source text and converts every function to e-SSA form —
/// the input ABCD itself consumes.
///
/// # Errors
///
/// Returns frontend errors; SSA-construction failures are impossible for
/// frontend-produced code and would indicate an internal bug.
pub fn compile_to_essa(src: &str) -> Result<Module, FrontendError> {
    let mut module = compile(src)?;
    abcd_ssa::module_to_essa(&mut module).map_err(|(name, e)| FrontendError::Type {
        pos: Pos { line: 0, col: 0 },
        message: format!("internal: SSA construction failed in `{name}`: {e}"),
    })?;
    Ok(module)
}
