//! End-to-end language semantics tests: each MJ construct compiled and
//! executed, asserting observable behavior (not IR shape).

use abcd_frontend::compile;
use abcd_vm::{RtVal, Vm};

fn eval(src: &str, args: &[RtVal]) -> Option<RtVal> {
    let m = compile(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let mut vm = Vm::new(&m);
    vm.call_by_name("f", args)
        .unwrap_or_else(|t| panic!("{t}\n{src}"))
}

fn eval0(src: &str) -> i64 {
    match eval(src, &[]) {
        Some(RtVal::Int(i)) => i,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn operator_precedence_and_associativity() {
    assert_eq!(eval0("fn f() -> int { return 2 + 3 * 4; }"), 14);
    assert_eq!(eval0("fn f() -> int { return (2 + 3) * 4; }"), 20);
    assert_eq!(eval0("fn f() -> int { return 10 - 4 - 3; }"), 3); // left assoc
    assert_eq!(eval0("fn f() -> int { return 100 / 10 / 2; }"), 5);
    assert_eq!(eval0("fn f() -> int { return 17 % 5; }"), 2);
    assert_eq!(eval0("fn f() -> int { return 1 << 4; }"), 16);
    assert_eq!(eval0("fn f() -> int { return 6 & 3; }"), 2);
    assert_eq!(eval0("fn f() -> int { return 6 | 3; }"), 7);
    assert_eq!(eval0("fn f() -> int { return 6 ^ 3; }"), 5);
    // shifts bind tighter than comparisons, looser than + (C-like ladder)
    assert_eq!(eval0("fn f() -> int { return 1 + 1 << 2; }"), 8);
    assert_eq!(eval0("fn f() -> int { return -3 * -2; }"), 6);
}

#[test]
fn logical_operators_short_circuit_with_precedence() {
    // || binds looser than &&
    assert_eq!(
        eval0("fn f() -> int { if (true || false && false) { return 1; } return 0; }"),
        1
    );
    assert_eq!(
        eval0("fn f() -> int { if ((true || false) && false) { return 1; } return 0; }"),
        0
    );
    // short circuit avoids the trap on the right
    assert_eq!(
        eval0(
            "fn f() -> int {
                let a: int[] = new int[1];
                if (true || a[5] == 0) { return 7; }
                return 0;
            }"
        ),
        7
    );
}

#[test]
fn else_if_chains_select_correctly() {
    let src = "fn f(x: int) -> int {
        if (x < 0) { return -1; }
        else if (x == 0) { return 0; }
        else if (x < 10) { return 1; }
        else { return 2; }
    }";
    let cases = [(-5, -1), (0, 0), (5, 1), (50, 2)];
    for (input, expected) in cases {
        assert_eq!(
            eval(src, &[RtVal::Int(input)]),
            Some(RtVal::Int(expected)),
            "x={input}"
        );
    }
}

#[test]
fn nested_loops_with_break_and_continue() {
    let src = "fn f() -> int {
        let count: int = 0;
        for (let i: int = 0; i < 5; i = i + 1) {
            for (let j: int = 0; j < 5; j = j + 1) {
                if (j > i) { break; }
                if (j == 1) { continue; }
                count = count + 1;
            }
        }
        return count;
    }";
    // pairs (i,j) with j <= i and j != 1: i=0:{0}, i=1:{0}, i>=2:{0,2..=i}
    assert_eq!(eval0(src), 1 + 1 + 2 + 3 + 4);
}

#[test]
fn while_loop_with_compound_condition() {
    let src = "fn f() -> int {
        let i: int = 0;
        let s: int = 0;
        while (i < 10 && s < 12) {
            s = s + i;
            i = i + 1;
        }
        return s * 100 + i;
    }";
    // s: 0,1,3,6,10,15 — stops when s=15 ≥ 12 at i=6
    assert_eq!(eval0(src), 1506);
}

#[test]
fn unary_minus_and_not_compose() {
    assert_eq!(eval0("fn f() -> int { return - - 5; }"), 5);
    assert_eq!(
        eval0("fn f() -> int { if (!!true) { return 1; } return 0; }"),
        1
    );
    assert_eq!(eval0("fn f() -> int { return -(3 + 4); }"), -7);
}

#[test]
fn two_dimensional_arrays_roundtrip() {
    let src = "fn f() -> int {
        let m: int[][] = new int[3][4];
        for (let r: int = 0; r < 3; r = r + 1) {
            for (let c: int = 0; c < 4; c = c + 1) {
                m[r][c] = r * 10 + c;
            }
        }
        let s: int = 0;
        for (let r: int = 0; r < 3; r = r + 1) {
            s = s + m[r][3] + m[r].length;
        }
        return s;
    }";
    // rows: 3,13,23 → 39; + 3×4 lengths = 12
    assert_eq!(eval0(src), 51);
}

#[test]
fn comments_everywhere() {
    let src = "// leading\nfn f(/* in params? no */) -> int {\n\
               let x: int = 1; // trailing\n\
               /* block\n spanning */ return x + 1;\n}";
    assert_eq!(eval0(src), 2);
}

#[test]
fn mutual_recursion() {
    let src = "fn is_even(n: int) -> bool { if (n == 0) { return true; } return is_odd(n - 1); }
               fn is_odd(n: int) -> bool { if (n == 0) { return false; } return is_even(n - 1); }
               fn f() -> int { if (is_even(10)) { if (is_odd(7)) { return 1; } } return 0; }";
    assert_eq!(eval0(src), 1);
}

#[test]
fn fallthrough_returns_type_default() {
    assert_eq!(eval0("fn f() -> int { let x: int = 5; }"), 0);
    let src = "fn g() -> bool { }
               fn f() -> int { if (g()) { return 1; } return 2; }";
    assert_eq!(eval0(src), 2);
}

#[test]
fn array_returning_fallthrough_is_rejected() {
    assert!(compile("fn f() -> int[] { let x: int = 0; }").is_err());
}

#[test]
fn for_loop_variable_scoped_to_loop() {
    // Using the loop var after the loop is a name error.
    assert!(
        compile("fn f() -> int { for (let i: int = 0; i < 3; i = i + 1) { } return i; }").is_err()
    );
}

#[test]
fn bool_locals_and_parameters_work() {
    let src = "fn f(flag: bool) -> int {
        let on: bool = flag;
        if (on) { return 10; }
        return 20;
    }";
    assert_eq!(eval(src, &[RtVal::Bool(true)]), Some(RtVal::Int(10)));
    assert_eq!(eval(src, &[RtVal::Bool(false)]), Some(RtVal::Int(20)));
}

#[test]
fn length_of_expression_result() {
    let src = "fn pick(a: int[], b: int[], c: bool) -> int {
        if (c) { return a.length; }
        return b.length;
    }
    fn f() -> int {
        let a: int[] = new int[3];
        let b: int[] = new int[7];
        return pick(a, b, true) * 10 + pick(a, b, false);
    }";
    assert_eq!(eval0(src), 37);
}
