//! The value-range-analysis baseline (Harrison '77 / Patterson '95 style).
//!
//! The paper positions ABCD against "simpler algorithms (e.g., those based
//! upon value-range analysis) [that] cannot eliminate partially redundant
//! checks". This module implements that baseline: an exhaustive, SSA-based
//! interval analysis with symbolic `A.length + d` bounds, branch refinement
//! through the same π-assignments, and widening — then removes every check
//! whose index interval is provably within bounds.
//!
//! Differences from ABCD that the ablation experiment (table A1) surfaces:
//!
//! * **exhaustive**: ranges are computed for *all* values up front, so the
//!   work is proportional to the program, not to the queried checks;
//! * **full redundancy only**: no insertion of compensating checks;
//! * **single relation per bound**: an interval keeps one symbolic bound, so
//!   transitive chains through several variables can be lost where ABCD's
//!   graph keeps every difference constraint.

use abcd_ir::{BinOp, CheckKind, Function, InstId, InstKind, PiGuard, Terminator, Value, ValueDef};
use std::collections::HashMap;

/// A symbolic bound: −∞, +∞, a constant, or `array.length + d`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// No information (lower side).
    NegInf,
    /// No information (upper side).
    PosInf,
    /// A known integer.
    Finite(i64),
    /// `length(array) + offset`.
    Len(Value, i64),
}

impl Bound {
    fn add_const(self, c: i64) -> Bound {
        match self {
            Bound::Finite(k) => Bound::Finite(k.saturating_add(c)),
            Bound::Len(a, d) => Bound::Len(a, d.saturating_add(c)),
            inf => inf,
        }
    }

    /// Is `self ≤ other` certainly true? (Partial: incomparable ⇒ `None`.)
    fn le(self, other: Bound) -> Option<bool> {
        match (self, other) {
            (Bound::NegInf, _) | (_, Bound::PosInf) => Some(true),
            (Bound::PosInf, _) | (_, Bound::NegInf) => Some(false),
            (Bound::Finite(a), Bound::Finite(b)) => Some(a <= b),
            (Bound::Len(x, a), Bound::Len(y, b)) if x == y => Some(a <= b),
            // length ≥ 0 relates some mixed cases:
            // Finite(k) ≤ Len(_, d) certainly when k ≤ d (k ≤ 0+d ≤ len+d).
            (Bound::Finite(k), Bound::Len(_, d)) if k <= d => Some(true),
            _ => None,
        }
    }
}

/// An interval `[lo, hi]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Range {
    /// Lower bound.
    pub lo: Bound,
    /// Upper bound.
    pub hi: Bound,
}

impl Range {
    const TOP: Range = Range {
        lo: Bound::NegInf,
        hi: Bound::PosInf,
    };

    fn exact(k: i64) -> Range {
        Range {
            lo: Bound::Finite(k),
            hi: Bound::Finite(k),
        }
    }

    /// Union with widening hints handled by the caller.
    fn union(self, other: Range) -> Range {
        let lo = match other.lo.le(self.lo) {
            Some(true) => other.lo,
            Some(false) => self.lo,
            None => Bound::NegInf,
        };
        let hi = match self.hi.le(other.hi) {
            Some(true) => other.hi,
            Some(false) => self.hi,
            None => Bound::PosInf,
        };
        Range { lo, hi }
    }

    /// Intersection (refinement at πs); keeps `self` where incomparable.
    fn refine_hi(self, hi: Bound) -> Range {
        match hi.le(self.hi) {
            Some(true) => Range { lo: self.lo, hi },
            _ => self,
        }
    }

    fn refine_lo(self, lo: Bound) -> Range {
        match self.lo.le(lo) {
            Some(true) => Range { lo, hi: self.hi },
            _ => self,
        }
    }
}

/// Result of the baseline pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RangeStats {
    /// Lower-bound checks removed.
    pub removed_lower: usize,
    /// Upper-bound checks removed.
    pub removed_upper: usize,
    /// Transfer-function evaluations (the analysis' work metric, compared
    /// against ABCD's `prove` steps in the ablation).
    pub steps: u64,
}

/// Runs the interval analysis and removes provably redundant checks.
/// Expects e-SSA form (π-assignments drive branch refinement).
pub fn eliminate_checks_by_range(func: &mut Function) -> RangeStats {
    let mut stats = RangeStats::default();
    let ranges = compute_ranges(func, &mut stats);

    // Remove redundant checks.
    for b in func.blocks().collect::<Vec<_>>() {
        let ids: Vec<InstId> = func.block(b).insts().to_vec();
        for id in ids {
            let InstKind::BoundsCheck {
                array, index, kind, ..
            } = func.inst(id).kind
            else {
                continue;
            };
            let r = ranges.get(&index).copied().unwrap_or(Range::TOP);
            let redundant = match kind {
                CheckKind::Lower => lower_proved(r.lo),
                CheckKind::Upper => upper_proved(func, r.hi, array),
                CheckKind::Both => lower_proved(r.lo) && upper_proved(func, r.hi, array),
            };
            if redundant {
                func.remove_inst(b, id);
                match kind {
                    CheckKind::Lower => stats.removed_lower += 1,
                    CheckKind::Upper => stats.removed_upper += 1,
                    CheckKind::Both => {
                        stats.removed_lower += 1;
                        stats.removed_upper += 1;
                    }
                }
            }
        }
    }
    stats
}

fn lower_proved(lo: Bound) -> bool {
    match lo {
        Bound::Finite(k) => k >= 0,
        Bound::Len(_, d) => d >= 0, // length ≥ 0
        _ => false,
    }
}

fn upper_proved(func: &Function, hi: Bound, array: Value) -> bool {
    match hi {
        Bound::Len(a, d) => a == array && d <= -1,
        Bound::Finite(k) => {
            // Provable only against a constant-length allocation.
            const_len_of(func, array).map(|n| k < n).unwrap_or(false)
        }
        _ => false,
    }
}

/// The constant allocation length of `array`, if its definition is
/// `new T[const]`.
fn const_len_of(func: &Function, array: Value) -> Option<i64> {
    let ValueDef::Inst(id) = func.value_def(array) else {
        return None;
    };
    let InstKind::NewArray { len, .. } = func.inst(id).kind else {
        return None;
    };
    let ValueDef::Inst(lid) = func.value_def(len) else {
        return None;
    };
    match func.inst(lid).kind {
        InstKind::Const(c) => Some(c),
        _ => None,
    }
}

/// Exhaustive fixpoint over all integer SSA values, with widening.
fn compute_ranges(func: &Function, stats: &mut RangeStats) -> HashMap<Value, Range> {
    let mut ranges: HashMap<Value, Range> = HashMap::new();
    let mut visits: HashMap<Value, u32> = HashMap::new();
    const WIDEN_AFTER: u32 = 4;

    // Optimistic iteration: parameters start at TOP; everything else is
    // absent (⊥) until its definition is first visited, so loop φs see the
    // entry value before the back edge (defs dominate uses, and a dominator
    // precedes its dominated blocks in RPO).
    for i in 0..func.param_count() {
        let p = func.param(i);
        if matches!(func.value_type(p), abcd_ir::Type::Int) {
            ranges.insert(p, Range::TOP);
        }
    }
    let rpo = abcd_ir::reverse_postorder(func);
    loop {
        let mut changed = false;
        for &b in &rpo {
            for &id in func.block(b).insts() {
                let inst = func.inst(id);
                let Some(r) = inst.result else { continue };
                if !matches!(func.value_type(r), abcd_ir::Type::Int) {
                    continue;
                }
                stats.steps += 1;
                let get = |v: Value| ranges.get(&v).copied();
                let new = transfer(func, &inst.kind, get);
                let old = ranges.get(&r).copied();
                let mut merged = match old {
                    None => new,
                    Some(o) if o == new => continue,
                    Some(o) => {
                        // Monotone update with widening on oscillation.
                        let n = visits.entry(r).or_insert(0);
                        *n += 1;
                        if *n > WIDEN_AFTER {
                            widen(o, new)
                        } else {
                            // φ-style union keeps the analysis monotone.
                            o.union(new)
                        }
                    }
                };
                // π refinements are applied after the merge so they are
                // never widened away.
                if let InstKind::Pi { .. } = inst.kind {
                    merged = new;
                }
                if Some(merged) != old {
                    ranges.insert(r, merged);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    ranges
}

fn widen(old: Range, new: Range) -> Range {
    let lo = match new.lo.le(old.lo) {
        Some(false) => old.lo, // still growing downward? keep old
        Some(true) if new.lo != old.lo => Bound::NegInf,
        _ => old.lo,
    };
    let hi = match old.hi.le(new.hi) {
        Some(true) if new.hi != old.hi => Bound::PosInf,
        _ => old.hi,
    };
    Range { lo, hi }
}

fn transfer(func: &Function, kind: &InstKind, get_opt: impl Fn(Value) -> Option<Range>) -> Range {
    let get = |v: Value| get_opt(v).unwrap_or(Range::TOP);
    match kind {
        InstKind::Const(c) => Range::exact(*c),
        InstKind::ArrayLen { array } => {
            // length(a) ∈ [max(0, alloc-lo), Len(a, 0)]
            Range {
                lo: Bound::Finite(0),
                hi: Bound::Len(*array, 0),
            }
        }
        InstKind::Binary { op, lhs, rhs } => {
            let (l, r) = (get(*lhs), get(*rhs));
            match op {
                BinOp::Add => Range {
                    lo: add_bounds(l.lo, r.lo, Bound::NegInf),
                    hi: add_bounds(l.hi, r.hi, Bound::PosInf),
                },
                BinOp::Sub => Range {
                    lo: sub_bounds(l.lo, r.hi, Bound::NegInf),
                    hi: sub_bounds(l.hi, r.lo, Bound::PosInf),
                },
                _ => Range::TOP,
            }
        }
        InstKind::Copy { arg } => get(*arg),
        InstKind::Phi { args } => {
            // ⊥ (absent) arguments — back edges not yet evaluated — are
            // skipped; the fixpoint loop revisits once they materialize.
            let mut acc: Option<Range> = None;
            for (_, v) in args {
                if let Some(r) = get_opt(*v) {
                    acc = Some(match acc {
                        None => r,
                        Some(a) => a.union(r),
                    });
                }
            }
            acc.unwrap_or(Range::TOP)
        }
        InstKind::Pi { input, guard } => {
            let base = get(*input);
            match guard {
                PiGuard::Check { array, kind, .. } => match kind {
                    CheckKind::Lower => base.refine_lo(Bound::Finite(0)),
                    CheckKind::Upper => base.refine_hi(Bound::Len(*array, -1)),
                    CheckKind::Both => base
                        .refine_lo(Bound::Finite(0))
                        .refine_hi(Bound::Len(*array, -1)),
                },
                PiGuard::Branch { block, taken } => {
                    refine_by_branch(func, base, *input, *block, *taken, &get)
                }
            }
        }
        _ => Range::TOP,
    }
}

fn add_bounds(a: Bound, b: Bound, inf: Bound) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => Bound::Finite(x.saturating_add(y)),
        (Bound::Len(v, d), Bound::Finite(y)) | (Bound::Finite(y), Bound::Len(v, d)) => {
            Bound::Len(v, d.saturating_add(y))
        }
        _ => inf,
    }
}

fn sub_bounds(a: Bound, b: Bound, inf: Bound) -> Bound {
    match (a, b) {
        (Bound::Finite(x), Bound::Finite(y)) => Bound::Finite(x.saturating_sub(y)),
        (Bound::Len(v, d), Bound::Finite(y)) => Bound::Len(v, d.saturating_sub(y)),
        _ => inf,
    }
}

fn refine_by_branch(
    func: &Function,
    base: Range,
    input: Value,
    from: abcd_ir::Block,
    taken: bool,
    get: &impl Fn(Value) -> Range,
) -> Range {
    let Some(Terminator::Branch { cond, .. }) = func.block(from).terminator_opt() else {
        return base;
    };
    let ValueDef::Inst(cid) = func.value_def(*cond) else {
        return base;
    };
    let InstKind::Compare { op, lhs, rhs } = func.inst(cid).kind else {
        return base;
    };
    let op = if taken { op } else { op.negated() };
    // Orient as `input op' other`.
    let (op, other) = if input == lhs {
        (op, rhs)
    } else if input == rhs {
        (op.swapped(), lhs)
    } else {
        return base;
    };
    let o = get(other);
    match op {
        abcd_ir::CmpOp::Lt => base.refine_hi(o.hi.add_const(-1)),
        abcd_ir::CmpOp::Le => base.refine_hi(o.hi),
        abcd_ir::CmpOp::Gt => base.refine_lo(o.lo.add_const(1)),
        abcd_ir::CmpOp::Ge => base.refine_lo(o.lo),
        abcd_ir::CmpOp::Eq => base.refine_hi(o.hi).refine_lo(o.lo),
        abcd_ir::CmpOp::Ne => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_frontend::compile;
    use abcd_ssa::module_to_essa;

    fn essa(src: &str) -> Function {
        let mut m = compile(src).unwrap();
        module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        m.function(id).clone()
    }

    #[test]
    fn removes_guarded_access() {
        let mut f = essa(
            "fn f(a: int[], i: int) -> int {
                if (0 <= i) { if (i < a.length) { return a[i]; } }
                return 0;
            }",
        );
        let stats = eliminate_checks_by_range(&mut f);
        assert_eq!(stats.removed_lower, 1, "{f}");
        assert_eq!(stats.removed_upper, 1, "{f}");
        assert_eq!(f.count_checks(), (0, 0, 0));
    }

    #[test]
    fn removes_canonical_loop_checks() {
        let mut f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let stats = eliminate_checks_by_range(&mut f);
        assert_eq!((stats.removed_lower, stats.removed_upper), (1, 1), "{f}");
    }

    #[test]
    fn keeps_unbounded_access() {
        let mut f = essa("fn f(a: int[], i: int) -> int { return a[i]; }");
        let stats = eliminate_checks_by_range(&mut f);
        assert_eq!((stats.removed_lower, stats.removed_upper), (0, 0));
        assert_eq!(f.count_checks(), (2, 0, 0));
    }

    #[test]
    fn constant_alloc_and_index_proved() {
        let mut f = essa(
            "fn f() -> int {
                let a: int[] = new int[10];
                return a[9];
            }",
        );
        let stats = eliminate_checks_by_range(&mut f);
        assert_eq!((stats.removed_lower, stats.removed_upper), (1, 1), "{f}");
    }

    #[test]
    fn widening_terminates_on_growing_loop() {
        let mut f = essa(
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let stats = eliminate_checks_by_range(&mut f);
        // lower bound still provable; upper is not (n unrelated to a).
        assert_eq!((stats.removed_lower, stats.removed_upper), (1, 0), "{f}");
        assert!(stats.steps < 100_000);
    }

    #[test]
    fn bound_partial_order() {
        assert_eq!(Bound::Finite(3).le(Bound::Finite(4)), Some(true));
        assert_eq!(
            Bound::Len(Value::new(0), -1).le(Bound::Len(Value::new(0), 0)),
            Some(true)
        );
        assert_eq!(
            Bound::Len(Value::new(0), 0).le(Bound::Len(Value::new(1), 0)),
            None
        );
        assert_eq!(
            Bound::Finite(-3).le(Bound::Len(Value::new(0), -3)),
            Some(true)
        );
        assert_eq!(Bound::Finite(1).le(Bound::Len(Value::new(0), 0)), None);
        assert_eq!(Bound::NegInf.le(Bound::Finite(i64::MIN)), Some(true));
    }
}
