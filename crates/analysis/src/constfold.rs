//! Constant folding on SSA form.
//!
//! Folds arithmetic/comparisons over constant operands into constant
//! definitions, in place (the instruction is rewritten, so no renaming is
//! needed). This mirrors the "constant folding" in Jalapeño's basic
//! optimization set and matters for ABCD: a folded `0 - 1` becomes a `-1`
//! literal, which the inequality graph represents exactly.

use abcd_ir::{BinOp, Function, InstKind, UnOp, Value, ValueDef};

fn const_of(func: &Function, v: Value) -> Option<i64> {
    match func.value_def(v) {
        ValueDef::Inst(id) => match func.inst(id).kind {
            InstKind::Const(c) => Some(c),
            _ => None,
        },
        ValueDef::Param(_) => None,
    }
}

fn bool_of(func: &Function, v: Value) -> Option<bool> {
    match func.value_def(v) {
        ValueDef::Inst(id) => match func.inst(id).kind {
            InstKind::BoolConst(c) => Some(c),
            _ => None,
        },
        ValueDef::Param(_) => None,
    }
}

/// Folds constant expressions; returns the number of instructions rewritten.
/// Runs to a local fixed point (folded results feed later folds because the
/// rewrite happens in program order).
pub fn fold_constants(func: &mut Function) -> usize {
    let mut folded = 0;
    for b in func.blocks().collect::<Vec<_>>() {
        let ids = func.block(b).insts().to_vec();
        for id in ids {
            let new_kind = match &func.inst(id).kind {
                InstKind::Binary { op, lhs, rhs } => {
                    match (const_of(func, *lhs), const_of(func, *rhs)) {
                        (Some(a), Some(c)) => {
                            let v = match op {
                                BinOp::Add => Some(a.wrapping_add(c)),
                                BinOp::Sub => Some(a.wrapping_sub(c)),
                                BinOp::Mul => Some(a.wrapping_mul(c)),
                                // Division folds only when well-defined.
                                BinOp::Div if c != 0 => Some(a.wrapping_div(c)),
                                BinOp::Rem if c != 0 => Some(a.wrapping_rem(c)),
                                BinOp::And => Some(a & c),
                                BinOp::Or => Some(a | c),
                                BinOp::Xor => Some(a ^ c),
                                BinOp::Shl => Some(a.wrapping_shl(c as u32 & 63)),
                                BinOp::Shr => Some(a.wrapping_shr(c as u32 & 63)),
                                _ => None,
                            };
                            v.map(InstKind::Const)
                        }
                        // Algebraic identities that keep the graph sparse.
                        (None, Some(0)) if matches!(op, BinOp::Add | BinOp::Sub) => {
                            Some(InstKind::Copy { arg: *lhs })
                        }
                        (Some(0), None) if matches!(op, BinOp::Add) => {
                            Some(InstKind::Copy { arg: *rhs })
                        }
                        _ => None,
                    }
                }
                InstKind::Compare { op, lhs, rhs } => {
                    match (const_of(func, *lhs), const_of(func, *rhs)) {
                        (Some(a), Some(c)) => Some(InstKind::BoolConst(op.eval(a, c))),
                        _ => None,
                    }
                }
                InstKind::Unary { op: UnOp::Neg, arg } => {
                    const_of(func, *arg).map(|a| InstKind::Const(a.wrapping_neg()))
                }
                InstKind::Unary { op: UnOp::Not, arg } => {
                    bool_of(func, *arg).map(|a| InstKind::BoolConst(!a))
                }
                _ => None,
            };
            if let Some(kind) = new_kind {
                func.inst_mut(id).kind = kind;
                folded += 1;
            }
        }
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{CmpOp, FunctionBuilder, Terminator, Type};

    #[test]
    fn folds_chain_in_program_order() {
        let mut b = FunctionBuilder::new("f", vec![], Some(Type::Int));
        let zero = b.iconst(0);
        let one = b.iconst(1);
        let m1 = b.binary(BinOp::Sub, zero, one); // 0 - 1 = -1
        let two = b.iconst(2);
        let r = b.binary(BinOp::Mul, m1, two); // -1 * 2 = -2
        b.ret(Some(r));
        let mut f = b.finish().unwrap();
        assert_eq!(fold_constants(&mut f), 2);
        // r's definition is now a constant -2
        let Terminator::Return(Some(rv)) = f.block(f.entry()).terminator() else {
            panic!()
        };
        let abcd_ir::ValueDef::Inst(id) = f.value_def(*rv) else {
            panic!()
        };
        assert_eq!(f.inst(id).kind, InstKind::Const(-2));
    }

    #[test]
    fn folds_comparisons_and_identities() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let three = b.iconst(3);
        let five = b.iconst(5);
        let _c = b.compare(CmpOp::Lt, three, five); // true
        let y = b.binary(BinOp::Add, x, x); // not foldable
        let zero = b.iconst(0);
        let z = b.binary(BinOp::Add, y, zero); // identity → copy
        b.ret(Some(z));
        let mut f = b.finish().unwrap();
        assert_eq!(fold_constants(&mut f), 2);
    }

    #[test]
    fn division_by_zero_not_folded() {
        let mut b = FunctionBuilder::new("f", vec![], Some(Type::Int));
        let one = b.iconst(1);
        let zero = b.iconst(0);
        let q = b.binary(BinOp::Div, one, zero);
        b.ret(Some(q));
        let mut f = b.finish().unwrap();
        assert_eq!(fold_constants(&mut f), 0);
    }
}
