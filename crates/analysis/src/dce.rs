//! Dead-code elimination on SSA form.
//!
//! Removes pure instructions whose results are never used. Run after GVN /
//! constant folding to sweep the redundant definitions they strand.

use abcd_ir::{Function, InstId};

/// Removes unused pure instructions; returns how many were removed.
///
/// π-assignments count as pure: an unused π carries a constraint no check
/// ever consults, so dropping it cannot hide a redundancy.
pub fn eliminate_dead_code(func: &mut Function) -> usize {
    let mut removed_total = 0;
    // Iterate to a fixed point: removing one instruction may strand another.
    loop {
        let mut use_counts = vec![0u32; func.value_count()];
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                func.inst(id)
                    .kind
                    .for_each_use(|v| use_counts[v.index()] += 1);
            }
            if let Some(t) = func.block(b).terminator_opt() {
                t.for_each_use(|v| use_counts[v.index()] += 1);
            }
        }

        let mut removed = 0;
        for b in func.blocks().collect::<Vec<_>>() {
            let ids: Vec<InstId> = func.block(b).insts().to_vec();
            for id in ids {
                let inst = func.inst(id);
                let dead = match inst.result {
                    Some(r) => use_counts[r.index()] == 0,
                    None => false,
                };
                if dead && inst.kind.is_pure() {
                    func.remove_inst(b, id);
                    removed += 1;
                }
            }
        }
        removed_total += removed;
        if removed == 0 {
            break;
        }
    }
    removed_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{BinOp, FunctionBuilder, Type};

    #[test]
    fn removes_unused_chain() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let one = b.iconst(1);
        let dead1 = b.binary(BinOp::Add, x, one);
        let _dead2 = b.binary(BinOp::Mul, dead1, dead1);
        b.ret(Some(x));
        let mut f = b.finish().unwrap();
        assert_eq!(eliminate_dead_code(&mut f), 3); // dead2, dead1, one
        let live: usize = f.blocks().map(|b| f.block(b).insts().len()).sum();
        assert_eq!(live, 0);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], None);
        let a = b.param(0);
        let i = b.iconst(0);
        b.bounds_check(a, i, abcd_ir::CheckKind::Upper);
        let v = b.load(a, i); // result unused, but loads may trap → keep
        let _ = v;
        b.ret(None);
        let mut f = b.finish().unwrap();
        assert_eq!(eliminate_dead_code(&mut f), 0);
        assert_eq!(f.count_checks(), (1, 0, 0));
    }
}
