//! Baseline analyses and cleanup passes for the ABCD reproduction.
//!
//! Two roles:
//!
//! * the **"basic set"** of optimizations the paper's host compiler
//!   (Jalapeño) runs before ABCD — constant folding, copy propagation,
//!   global CSE/value numbering, dead-code elimination ([`cleanup`]);
//! * the **value-range-analysis baseline** the paper compares against
//!   ([`eliminate_checks_by_range`]), an exhaustive interval analysis that
//!   removes fully redundant checks but — unlike ABCD — no partially
//!   redundant ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constfold;
mod dce;
mod gvn;
mod range;

pub use constfold::fold_constants;
pub use dce::eliminate_dead_code;
pub use gvn::{congruent_arrays, record_load_congruence, value_number, GvnResult};
pub use range::{eliminate_checks_by_range, Bound, Range, RangeStats};

use abcd_ir::Function;

/// Statistics from the [`cleanup`] pipeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CleanupStats {
    /// Instructions rewritten by constant folding.
    pub folded: usize,
    /// Instructions removed by value numbering / copy propagation.
    pub value_numbered: usize,
    /// Instructions removed by dead-code elimination.
    pub dce_removed: usize,
}

/// Runs the pre-ABCD cleanup pipeline on an SSA-form function:
/// constant folding → value numbering → (repeat once) → DCE.
///
/// Returns the last GVN result so ABCD's §7.1 hook can query congruence.
pub fn cleanup(func: &mut Function) -> (CleanupStats, GvnResult) {
    let mut stats = CleanupStats::default();
    stats.folded += fold_constants(func);
    let mut gvn = value_number(func);
    stats.value_numbered += gvn.removed;
    let folded2 = fold_constants(func);
    if folded2 > 0 {
        stats.folded += folded2;
        let g2 = value_number(func);
        stats.value_numbered += g2.removed;
        // Keep the union of congruence facts (later leaders win).
        for (k, v) in g2.leader {
            gvn.leader.insert(k, v);
        }
    }
    stats.dce_removed += eliminate_dead_code(func);
    (stats, gvn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_frontend::compile;

    #[test]
    fn cleanup_shrinks_frontend_output() {
        let mut m = compile(
            "fn f(a: int[]) -> int {
                let x: int = a.length;
                let y: int = a.length;
                return x + y + (2 * 3);
            }",
        )
        .unwrap();
        let id = m.functions().next().unwrap().0;
        let f = m.function_mut(id);
        abcd_ssa::split_critical_edges(f);
        abcd_ssa::promote_locals(f).unwrap();
        let before: usize = f.blocks().map(|b| f.block(b).insts().len()).sum();
        let (stats, _) = cleanup(f);
        let after: usize = f.blocks().map(|b| f.block(b).insts().len()).sum();
        assert!(after < before, "{stats:?}");
        assert!(stats.folded >= 1);
        assert!(stats.value_numbered >= 1);
        abcd_ssa::verify_ssa(f).unwrap();
        abcd_ir::verify_function(f, None).unwrap();
    }

    #[test]
    fn cleanup_preserves_semantics() {
        let src = "fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) {
                s = s + a[i] * 2 + (1 + 1);
            }
            return s;
        }";
        let m1 = compile(src).unwrap();
        let mut m2 = compile(src).unwrap();
        abcd_ssa::module_to_essa(&mut m2).unwrap();
        let ids: Vec<_> = m2.functions().map(|(i, _)| i).collect();
        for id in ids {
            cleanup(m2.function_mut(id));
        }
        let mut vm1 = abcd_vm::Vm::new(&m1);
        let a1 = vm1.alloc_int_array(&[3, 1, 4]);
        let mut vm2 = abcd_vm::Vm::new(&m2);
        let a2 = vm2.alloc_int_array(&[3, 1, 4]);
        assert_eq!(
            vm1.call_by_name("f", &[a1]).unwrap(),
            vm2.call_by_name("f", &[a2]).unwrap()
        );
    }
}
