//! Dominator-scoped global value numbering (hash-based GVN/CSE).
//!
//! Walks the dominator tree keeping a scoped table of available pure
//! expressions; a recomputation whose dominating twin is available is
//! removed and its uses redirected. This plays two roles in the
//! reproduction:
//!
//! * it is part of the "basic set" of optimizations Jalapeño runs before
//!   ABCD (copy propagation + local/global CSE), which canonicalizes
//!   duplicate constants, repeated `a.length` reads, and repeated `i + 1`
//!   expressions — without it most of ABCD's subsumption opportunities are
//!   hidden behind syntactically distinct values;
//! * it supplies the **congruence classes** the §7.1 extension consults on
//!   demand ("if A and B were congruent, we obtained the desired proof").

use abcd_ir::{BinOp, Function, InstId, InstKind, UnOp, Value};
use abcd_ssa::DomTree;
use std::collections::HashMap;

/// A hashable key for pure expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ExprKey {
    Const(i64),
    BoolConst(bool),
    Unary(UnOp, Value),
    Binary(BinOp, Value, Value),
    Compare(abcd_ir::CmpOp, Value, Value),
    ArrayLen(Value),
}

/// The result of value numbering: rewrite counts and congruence classes.
#[derive(Clone, Debug, Default)]
pub struct GvnResult {
    /// Instructions removed as redundant.
    pub removed: usize,
    /// Value → canonical (congruent) representative, for every value that
    /// was unified. Queried by ABCD's §7.1 hook.
    pub leader: HashMap<Value, Value>,
}

impl GvnResult {
    /// The congruence-class representative of `v` (itself if never unified).
    pub fn leader_of(&self, v: Value) -> Value {
        let mut cur = v;
        while let Some(next) = self.leader.get(&cur) {
            if *next == cur {
                break;
            }
            cur = *next;
        }
        cur
    }

    /// Are `a` and `b` congruent?
    pub fn congruent(&self, a: Value, b: Value) -> bool {
        self.leader_of(a) == self.leader_of(b)
    }
}

/// Runs GVN over `func`; rewrites uses and unlinks redundant instructions.
pub fn value_number(func: &mut Function) -> GvnResult {
    let dt = DomTree::compute(func);
    let mut result = GvnResult::default();
    // Scoped expression table: stack of (key, value) undo entries per block.
    let mut table: HashMap<ExprKey, Value> = HashMap::new();
    let mut rename: HashMap<Value, Value> = HashMap::new();

    enum Step {
        Enter(abcd_ir::Block),
        Exit(Vec<(ExprKey, Option<Value>)>),
    }
    let mut work = vec![Step::Enter(func.entry())];
    let mut to_remove: Vec<(abcd_ir::Block, InstId)> = Vec::new();

    while let Some(step) = work.pop() {
        match step {
            Step::Exit(undo) => {
                for (k, prev) in undo {
                    match prev {
                        Some(v) => {
                            table.insert(k, v);
                        }
                        None => {
                            table.remove(&k);
                        }
                    }
                }
            }
            Step::Enter(b) => {
                let mut undo: Vec<(ExprKey, Option<Value>)> = Vec::new();
                let ids: Vec<InstId> = func.block(b).insts().to_vec();
                for id in ids {
                    // Rewrite uses through accumulated renames first.
                    {
                        let rn = &rename;
                        func.inst_mut(id)
                            .kind
                            .map_uses(|v| *rn.get(&v).unwrap_or(&v));
                    }
                    let inst = func.inst(id);
                    let key = match &inst.kind {
                        InstKind::Const(c) => Some(ExprKey::Const(*c)),
                        InstKind::BoolConst(c) => Some(ExprKey::BoolConst(*c)),
                        InstKind::Unary { op, arg } => Some(ExprKey::Unary(*op, *arg)),
                        InstKind::Binary { op, lhs, rhs } => {
                            // Canonicalize commutative operands by index.
                            let (a, c) = if commutative(*op) && rhs < lhs {
                                (*rhs, *lhs)
                            } else {
                                (*lhs, *rhs)
                            };
                            // Div/Rem can trap; still pure *value-wise*, and
                            // replacing with a dominating twin never adds a
                            // trap, so it is safe to unify.
                            Some(ExprKey::Binary(*op, a, c))
                        }
                        InstKind::Compare { op, lhs, rhs } => {
                            Some(ExprKey::Compare(*op, *lhs, *rhs))
                        }
                        InstKind::ArrayLen { array } => Some(ExprKey::ArrayLen(*array)),
                        InstKind::Copy { arg } => {
                            // Copy propagation: uses of the copy see the
                            // original; the copy itself is removed.
                            let r = inst.result.expect("copy has result");
                            rename.insert(r, *arg);
                            result.leader.insert(r, *arg);
                            to_remove.push((b, id));
                            result.removed += 1;
                            None
                        }
                        _ => None,
                    };
                    if let Some(key) = key {
                        let r = inst.result.expect("pure inst has result");
                        if let Some(&canon) = table.get(&key) {
                            rename.insert(r, canon);
                            result.leader.insert(r, canon);
                            to_remove.push((b, id));
                            result.removed += 1;
                        } else {
                            undo.push((key.clone(), table.get(&key).copied()));
                            table.insert(key, r);
                        }
                    }
                }
                // Terminator + successor φ args use the rename map.
                {
                    let rn = rename.clone();
                    if let Some(term) = func.block(b).terminator_opt() {
                        let mut t = term.clone();
                        t.map_uses(|v| *rn.get(&v).unwrap_or(&v));
                        func.set_terminator(b, t);
                    }
                }
                work.push(Step::Exit(undo));
                for &c in dt.children(b) {
                    work.push(Step::Enter(c));
                }
            }
        }
    }

    // φ arguments may reference renamed values defined in non-dominating
    // predecessors; apply the full rename map once at the end.
    let rn = rename.clone();
    func.map_all_uses(|v| *rn.get(&v).unwrap_or(&v));

    for (b, id) in to_remove {
        func.remove_inst(b, id);
    }
    result
}

fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// Records *load congruence* into `gvn`: two loads of the same
/// `array[index]` with no intervening store or call yield the same value —
/// in particular, two loads of an array-of-arrays slot yield the *same
/// array reference*, so their lengths are equal. This is exactly the
/// congruence ABCD's §7.1 hook consults ("if A and B were congruent, we
/// obtained the desired proof that x ≤ A.length"): pure-expression CSE can
/// never supply it because loads read memory.
///
/// The analysis is deliberately block-local (the table resets at block
/// entry and at every store/call), which keeps it trivially sound in the
/// presence of loops and joins. No instruction is rewritten — matching the
/// paper's "we do not encode the results … we consult the congruence
/// information on demand".
pub fn record_load_congruence(func: &Function, gvn: &mut GvnResult) {
    for b in func.blocks() {
        let mut table: HashMap<(Value, Value), Value> = HashMap::new();
        for &id in func.block(b).insts() {
            let inst = func.inst(id);
            match &inst.kind {
                InstKind::Load { array, index } => {
                    // Canonicalize through existing congruence so renamed
                    // indices still match.
                    let key = (gvn.leader_of(*array), gvn.leader_of(*index));
                    let r = inst.result.expect("load has result");
                    match table.get(&key) {
                        Some(&first) => {
                            gvn.leader.insert(r, first);
                        }
                        None => {
                            table.insert(key, r);
                        }
                    }
                }
                InstKind::Store { .. } | InstKind::Call { .. } => table.clear(),
                _ => {}
            }
        }
    }
}

/// Convenience accessor used by ABCD's §7.1 hook: all array-typed values
/// congruent to `array` (excluding itself) whose definition dominates
/// `at_block`.
pub fn congruent_arrays(
    func: &Function,
    gvn: &GvnResult,
    dt: &DomTree,
    array: Value,
    at_block: abcd_ir::Block,
) -> Vec<Value> {
    let leader = gvn.leader_of(array);
    let locations = func.inst_locations();
    let mut out = Vec::new();
    for v in func.values() {
        if v == array || !func.value_type(v).is_array() {
            continue;
        }
        if gvn.leader_of(v) != leader {
            continue;
        }
        let ok = match func.value_def(v) {
            abcd_ir::ValueDef::Param(_) => true,
            abcd_ir::ValueDef::Inst(id) => locations[id.index()]
                .map(|(b, _)| dt.dominates(b, at_block))
                .unwrap_or(false),
        };
        if ok {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{CmpOp, FunctionBuilder, Type};

    #[test]
    fn unifies_duplicate_constants_and_lengths() {
        let mut b = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let l1 = b.array_len(a);
        let l2 = b.array_len(a); // redundant
        let c1 = b.iconst(10);
        let c2 = b.iconst(10); // redundant
        let s1 = b.binary(BinOp::Add, l1, c1);
        let s2 = b.binary(BinOp::Add, c2, l2); // commutative twin
        let r = b.binary(BinOp::Sub, s1, s2);
        b.ret(Some(r));
        let mut f = b.finish().unwrap();
        let res = value_number(&mut f);
        assert_eq!(res.removed, 3); // l2, c2, s2
        assert!(res.congruent(l1, l2));
        assert!(res.congruent(s1, s2));
        abcd_ssa::verify_ssa(&f).unwrap();
    }

    #[test]
    fn does_not_unify_across_non_dominating_blocks() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let zero = b.iconst(0);
        let c = b.compare(CmpOp::Lt, x, zero);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to_block(t);
        let a1 = b.binary(BinOp::Add, x, x);
        b.ret(Some(a1));
        b.switch_to_block(e);
        let a2 = b.binary(BinOp::Add, x, x); // same expr, sibling branch
        b.ret(Some(a2));
        let mut f = b.finish().unwrap();
        let res = value_number(&mut f);
        assert_eq!(res.removed, 0);
        assert!(!res.congruent(a1, a2));
    }

    #[test]
    fn copies_are_propagated() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let c = b.copy(x);
        let one = b.iconst(1);
        let y = b.binary(BinOp::Add, c, one);
        b.ret(Some(y));
        let mut f = b.finish().unwrap();
        let res = value_number(&mut f);
        assert_eq!(res.removed, 1);
        // y's lhs is now x directly
        let abcd_ir::ValueDef::Inst(yid) = f.value_def(y) else {
            panic!()
        };
        match f.inst(yid).kind {
            InstKind::Binary { lhs, .. } => assert_eq!(lhs, x),
            _ => panic!(),
        }
    }

    #[test]
    fn congruent_arrays_respects_dominance() {
        // b := copy a  → a and b congruent; query from a later block.
        let mut bld = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], None);
        let a = bld.param(0);
        let b2 = bld.copy(a);
        let next = bld.new_block();
        bld.jump(next);
        bld.switch_to_block(next);
        bld.ret(None);
        let mut f = bld.finish().unwrap();
        let res = value_number(&mut f);
        let dt = DomTree::compute(&f);
        // b2 was unified into a; congruent set of a contains b2? b2's def
        // is removed, so only the surviving value matters: leader_of(b2)==a.
        assert_eq!(res.leader_of(b2), a);
        let cong = congruent_arrays(&f, &res, &dt, b2, next);
        assert!(cong.contains(&a));
    }
}
