//! Canonical renumbering of functions.
//!
//! After optimization a function's value and block id spaces have holes:
//! deleted instructions leave unreferenced arena slots, and builder scratch
//! blocks may never have been filled. The printed text then carries the
//! gaps (`v7` missing, `bb1` skipped), and — because the IR parser
//! renumbers densely — `parse(print(f))` prints *differently* from `f`.
//!
//! [`canonicalize`] rebuilds the function with values numbered densely in
//! definition order and blocks numbered densely in appearance order
//! (never-filled blocks dropped), exactly the numbering the parser
//! produces. On canonical functions `print` and `parse` are mutual
//! inverses byte-for-byte, which is what makes printed IR usable as a
//! content-addressed cache payload: `print(parse(text)) == text`.

use crate::entities::{Block, Value};
use crate::function::Function;
use crate::inst::{InstKind, PiGuard};
use std::collections::HashMap;

/// Returns `func` rebuilt with dense, parser-identical numbering: values
/// in definition order (parameters first), blocks in appearance order with
/// never-filled blocks removed, instructions re-created in program order.
/// Locals, parameter/return types, and the check-site count are preserved.
///
/// The result is semantically identical to `func` (same CFG, same
/// instruction sequence, same operands up to renaming) and printing it is
/// a fixpoint of `parse` ∘ `print`.
pub fn canonicalize(func: &Function) -> Function {
    let mut out = Function::new(
        func.name().to_string(),
        func.param_types().to_vec(),
        func.ret_type().cloned(),
    );
    for i in 0..func.local_count() {
        out.new_local(func.local_type(crate::Local::new(i)).clone());
    }
    while out.check_site_count() < func.check_site_count() {
        out.new_check_site();
    }

    // Blocks in appearance order, skipping never-filled ones (the printer
    // omits them, and nothing reachable may target them).
    let mut block_map: HashMap<Block, Block> = HashMap::new();
    let mut live_blocks: Vec<Block> = Vec::new();
    for b in func.blocks() {
        let data = func.block(b);
        if data.insts().is_empty() && data.terminator_opt().is_none() {
            continue;
        }
        let nb = if live_blocks.is_empty() {
            out.entry()
        } else {
            out.new_block()
        };
        block_map.insert(b, nb);
        live_blocks.push(b);
    }

    // Pre-scan: assign dense value ids in definition order. Parameters map
    // to themselves; instruction results get ids in program order. The map
    // must be complete before any instruction is rebuilt because phi
    // operands may reference values defined later (loop back-edges).
    let mut value_map: HashMap<Value, Value> = HashMap::new();
    for i in 0..func.param_count() {
        value_map.insert(Value::new(i), Value::new(i));
    }
    let mut next = func.param_count();
    for &b in &live_blocks {
        for &id in func.block(b).insts() {
            if let Some(r) = func.inst(id).result {
                value_map.insert(r, Value::new(next));
                next += 1;
            }
        }
    }

    // Rebuild instructions and terminators with remapped operands.
    for &b in &live_blocks {
        let nb = block_map[&b];
        for &id in func.block(b).insts() {
            let inst = func.inst(id);
            let mut kind = inst.kind.clone();
            kind.map_uses(|v| value_map[&v]);
            remap_blocks(&mut kind, &block_map);
            let ty = inst.result.map(|r| func.value_type(r).clone());
            let nid = out.create_inst(kind, ty);
            out.append_inst(nb, nid);
            // create_inst allocates results in creation order, which is the
            // pre-scan order — the mapping must agree.
            debug_assert_eq!(out.inst(nid).result, inst.result.map(|r| value_map[&r]));
        }
        if let Some(term) = func.block(b).terminator_opt() {
            let mut t = term.clone();
            t.map_uses(|v| value_map[&v]);
            t.map_successors(|s| block_map[&s]);
            out.set_terminator(nb, t);
        }
    }
    debug_assert_eq!(out.value_count(), next);
    out
}

/// Remaps the block references embedded in instruction kinds (φ incoming
/// edges and π branch guards); everything else is block-free.
fn remap_blocks(kind: &mut InstKind, map: &HashMap<Block, Block>) {
    match kind {
        InstKind::Phi { args } => {
            for (b, _) in args.iter_mut() {
                *b = map[b];
            }
        }
        InstKind::Pi {
            guard: PiGuard::Branch { block, .. },
            ..
        } => {
            *block = map[block];
        }
        _ => {}
    }
}

/// Is `func` already in canonical form? (Cheap check: rebuilding and
/// comparing the printed text; used by tests and debug assertions.)
pub fn is_canonical(func: &Function) -> bool {
    canonicalize(func).to_string() == func.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::ValueDef;
    use crate::inst::{BinOp, CheckKind};
    use crate::parse::parse_function_text;
    use crate::types::Type;
    use crate::verify::verify_function;

    /// A function with value holes (removed insts) and a never-filled block.
    fn holey() -> Function {
        let mut b = FunctionBuilder::new("h", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let i = b.iconst(2);
        let dead = b.binary(BinOp::Add, i, i); // will be unlinked
        b.bounds_check(a, i, CheckKind::Upper);
        let x = b.load(a, i);
        let _scratch = b.new_block(); // never filled
        let exit = b.new_block();
        b.jump(exit);
        b.switch_to_block(exit);
        let s = b.binary(BinOp::Add, x, i);
        b.ret(Some(s));
        let mut f = b.finish().unwrap();
        // Unlink the dead add, leaving a hole in the value space.
        let entry = f.entry();
        let dead_id = match f.value_def(dead) {
            ValueDef::Inst(id) => id,
            _ => unreachable!(),
        };
        assert!(f.remove_inst(entry, dead_id));
        f
    }

    #[test]
    fn canonical_print_is_a_parse_fixpoint() {
        let f = holey();
        let canon = canonicalize(&f);
        verify_function(&canon, None).unwrap();
        let text = canon.to_string();
        let reparsed = parse_function_text(&text).unwrap();
        assert_eq!(reparsed.to_string(), text, "print∘parse not a fixpoint");
        assert!(is_canonical(&canon));
        // The original, holey function is *not* canonical.
        assert!(!is_canonical(&f));
    }

    #[test]
    fn canonicalize_is_idempotent_and_preserves_shape() {
        let f = holey();
        let c1 = canonicalize(&f);
        let c2 = canonicalize(&c1);
        assert_eq!(c1.to_string(), c2.to_string());
        assert_eq!(c1.check_site_count(), f.check_site_count());
        assert_eq!(c1.local_count(), f.local_count());
        assert_eq!(c1.count_checks(), f.count_checks());
        // Dense: every value is either a param or a linked instruction.
        assert_eq!(c1.value_count(), f.value_count() - 1); // dead add gone
    }

    #[test]
    fn phis_and_back_edges_survive() {
        let text = "\
func @loop(v0: int[]) -> int {
bb0:
    v1: int = const 0
    jump bb1
bb1:
    v2: int = phi [bb0: v1], [bb2: v4]
    v3: bool = cmp.lt v2, v1
    br v3, bb2, bb3
bb2:
    v4: int = add v2, v2
    jump bb1
bb3:
    ret v2
}
";
        let f = parse_function_text(text).unwrap();
        let canon = canonicalize(&f);
        verify_function(&canon, None).unwrap();
        assert_eq!(canon.to_string(), text.trim_end());
    }
}
