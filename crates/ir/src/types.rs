//! The IR type system: integers, booleans, and (possibly nested) arrays.

use std::fmt;

/// A value type.
///
/// The IR is strongly typed, like the Java bytecode the paper targets:
/// array loads/stores are typed, and bounds checks only apply to array
/// references. Arrays may nest (`int[][]`), which the benchmark kernels
/// (e.g. the DCT-style `mpeg` kernel) use.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// A 64-bit signed integer (the only numeric type).
    Int,
    /// A boolean produced by comparison instructions.
    Bool,
    /// A reference to an array with the given element type.
    Array(Box<Type>),
}

impl Type {
    /// Convenience constructor for an array type.
    ///
    /// ```
    /// use abcd_ir::Type;
    /// assert_eq!(Type::array_of(Type::Int).to_string(), "int[]");
    /// ```
    pub fn array_of(elem: Type) -> Type {
        Type::Array(Box::new(elem))
    }

    /// Returns the element type if `self` is an array type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::Array(e) => Some(e),
            _ => None,
        }
    }

    /// Returns `true` if `self` is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array(_))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Array(e) => write!(f, "{e}[]"),
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nested_array() {
        let t = Type::array_of(Type::array_of(Type::Int));
        assert_eq!(t.to_string(), "int[][]");
        assert_eq!(t.elem().unwrap().to_string(), "int[]");
    }

    #[test]
    fn elem_of_scalar_is_none() {
        assert!(Type::Int.elem().is_none());
        assert!(!Type::Bool.is_array());
        assert!(Type::array_of(Type::Bool).is_array());
    }
}
