//! An ergonomic, type-inferring builder for [`Function`]s.

use crate::entities::{Block, CheckSite, FuncId, Local, Value};
use crate::function::Function;
use crate::inst::{BinOp, CheckKind, CmpOp, InstKind, PiGuard, Terminator, UnOp};
use crate::types::Type;
use crate::verify::{verify_function, VerifyError};

/// Builds a [`Function`] one instruction at a time.
///
/// The builder maintains a *current block*; instruction methods append to it
/// and return the result [`Value`]. Result types are inferred from operands,
/// so misuse (e.g. loading from a non-array) panics immediately at build time
/// rather than verifying later.
///
/// # Example
///
/// ```
/// use abcd_ir::{FunctionBuilder, Type, BinOp, CmpOp};
///
/// // fn add_clamped(a: int, b: int) -> int { let s = a + b; if s < 0 { 0 } else { s } }
/// let mut b = FunctionBuilder::new("add_clamped", vec![Type::Int, Type::Int], Some(Type::Int));
/// let s = b.binary(BinOp::Add, b.param(0), b.param(1));
/// let zero = b.iconst(0);
/// let neg = b.compare(CmpOp::Lt, s, zero);
/// let (t, e) = (b.new_block(), b.new_block());
/// b.branch(neg, t, e);
/// b.switch_to_block(t);
/// b.ret(Some(zero));
/// b.switch_to_block(e);
/// b.ret(Some(s));
/// let f = b.finish().unwrap();
/// assert_eq!(f.block_count(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Block,
}

impl FunctionBuilder {
    /// Starts building a function; the current block is the entry block.
    pub fn new(
        name: impl Into<crate::Symbol>,
        param_types: Vec<Type>,
        ret_type: Option<Type>,
    ) -> Self {
        let func = Function::new(name, param_types, ret_type);
        let current = func.entry();
        FunctionBuilder { func, current }
    }

    /// The value of the `index`-th parameter.
    pub fn param(&self, index: usize) -> Value {
        self.func.param(index)
    }

    /// Creates a new (empty, unterminated) block without switching to it.
    pub fn new_block(&mut self) -> Block {
        self.func.new_block()
    }

    /// Makes `b` the current block.
    pub fn switch_to_block(&mut self, b: Block) {
        self.current = b;
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> Block {
        self.current
    }

    /// Read access to the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Declares a local slot (pre-SSA form).
    pub fn new_local(&mut self, ty: Type) -> Local {
        self.func.new_local(ty)
    }

    fn push(&mut self, kind: InstKind, ty: Option<Type>) -> Option<Value> {
        let id = self.func.create_inst(kind, ty);
        self.func.append_inst(self.current, id);
        self.func.inst(id).result
    }

    fn value_ty(&self, v: Value) -> Type {
        self.func.value_type(v).clone()
    }

    /// Appends an integer constant.
    pub fn iconst(&mut self, value: i64) -> Value {
        self.push(InstKind::Const(value), Some(Type::Int)).unwrap()
    }

    /// Appends a boolean constant.
    pub fn bconst(&mut self, value: bool) -> Value {
        self.push(InstKind::BoolConst(value), Some(Type::Bool))
            .unwrap()
    }

    /// Appends a unary operation.
    ///
    /// # Panics
    ///
    /// Panics if the operand type does not match the operator.
    pub fn unary(&mut self, op: UnOp, arg: Value) -> Value {
        let ty = match op {
            UnOp::Neg => Type::Int,
            UnOp::Not => Type::Bool,
        };
        assert_eq!(self.value_ty(arg), ty, "unary operand type mismatch");
        self.push(InstKind::Unary { op, arg }, Some(ty)).unwrap()
    }

    /// Appends a binary arithmetic operation (operands must be `int`).
    pub fn binary(&mut self, op: BinOp, lhs: Value, rhs: Value) -> Value {
        assert_eq!(self.value_ty(lhs), Type::Int, "binary lhs must be int");
        assert_eq!(self.value_ty(rhs), Type::Int, "binary rhs must be int");
        self.push(InstKind::Binary { op, lhs, rhs }, Some(Type::Int))
            .unwrap()
    }

    /// Appends a comparison (operands must be `int`).
    pub fn compare(&mut self, op: CmpOp, lhs: Value, rhs: Value) -> Value {
        assert_eq!(self.value_ty(lhs), Type::Int, "compare lhs must be int");
        assert_eq!(self.value_ty(rhs), Type::Int, "compare rhs must be int");
        self.push(InstKind::Compare { op, lhs, rhs }, Some(Type::Bool))
            .unwrap()
    }

    /// Appends an array allocation.
    pub fn new_array(&mut self, elem: Type, len: Value) -> Value {
        assert_eq!(self.value_ty(len), Type::Int, "array length must be int");
        let ty = Type::array_of(elem.clone());
        self.push(InstKind::NewArray { elem, len }, Some(ty))
            .unwrap()
    }

    /// Appends an array-length read (constraint class C1).
    pub fn array_len(&mut self, array: Value) -> Value {
        assert!(self.value_ty(array).is_array(), "array_len of non-array");
        self.push(InstKind::ArrayLen { array }, Some(Type::Int))
            .unwrap()
    }

    /// Appends an (unchecked) array load.
    pub fn load(&mut self, array: Value, index: Value) -> Value {
        let elem = self
            .value_ty(array)
            .elem()
            .expect("load from non-array")
            .clone();
        assert_eq!(self.value_ty(index), Type::Int, "index must be int");
        self.push(InstKind::Load { array, index }, Some(elem))
            .unwrap()
    }

    /// Appends an (unchecked) array store.
    pub fn store(&mut self, array: Value, index: Value, value: Value) {
        let elem = self
            .value_ty(array)
            .elem()
            .expect("store to non-array")
            .clone();
        assert_eq!(self.value_ty(index), Type::Int, "index must be int");
        assert_eq!(self.value_ty(value), elem, "stored value type mismatch");
        self.push(
            InstKind::Store {
                array,
                index,
                value,
            },
            None,
        );
    }

    /// Appends a bounds check with a freshly allocated site, returning the
    /// site id.
    pub fn bounds_check(&mut self, array: Value, index: Value, kind: CheckKind) -> CheckSite {
        assert!(self.value_ty(array).is_array(), "check of non-array");
        assert_eq!(self.value_ty(index), Type::Int, "checked index must be int");
        let site = self.func.new_check_site();
        self.push(
            InstKind::BoundsCheck {
                site,
                array,
                index,
                kind,
            },
            None,
        );
        site
    }

    /// Appends a φ-instruction with the given `(predecessor, value)` args.
    /// All argument values must share one type, which becomes the result type.
    pub fn phi(&mut self, args: Vec<(Block, Value)>) -> Value {
        let ty = self.value_ty(args.first().expect("phi needs arguments").1);
        for (_, v) in &args {
            assert_eq!(self.value_ty(*v), ty, "phi argument type mismatch");
        }
        self.push(InstKind::Phi { args }, Some(ty)).unwrap()
    }

    /// Appends a π-assignment renaming `input` under `guard`.
    pub fn pi(&mut self, input: Value, guard: PiGuard) -> Value {
        let ty = self.value_ty(input);
        self.push(InstKind::Pi { input, guard }, Some(ty)).unwrap()
    }

    /// Appends a copy.
    pub fn copy(&mut self, arg: Value) -> Value {
        let ty = self.value_ty(arg);
        self.push(InstKind::Copy { arg }, Some(ty)).unwrap()
    }

    /// Appends a direct call. `ret_ty` must match the callee's return type
    /// (the module-level verifier checks this).
    pub fn call(&mut self, func: FuncId, args: Vec<Value>, ret_ty: Option<Type>) -> Option<Value> {
        self.push(InstKind::Call { func, args }, ret_ty)
    }

    /// Appends an output (print) of `arg`.
    pub fn output(&mut self, arg: Value) {
        self.push(InstKind::Output { arg }, None);
    }

    /// Appends a read of local `l`.
    pub fn get_local(&mut self, l: Local) -> Value {
        let ty = self.func.local_type(l).clone();
        self.push(InstKind::GetLocal { local: l }, Some(ty))
            .unwrap()
    }

    /// Appends a write of `value` to local `l`.
    pub fn set_local(&mut self, l: Local, value: Value) {
        assert_eq!(
            self.value_ty(value),
            self.func.local_type(l).clone(),
            "set_local type mismatch"
        );
        self.push(InstKind::SetLocal { local: l, value }, None);
    }

    /// Terminates the current block with an unconditional jump.
    pub fn jump(&mut self, dst: Block) {
        self.func
            .set_terminator(self.current, Terminator::Jump(dst));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(&mut self, cond: Value, then_dst: Block, else_dst: Block) {
        assert_eq!(self.value_ty(cond), Type::Bool, "branch condition not bool");
        self.func.set_terminator(
            self.current,
            Terminator::Branch {
                cond,
                then_dst,
                else_dst,
            },
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.func
            .set_terminator(self.current, Terminator::Return(value));
    }

    /// Finishes construction, verifying the function.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] if the function is malformed (e.g. an
    /// unterminated reachable block).
    pub fn finish(self) -> Result<Function, VerifyError> {
        verify_function(&self.func, None)?;
        Ok(self.func)
    }

    /// Finishes construction without verification (for tests that build
    /// intentionally malformed functions).
    pub fn finish_unverified(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_checked_array_sum_loop() {
        // fn sum(a: int[]) -> int
        let mut b = FunctionBuilder::new("sum", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let acc = b.new_local(Type::Int);
        let i = b.new_local(Type::Int);
        let zero = b.iconst(0);
        b.set_local(acc, zero);
        b.set_local(i, zero);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);

        b.switch_to_block(head);
        let iv = b.get_local(i);
        let len = b.array_len(a);
        let c = b.compare(CmpOp::Lt, iv, len);
        b.branch(c, body, exit);

        b.switch_to_block(body);
        let iv2 = b.get_local(i);
        b.bounds_check(a, iv2, CheckKind::Lower);
        b.bounds_check(a, iv2, CheckKind::Upper);
        let elt = b.load(a, iv2);
        let acc_v = b.get_local(acc);
        let sum = b.binary(BinOp::Add, acc_v, elt);
        b.set_local(acc, sum);
        let one = b.iconst(1);
        let inc = b.binary(BinOp::Add, iv2, one);
        b.set_local(i, inc);
        b.jump(head);

        b.switch_to_block(exit);
        let out = b.get_local(acc);
        b.ret(Some(out));

        let f = b.finish().expect("verifies");
        assert_eq!(f.check_site_count(), 2);
        assert_eq!(f.count_checks(), (2, 0, 0));
    }

    #[test]
    #[should_panic(expected = "load from non-array")]
    fn load_from_int_panics() {
        let mut b = FunctionBuilder::new("bad", vec![Type::Int], None);
        let p = b.param(0);
        let _ = b.load(p, p);
    }

    #[test]
    #[should_panic(expected = "branch condition not bool")]
    fn branch_on_int_panics() {
        let mut b = FunctionBuilder::new("bad", vec![Type::Int], None);
        let p = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        b.branch(p, t, e);
    }

    #[test]
    fn phi_infers_type() {
        let mut b = FunctionBuilder::new("p", vec![Type::Int, Type::Int], Some(Type::Int));
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        let x = b.param(0);
        let y = b.param(1);
        let c = b.compare(CmpOp::Lt, x, y);
        b.branch(c, t, e);
        b.switch_to_block(t);
        b.jump(j);
        b.switch_to_block(e);
        b.jump(j);
        b.switch_to_block(j);
        let m = b.phi(vec![(t, x), (e, y)]);
        b.ret(Some(m));
        let f = b.finish().unwrap();
        assert_eq!(*f.value_type(m), Type::Int);
    }
}
