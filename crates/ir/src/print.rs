//! Textual dumping of functions and modules (for docs, tests, debugging).

use crate::function::Function;
use crate::inst::{InstKind, PiGuard, Terminator};
use crate::module::Module;
use std::fmt;

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func @{}(", self.name())?;
        for (i, ty) in self.param_types().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "v{i}: {ty}")?;
        }
        write!(f, ")")?;
        if let Some(rt) = self.ret_type() {
            write!(f, " -> {rt}")?;
        }
        writeln!(f, " {{")?;
        if self.local_count() > 0 {
            write!(f, "  locals ")?;
            for i in 0..self.local_count() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                let l = crate::Local::new(i);
                write!(f, "{l}: {}", self.local_type(l))?;
            }
            writeln!(f)?;
        }
        for b in self.blocks() {
            let data = self.block(b);
            if data.insts().is_empty() && data.terminator_opt().is_none() {
                continue; // skip never-filled blocks
            }
            writeln!(f, "{b}:")?;
            for &id in data.insts() {
                let inst = self.inst(id);
                write!(f, "    ")?;
                if let Some(r) = inst.result {
                    write!(f, "{r}: {} = ", self.value_type(r))?;
                }
                write_kind(f, &inst.kind)?;
                writeln!(f)?;
            }
            if let Some(t) = data.terminator_opt() {
                write!(f, "    ")?;
                match t {
                    Terminator::Jump(d) => writeln!(f, "jump {d}")?,
                    Terminator::Branch {
                        cond,
                        then_dst,
                        else_dst,
                    } => writeln!(f, "br {cond}, {then_dst}, {else_dst}")?,
                    Terminator::Return(None) => writeln!(f, "ret")?,
                    Terminator::Return(Some(v)) => writeln!(f, "ret {v}")?,
                }
            }
        }
        write!(f, "}}")
    }
}

fn write_kind(f: &mut fmt::Formatter<'_>, kind: &InstKind) -> fmt::Result {
    match kind {
        InstKind::Const(c) => write!(f, "const {c}"),
        InstKind::BoolConst(c) => write!(f, "bconst {c}"),
        InstKind::Unary { op, arg } => write!(f, "{op:?} {arg}"),
        InstKind::Binary { op, lhs, rhs } => write!(f, "{} {lhs}, {rhs}", op.mnemonic()),
        InstKind::Compare { op, lhs, rhs } => write!(f, "cmp.{} {lhs}, {rhs}", op.mnemonic()),
        InstKind::NewArray { elem, len } => write!(f, "newarray {elem}, {len}"),
        InstKind::ArrayLen { array } => write!(f, "arraylen {array}"),
        InstKind::Load { array, index } => write!(f, "load {array}[{index}]"),
        InstKind::Store {
            array,
            index,
            value,
        } => write!(f, "store {array}[{index}] = {value}"),
        InstKind::BoundsCheck {
            site,
            array,
            index,
            kind,
        } => write!(f, "check.{} {array}[{index}] @{site}", kind.mnemonic()),
        InstKind::SpecCheck {
            site,
            array,
            index,
            kind,
        } => write!(f, "spec_check.{} {array}[{index}] @{site}", kind.mnemonic()),
        InstKind::TrapIfFlagged {
            site,
            array,
            index,
            kind,
        } => write!(
            f,
            "trap_if_flagged.{} {array}[{index}] @{site}",
            kind.mnemonic()
        ),
        InstKind::Phi { args } => {
            write!(f, "phi ")?;
            for (i, (b, v)) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "[{b}: {v}]")?;
            }
            Ok(())
        }
        InstKind::Pi { input, guard } => {
            write!(f, "pi {input}, ")?;
            match guard {
                PiGuard::Branch { block, taken } => write!(
                    f,
                    "[branch {block} {}]",
                    if *taken { "taken" } else { "fallthrough" }
                ),
                PiGuard::Check { site, array, kind } => {
                    write!(f, "[checked.{} {array} @{site}]", kind.mnemonic())
                }
            }
        }
        InstKind::Copy { arg } => write!(f, "copy {arg}"),
        InstKind::Call { func, args } => {
            write!(f, "call {func}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")
        }
        InstKind::Output { arg } => write!(f, "output {arg}"),
        InstKind::GetLocal { local } => write!(f, "get {local}"),
        InstKind::SetLocal { local, value } => write!(f, "set {local} = {value}"),
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (_, func)) in self.functions().enumerate() {
            if i > 0 {
                writeln!(f)?;
                writeln!(f)?;
            }
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::inst::{CheckKind, CmpOp};
    use crate::types::Type;

    #[test]
    fn display_contains_checks_and_terminators() {
        let mut b = FunctionBuilder::new("show", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let i = b.iconst(3);
        b.bounds_check(a, i, CheckKind::Upper);
        let x = b.load(a, i);
        let c = b.compare(CmpOp::Lt, x, i);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to_block(t);
        b.ret(Some(x));
        b.switch_to_block(e);
        b.ret(Some(i));
        let f = b.finish().unwrap();
        let text = f.to_string();
        assert!(text.contains("check.upper v0[v1] @ck0"), "{text}");
        assert!(text.contains("br v3, bb1, bb2"), "{text}");
        assert!(text.contains("-> int"), "{text}");
    }
}
