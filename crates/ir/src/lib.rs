//! Intermediate representation for the ABCD bounds-check eliminator.
//!
//! This crate defines a small, conventional compiler IR: a control-flow graph
//! of basic blocks holding three-address instructions. It is modeled on the
//! high-level IR of the Jalapeño optimizing compiler, which is the substrate
//! the ABCD paper (Bodík, Gupta, Sarkar; PLDI 2000) operates on. The salient
//! features ABCD needs are all present:
//!
//! * **explicit array bounds checks** ([`InstKind::BoundsCheck`]) with stable
//!   site identifiers ([`CheckSite`]) so dynamic executions can be attributed
//!   to static checks,
//! * **φ-instructions** for SSA form and **π-instructions** for the paper's
//!   *extended SSA* (e-SSA) form ([`InstKind::Pi`], [`PiGuard`]),
//! * a **pre-SSA locals layer** ([`InstKind::GetLocal`]/[`InstKind::SetLocal`])
//!   that the frontend targets and that `abcd-ssa` promotes to SSA values,
//!   mirroring how real compilers run mem2reg before SSA-based optimizations,
//! * the **compare/trap split** used by ABCD's partial-redundancy
//!   transformation ([`InstKind::SpecCheck`], [`InstKind::TrapIfFlagged`]).
//!
//! The IR is deliberately executable: the sibling `abcd-vm` crate interprets
//! every form (locals, SSA, e-SSA, optimized), which lets the test suite
//! differentially validate each transformation.
//!
//! # Example
//!
//! ```
//! use abcd_ir::{FunctionBuilder, Module, Type};
//!
//! let mut module = Module::new();
//! let mut b = FunctionBuilder::new("len", vec![Type::array_of(Type::Int)], Some(Type::Int));
//! let arr = b.param(0);
//! let len = b.array_len(arr);
//! b.ret(Some(len));
//! let func = b.finish().expect("well-formed function");
//! module.add_function(func);
//! assert_eq!(module.functions().count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod canon;
mod cfg;
mod entities;
mod function;
mod inst;
mod intern;
mod module;
mod parse;
mod print;
mod types;
mod verify;

pub use builder::FunctionBuilder;
pub use canon::{canonicalize, is_canonical};
pub use cfg::{postorder, predecessors, reverse_postorder, successors};
pub use entities::{Block, CheckSite, FuncId, InstId, Local, Value};
pub use function::{BlockData, Function, ValueDef};
pub use inst::{BinOp, CheckKind, CmpOp, Inst, InstKind, PiGuard, Terminator, UnOp};
pub use intern::Symbol;
pub use module::Module;
pub use parse::{parse_function_text, parse_module, ParseIrError};
pub use types::Type;
pub use verify::{verify_function, verify_module, VerifyError};
