//! Structural and type verification of functions and modules.
//!
//! The verifier checks everything that does not require dominance
//! information: block termination, operand existence, operand/result typing,
//! φ-argument/predecessor agreement, and call signatures. SSA dominance
//! ("every use is dominated by its definition") is checked by
//! `abcd_ssa::verify_ssa`, which owns the dominator tree.

use crate::cfg::{postorder, predecessors};
use crate::entities::{Block, InstId, Value};
use crate::function::Function;
use crate::inst::{BinOp, InstKind, Terminator, UnOp};
use crate::module::Module;
use crate::types::Type;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// A verification failure.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyError {
    /// A reachable block has no terminator.
    UnterminatedBlock(Block),
    /// A terminator or φ references a block that does not exist.
    BadBlockRef(Block),
    /// An instruction references a value that does not exist.
    BadValueRef(InstId),
    /// A terminator references a value that does not exist.
    BadTerminatorValueRef(Block),
    /// An operand has the wrong type.
    TypeMismatch {
        /// Offending instruction.
        inst: InstId,
        /// Human-readable explanation.
        detail: String,
    },
    /// A φ-instruction's predecessors disagree with the CFG.
    PhiPredecessorMismatch(InstId),
    /// A φ appears after a non-φ instruction in its block.
    PhiNotAtBlockStart(InstId),
    /// An instruction's result presence disagrees with its kind.
    BadResult(InstId),
    /// A local slot reference is out of range.
    BadLocalRef(InstId),
    /// A call's arguments or return type disagree with the callee signature.
    BadCall {
        /// Offending call instruction.
        inst: InstId,
        /// Human-readable explanation.
        detail: String,
    },
    /// A call references a function id that does not exist in the module.
    BadFuncRef(InstId),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::UnterminatedBlock(b) => write!(f, "reachable block {b} not terminated"),
            VerifyError::BadBlockRef(b) => write!(f, "reference to nonexistent block {b}"),
            VerifyError::BadValueRef(i) => write!(f, "{i} references a nonexistent value"),
            VerifyError::BadTerminatorValueRef(b) => {
                write!(f, "the terminator of {b} references a nonexistent value")
            }
            VerifyError::TypeMismatch { inst, detail } => {
                write!(f, "type mismatch at {inst}: {detail}")
            }
            VerifyError::PhiPredecessorMismatch(i) => {
                write!(f, "phi {i} arguments disagree with CFG predecessors")
            }
            VerifyError::PhiNotAtBlockStart(i) => write!(f, "phi {i} not at block start"),
            VerifyError::BadResult(i) => write!(f, "{i} result presence disagrees with its kind"),
            VerifyError::BadLocalRef(i) => write!(f, "{i} references a nonexistent local"),
            VerifyError::BadCall { inst, detail } => write!(f, "bad call at {inst}: {detail}"),
            VerifyError::BadFuncRef(i) => write!(f, "{i} calls a nonexistent function"),
        }
    }
}

impl Error for VerifyError {}

fn expect_ty(
    func: &Function,
    inst: InstId,
    v: Value,
    want: &Type,
    what: &str,
) -> Result<(), VerifyError> {
    if func.value_type(v) != want {
        return Err(VerifyError::TypeMismatch {
            inst,
            detail: format!("{what} is {}, expected {want}", func.value_type(v)),
        });
    }
    Ok(())
}

fn expect_array(func: &Function, inst: InstId, v: Value) -> Result<Type, VerifyError> {
    match func.value_type(v).elem() {
        Some(e) => Ok(e.clone()),
        None => Err(VerifyError::TypeMismatch {
            inst,
            detail: format!("expected array, found {}", func.value_type(v)),
        }),
    }
}

/// Verifies a single function.
///
/// If `module` is provided, call instructions are checked against callee
/// signatures; otherwise calls are only structurally checked.
///
/// # Errors
///
/// Returns the first [`VerifyError`] encountered.
pub fn verify_function(func: &Function, module: Option<&Module>) -> Result<(), VerifyError> {
    let block_count = func.block_count();
    let value_count = func.value_count();
    let preds = predecessors(func);
    let reachable: BTreeSet<Block> = postorder(func).into_iter().collect();

    for b in func.blocks() {
        let data = func.block(b);
        if reachable.contains(&b) && data.terminator_opt().is_none() {
            return Err(VerifyError::UnterminatedBlock(b));
        }

        // Block structure: φs form a prefix.
        let mut seen_non_phi = false;
        for &id in data.insts() {
            let inst = func.inst(id);
            if matches!(inst.kind, InstKind::Phi { .. }) {
                if seen_non_phi {
                    return Err(VerifyError::PhiNotAtBlockStart(id));
                }
            } else {
                seen_non_phi = true;
            }

            // Every used value exists.
            let mut bad = false;
            inst.kind.for_each_use(|v| bad |= v.index() >= value_count);
            if bad {
                return Err(VerifyError::BadValueRef(id));
            }

            verify_inst(func, module, b, id, &preds)?;
        }

        if let Some(term) = data.terminator_opt() {
            let mut bad_val = false;
            term.for_each_use(|v| bad_val |= v.index() >= value_count);
            if bad_val {
                return Err(VerifyError::BadTerminatorValueRef(b));
            }
            match term {
                Terminator::Jump(d) => {
                    if d.index() >= block_count {
                        return Err(VerifyError::BadBlockRef(*d));
                    }
                }
                Terminator::Branch {
                    cond,
                    then_dst,
                    else_dst,
                } => {
                    for d in [then_dst, else_dst] {
                        if d.index() >= block_count {
                            return Err(VerifyError::BadBlockRef(*d));
                        }
                    }
                    if func.value_type(*cond) != &Type::Bool {
                        return Err(VerifyError::TypeMismatch {
                            inst: InstId::new(0),
                            detail: format!(
                                "branch condition in {b} is {}, expected bool",
                                func.value_type(*cond)
                            ),
                        });
                    }
                }
                Terminator::Return(v) => match (v, func.ret_type()) {
                    (None, None) => {}
                    (Some(v), Some(rt)) => {
                        if func.value_type(*v) != rt {
                            return Err(VerifyError::TypeMismatch {
                                inst: InstId::new(0),
                                detail: format!(
                                    "return value in {b} is {}, expected {rt}",
                                    func.value_type(*v)
                                ),
                            });
                        }
                    }
                    _ => {
                        return Err(VerifyError::TypeMismatch {
                            inst: InstId::new(0),
                            detail: format!("return arity mismatch in {b}"),
                        })
                    }
                },
            }
        }
    }
    Ok(())
}

fn verify_inst(
    func: &Function,
    module: Option<&Module>,
    block: Block,
    id: InstId,
    preds: &[Vec<Block>],
) -> Result<(), VerifyError> {
    let inst = func.inst(id);
    let has_result = inst.result.is_some();
    let wants_result = !matches!(
        inst.kind,
        InstKind::Store { .. }
            | InstKind::BoundsCheck { .. }
            | InstKind::SpecCheck { .. }
            | InstKind::TrapIfFlagged { .. }
            | InstKind::Output { .. }
            | InstKind::SetLocal { .. }
            | InstKind::Call { .. } // calls may be void or valued
    );
    if wants_result != has_result && !matches!(inst.kind, InstKind::Call { .. }) {
        return Err(VerifyError::BadResult(id));
    }

    let result_ty = |want: Type| -> Result<(), VerifyError> {
        match inst.result {
            Some(r) if *func.value_type(r) == want => Ok(()),
            _ => Err(VerifyError::BadResult(id)),
        }
    };

    match &inst.kind {
        InstKind::Const(_) => result_ty(Type::Int)?,
        InstKind::BoolConst(_) => result_ty(Type::Bool)?,
        InstKind::Unary { op, arg } => {
            let ty = match op {
                UnOp::Neg => Type::Int,
                UnOp::Not => Type::Bool,
            };
            expect_ty(func, id, *arg, &ty, "unary operand")?;
            result_ty(ty)?;
        }
        InstKind::Binary { op: _, lhs, rhs } => {
            // All BinOps are int → int → int.
            let _ = BinOp::Add;
            expect_ty(func, id, *lhs, &Type::Int, "binary lhs")?;
            expect_ty(func, id, *rhs, &Type::Int, "binary rhs")?;
            result_ty(Type::Int)?;
        }
        InstKind::Compare { lhs, rhs, .. } => {
            expect_ty(func, id, *lhs, &Type::Int, "compare lhs")?;
            expect_ty(func, id, *rhs, &Type::Int, "compare rhs")?;
            result_ty(Type::Bool)?;
        }
        InstKind::NewArray { elem, len } => {
            expect_ty(func, id, *len, &Type::Int, "array length")?;
            result_ty(Type::array_of(elem.clone()))?;
        }
        InstKind::ArrayLen { array } => {
            expect_array(func, id, *array)?;
            result_ty(Type::Int)?;
        }
        InstKind::Load { array, index } => {
            let elem = expect_array(func, id, *array)?;
            expect_ty(func, id, *index, &Type::Int, "load index")?;
            result_ty(elem)?;
        }
        InstKind::Store {
            array,
            index,
            value,
        } => {
            let elem = expect_array(func, id, *array)?;
            expect_ty(func, id, *index, &Type::Int, "store index")?;
            expect_ty(func, id, *value, &elem, "stored value")?;
        }
        InstKind::BoundsCheck { array, index, .. }
        | InstKind::SpecCheck { array, index, .. }
        | InstKind::TrapIfFlagged { array, index, .. } => {
            expect_array(func, id, *array)?;
            expect_ty(func, id, *index, &Type::Int, "checked index")?;
        }
        InstKind::Phi { args } => {
            let r = inst.result.ok_or(VerifyError::BadResult(id))?;
            let want = func.value_type(r).clone();
            for (p, v) in args {
                if p.index() >= func.block_count() {
                    return Err(VerifyError::BadBlockRef(*p));
                }
                expect_ty(func, id, *v, &want, "phi argument")?;
            }
            // φ arguments must cover exactly the CFG predecessors (as a
            // multiset; duplicate predecessor blocks require duplicate args).
            let mut phi_preds: Vec<Block> = args.iter().map(|(p, _)| *p).collect();
            let mut cfg_preds = preds[block.index()].clone();
            phi_preds.sort();
            cfg_preds.sort();
            if phi_preds != cfg_preds {
                return Err(VerifyError::PhiPredecessorMismatch(id));
            }
        }
        InstKind::Pi { input, .. } => {
            let r = inst.result.ok_or(VerifyError::BadResult(id))?;
            if func.value_type(r) != func.value_type(*input) {
                return Err(VerifyError::BadResult(id));
            }
        }
        InstKind::Copy { arg } => {
            let r = inst.result.ok_or(VerifyError::BadResult(id))?;
            if func.value_type(r) != func.value_type(*arg) {
                return Err(VerifyError::BadResult(id));
            }
        }
        InstKind::Call { func: callee, args } => {
            if let Some(m) = module {
                if callee.index() >= m.function_count() {
                    return Err(VerifyError::BadFuncRef(id));
                }
                let sig = m.function(*callee);
                if sig.param_count() != args.len() {
                    return Err(VerifyError::BadCall {
                        inst: id,
                        detail: format!(
                            "expected {} arguments, found {}",
                            sig.param_count(),
                            args.len()
                        ),
                    });
                }
                for (a, want) in args.iter().zip(sig.param_types()) {
                    expect_ty(func, id, *a, want, "call argument")?;
                }
                match (inst.result, sig.ret_type()) {
                    (None, _) => {} // discarding a result is allowed
                    (Some(r), Some(rt)) => {
                        if func.value_type(r) != rt {
                            return Err(VerifyError::BadCall {
                                inst: id,
                                detail: "result type disagrees with callee".into(),
                            });
                        }
                    }
                    (Some(_), None) => {
                        return Err(VerifyError::BadCall {
                            inst: id,
                            detail: "valued call to void function".into(),
                        })
                    }
                }
            }
        }
        InstKind::Output { arg } => {
            expect_ty(func, id, *arg, &Type::Int, "output value")?;
        }
        InstKind::GetLocal { local } => {
            if local.index() >= func.local_count() {
                return Err(VerifyError::BadLocalRef(id));
            }
            result_ty(func.local_type(*local).clone())?;
        }
        InstKind::SetLocal { local, value } => {
            if local.index() >= func.local_count() {
                return Err(VerifyError::BadLocalRef(id));
            }
            let want = func.local_type(*local).clone();
            expect_ty(func, id, *value, &want, "set_local value")?;
        }
    }
    Ok(())
}

/// Verifies every function in a module (with cross-function call checking).
///
/// # Errors
///
/// Returns the first failure together with the offending function's name.
pub fn verify_module(module: &Module) -> Result<(), (String, VerifyError)> {
    for (_, f) in module.functions() {
        verify_function(f, Some(module)).map_err(|e| (f.name().to_string(), e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;

    #[test]
    fn unterminated_reachable_block_rejected() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let dead_end = b.new_block();
        b.jump(dead_end);
        let f = b.finish_unverified();
        assert_eq!(
            verify_function(&f, None),
            Err(VerifyError::UnterminatedBlock(dead_end))
        );
    }

    #[test]
    fn unterminated_unreachable_block_allowed() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let _orphan = b.new_block();
        let f = b.finish_unverified();
        assert_eq!(verify_function(&f, None), Ok(()));
    }

    #[test]
    fn phi_predecessor_mismatch_rejected() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let next = b.new_block();
        b.jump(next);
        b.switch_to_block(next);
        // φ claims a predecessor that is not one.
        let bogus = b.new_block();
        let m = b.phi(vec![(bogus, x)]);
        b.ret(Some(m));
        b.switch_to_block(bogus);
        b.ret(Some(x));
        let f = b.finish_unverified();
        assert!(matches!(
            verify_function(&f, None),
            Err(VerifyError::PhiPredecessorMismatch(_))
        ));
    }

    #[test]
    fn call_arity_checked_against_module() {
        let mut m = Module::new();
        let callee = {
            let mut b = FunctionBuilder::new("callee", vec![Type::Int], Some(Type::Int));
            let p = b.param(0);
            b.ret(Some(p));
            b.finish().unwrap()
        };
        let callee_id = m.add_function(callee);
        let caller = {
            let mut b = FunctionBuilder::new("caller", vec![], Some(Type::Int));
            let r = b.call(callee_id, vec![], Some(Type::Int)).unwrap();
            b.ret(Some(r));
            b.finish().unwrap() // structurally fine without module context
        };
        m.add_function(caller);
        let err = verify_module(&m).unwrap_err();
        assert_eq!(err.0, "caller");
        assert!(matches!(err.1, VerifyError::BadCall { .. }));
    }

    #[test]
    fn well_formed_diamond_verifies() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int, Type::Int], Some(Type::Int));
        let x = b.param(0);
        let y = b.param(1);
        let c = b.compare(CmpOp::Le, x, y);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to_block(t);
        b.jump(j);
        b.switch_to_block(e);
        b.jump(j);
        b.switch_to_block(j);
        let m = b.phi(vec![(t, x), (e, y)]);
        b.ret(Some(m));
        assert!(b.finish().is_ok());
    }

    #[test]
    fn phi_after_non_phi_rejected() {
        let mut b = FunctionBuilder::new("f", vec![Type::Int], Some(Type::Int));
        let x = b.param(0);
        let next = b.new_block();
        b.jump(next);
        b.switch_to_block(next);
        let c = b.copy(x);
        let m = b.phi(vec![(b.func().entry(), x)]);
        let _ = c;
        b.ret(Some(m));
        let f = b.finish_unverified();
        assert!(matches!(
            verify_function(&f, None),
            Err(VerifyError::PhiNotAtBlockStart(_))
        ));
    }
}
