//! Modules: collections of functions with name-based lookup.

use crate::entities::FuncId;
use crate::function::Function;

/// A compilation unit: an ordered collection of functions.
///
/// Call instructions reference functions by [`FuncId`]; ids are assigned in
/// insertion order. The first function named `main` (or the one passed to the
/// VM) acts as the entry point by convention.
#[derive(Clone, Debug, Default)]
pub struct Module {
    functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        let id = FuncId::new(self.functions.len());
        self.functions.push(f);
        id
    }

    /// The function with the given id.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to the function with the given id.
    pub fn function_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Iterates over `(id, function)` pairs in insertion order.
    pub fn functions(&self) -> impl ExactSizeIterator<Item = (FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Looks a function up by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name() == name)
            .map(FuncId::new)
    }

    /// Iterates over `(id, function)` pairs with mutable access, in
    /// insertion order. The borrows are disjoint, so callers may hand the
    /// functions to worker threads (e.g. the parallel optimizer driver).
    pub fn functions_mut(&mut self) -> impl ExactSizeIterator<Item = (FuncId, &mut Function)> {
        self.functions
            .iter_mut()
            .enumerate()
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Applies `f` to every function in place.
    pub fn for_each_function_mut(&mut self, mut f: impl FnMut(FuncId, &mut Function)) {
        for (i, func) in self.functions.iter_mut().enumerate() {
            f(FuncId::new(i), func);
        }
    }

    /// Replaces the function behind `id` wholesale, keeping the id (and so
    /// every call instruction referencing it) valid. Used by transformations
    /// that substitute a dispatcher for the original body (e.g. function
    /// versioning).
    pub fn replace_function(&mut self, id: FuncId, f: Function) -> Function {
        std::mem::replace(&mut self.functions[id.index()], f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new();
        let a = m.add_function(Function::new("a", vec![], None));
        let b = m.add_function(Function::new("b", vec![Type::Int], Some(Type::Int)));
        assert_eq!(m.function_by_name("a"), Some(a));
        assert_eq!(m.function_by_name("b"), Some(b));
        assert_eq!(m.function_by_name("c"), None);
        assert_eq!(m.function_count(), 2);
        assert_eq!(m.function(b).param_count(), 1);
    }
}
