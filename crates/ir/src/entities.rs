//! Index newtypes naming the entities of a [`Function`](crate::Function).
//!
//! All entities are dense `u32` indices into per-function (or per-module)
//! arenas. The newtypes keep the index spaces statically distinct
//! (C-NEWTYPE).

use std::fmt;

macro_rules! entity {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an entity reference from a raw index.
            pub fn new(index: usize) -> Self {
                $name(u32::try_from(index).expect("entity index overflow"))
            }

            /// Returns the raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

entity! {
    /// A basic block within a function.
    Block, "bb"
}

entity! {
    /// An SSA value: either a function parameter or an instruction result.
    Value, "v"
}

entity! {
    /// An instruction within a function.
    InstId, "inst"
}

entity! {
    /// A mutable local variable slot (pre-SSA form only).
    Local, "loc"
}

entity! {
    /// A function within a module.
    FuncId, "fn"
}

entity! {
    /// A stable identifier for a static bounds-check site.
    ///
    /// Sites survive optimization: when ABCD hoists a check, the inserted
    /// [`SpecCheck`](crate::InstKind::SpecCheck) and the residual
    /// [`TrapIfFlagged`](crate::InstKind::TrapIfFlagged) carry the site of the
    /// original check, which is how the VM attributes dynamic counts and how
    /// the paper's Figure 6 percentages are computed.
    CheckSite, "ck"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_roundtrip() {
        let b = Block::new(7);
        assert_eq!(b.index(), 7);
        assert_eq!(b.to_string(), "bb7");
        assert_eq!(format!("{b:?}"), "bb7");
    }

    #[test]
    fn entity_ordering_follows_index() {
        assert!(Value::new(1) < Value::new(2));
        assert_eq!(Value::new(3), Value::new(3));
    }

    #[test]
    #[should_panic(expected = "entity index overflow")]
    fn entity_overflow_panics() {
        let _ = Block::new(usize::MAX);
    }
}
