//! A parser for the textual IR format produced by the `Display` impls —
//! the inverse of `print.rs`.
//!
//! Round-tripping (`parse(func.to_string())`) is guaranteed by property
//! tests; the format is handy for writing IR-level tests and for pasting
//! optimizer dumps back into a reproducible harness.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! func @name(v0: int[], v1: int) -> int {
//!   locals loc0: int, loc1: int[][]
//! bb0:
//!     v2: int = const 3
//!     v3: int = add v2, v2
//!     check.upper v0[v3] @ck0
//!     v4: int = pi v3, [checked.upper v0 @ck0]
//!     br v5, bb1, bb2
//! ...
//! }
//! ```
//!
//! Value names in the text are arbitrary (`v17` may appear before `v9`);
//! the parser renumbers them densely in definition order.

use crate::entities::{Block, CheckSite, FuncId, Local, Value};
use crate::function::Function;
use crate::inst::{BinOp, CheckKind, CmpOp, InstKind, PiGuard, Terminator, UnOp};
use crate::module::Module;
use crate::types::Type;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A failure while parsing textual IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseIrError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseIrError {}

/// Parses a whole module (one or more `func` definitions).
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse_module(text: &str) -> Result<Module, ParseIrError> {
    let mut module = Module::new();
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim_end()))
        .collect();
    let mut i = 0;
    while i < lines.len() {
        let (_, l) = lines[i];
        if l.trim().is_empty() {
            i += 1;
            continue;
        }
        let (func, consumed) = parse_function(&lines[i..])?;
        module.add_function(func);
        i += consumed;
    }
    Ok(module)
}

/// Parses a single function (convenience wrapper).
///
/// # Errors
///
/// Returns the first syntax error.
pub fn parse_function_text(text: &str) -> Result<Function, ParseIrError> {
    let module = parse_module(text)?;
    if module.function_count() != 1 {
        return Err(ParseIrError {
            line: 1,
            message: format!("expected 1 function, found {}", module.function_count()),
        });
    }
    Ok(module.function(FuncId::new(0)).clone())
}

// ---------------------------------------------------------------------

struct P<'a> {
    line_no: usize,
    rest: &'a str,
}

impl<'a> P<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseIrError> {
        Err(ParseIrError {
            line: self.line_no,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        self.rest = self.rest.trim_start();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if let Some(r) = self.rest.strip_prefix(token) {
            self.rest = r;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseIrError> {
        if self.eat(token) {
            Ok(())
        } else {
            self.err(format!("expected `{token}` at `{}`", self.rest))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseIrError> {
        self.skip_ws();
        let end = self
            .rest
            .find(|c: char| !c.is_ascii_alphanumeric() && c != '_' && c != '.')
            .unwrap_or(self.rest.len());
        if end == 0 {
            return self.err(format!("expected identifier at `{}`", self.rest));
        }
        let (id, r) = self.rest.split_at(end);
        self.rest = r;
        Ok(id)
    }

    fn int(&mut self) -> Result<i64, ParseIrError> {
        self.skip_ws();
        let neg = self.rest.starts_with('-');
        let body = if neg { &self.rest[1..] } else { self.rest };
        let end = body
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(body.len());
        if end == 0 {
            return self.err(format!("expected integer at `{}`", self.rest));
        }
        let digits = &body[..end];
        let consumed = end + usize::from(neg);
        let v: i64 = digits.parse().map_err(|_| ParseIrError {
            line: self.line_no,
            message: format!("integer `{digits}` out of range"),
        })?;
        self.rest = &self.rest[consumed..];
        Ok(if neg { -v } else { v })
    }

    fn index_of(&mut self, prefix: &str) -> Result<usize, ParseIrError> {
        self.skip_ws();
        let id = self.ident()?;
        match id
            .strip_prefix(prefix)
            .and_then(|n| n.parse::<usize>().ok())
        {
            Some(n) => Ok(n),
            None => self.err(format!("expected `{prefix}N`, found `{id}`")),
        }
    }

    fn ty(&mut self) -> Result<Type, ParseIrError> {
        self.skip_ws();
        let mut t = if self.eat("int") {
            Type::Int
        } else if self.eat("bool") {
            Type::Bool
        } else {
            return self.err(format!("expected type at `{}`", self.rest));
        };
        while self.eat("[]") {
            t = Type::array_of(t);
        }
        Ok(t)
    }
}

/// Parses one function starting at `lines[0]`; returns it and the number of
/// lines consumed (through the closing `}`).
fn parse_function(lines: &[(usize, &str)]) -> Result<(Function, usize), ParseIrError> {
    // --- header ---
    let (ln, header) = lines[0];
    let mut p = P {
        line_no: ln,
        rest: header.trim(),
    };
    p.expect("func")?;
    p.expect("@")?;
    let name = p.ident()?.to_string();
    p.expect("(")?;
    let mut params: Vec<Type> = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(")") {
            break;
        }
        if !params.is_empty() {
            p.expect(",")?;
        }
        let _ = p.index_of("v")?;
        p.expect(":")?;
        params.push(p.ty()?);
    }
    let ret = if p.eat("->") { Some(p.ty()?) } else { None };
    p.expect("{")?;

    // --- pre-scan: map text value names to dense ids in definition order,
    //     find max check site, and collect blocks. ---
    let mut value_map: HashMap<usize, Value> = HashMap::new();
    for (i, _) in params.iter().enumerate() {
        // params are printed as v0..vN in order
        value_map.insert(i, Value::new(i));
    }
    let mut next_value = params.len();
    let mut block_names: Vec<usize> = Vec::new();
    let mut end = None;
    for (offset, (_, line)) in lines.iter().enumerate().skip(1) {
        let t = line.trim();
        if t == "}" {
            end = Some(offset);
            break;
        }
        if let Some(b) = t.strip_suffix(':') {
            if let Some(n) = b.strip_prefix("bb").and_then(|s| s.parse::<usize>().ok()) {
                block_names.push(n);
                continue;
            }
        }
        // definition lines look like `vN: TYPE = ...`
        if let Some(vtxt) = t.strip_prefix('v') {
            if let Some(colon) = vtxt.find(':') {
                if let Ok(n) = vtxt[..colon].parse::<usize>() {
                    if value_map.contains_key(&n) {
                        return Err(ParseIrError {
                            line: lines[offset].0,
                            message: format!("v{n} defined twice"),
                        });
                    }
                    value_map.insert(n, Value::new(next_value));
                    next_value += 1;
                }
            }
        }
    }
    let Some(end) = end else {
        return Err(ParseIrError {
            line: ln,
            message: "missing closing `}`".into(),
        });
    };

    // Blocks are renumbered densely in appearance order.
    let mut block_map: HashMap<usize, Block> = HashMap::new();
    let mut func = Function::new(name, params, ret);
    for (i, n) in block_names.iter().enumerate() {
        let b = if i == 0 {
            func.entry()
        } else {
            func.new_block()
        };
        if block_map.insert(*n, b).is_some() {
            return Err(ParseIrError {
                line: ln,
                message: format!("bb{n} defined twice"),
            });
        }
    }

    // --- main pass ---
    let mut current: Option<Block> = None;
    let mut max_site: Option<usize> = None;
    for (line_no, raw) in lines.iter().take(end).skip(1) {
        let t = raw.trim();
        if t.is_empty() {
            continue;
        }
        let mut p = P {
            line_no: *line_no,
            rest: t,
        };
        if let Some(b) = t.strip_suffix(':') {
            if let Some(n) = b.strip_prefix("bb").and_then(|s| s.parse::<usize>().ok()) {
                current = Some(block_map[&n]);
                continue;
            }
        }
        if t.starts_with("locals") {
            p.expect("locals")?;
            loop {
                let n = p.index_of("loc")?;
                p.expect(":")?;
                let ty = p.ty()?;
                let l = func.new_local(ty);
                if l.index() != n {
                    return p.err("locals must be declared densely in order");
                }
                if !p.eat(",") {
                    break;
                }
            }
            continue;
        }
        let Some(block) = current else {
            return p.err("instruction outside a block");
        };
        parse_line(
            &mut p,
            &mut func,
            block,
            &value_map,
            &block_map,
            &mut max_site,
        )?;
    }
    if let Some(m) = max_site {
        while func.check_site_count() <= m {
            func.new_check_site();
        }
    }
    Ok((func, end + 1))
}

#[allow(clippy::too_many_arguments)]
fn parse_line(
    p: &mut P,
    func: &mut Function,
    block: Block,
    values: &HashMap<usize, Value>,
    blocks: &HashMap<usize, Block>,
    max_site: &mut Option<usize>,
) -> Result<(), ParseIrError> {
    let val = |p: &P, n: usize| -> Result<Value, ParseIrError> {
        values.get(&n).copied().ok_or(ParseIrError {
            line: p.line_no,
            message: format!("undefined value v{n}"),
        })
    };
    let blk = |p: &P, n: usize| -> Result<Block, ParseIrError> {
        blocks.get(&n).copied().ok_or(ParseIrError {
            line: p.line_no,
            message: format!("undefined block bb{n}"),
        })
    };
    macro_rules! value {
        () => {{
            let n = p.index_of("v")?;
            val(p, n)?
        }};
    }
    macro_rules! block_ref {
        () => {{
            let n = p.index_of("bb")?;
            blk(p, n)?
        }};
    }
    macro_rules! site {
        () => {{
            p.expect("@")?;
            let n = p.index_of("ck")?;
            *max_site = Some(max_site.map_or(n, |m: usize| m.max(n)));
            CheckSite::new(n)
        }};
    }

    // Terminators.
    if p.eat("jump") {
        func.set_terminator(block, Terminator::Jump(block_ref!()));
        return Ok(());
    }
    if p.eat("br") {
        let cond = value!();
        p.expect(",")?;
        let then_dst = block_ref!();
        p.expect(",")?;
        let else_dst = block_ref!();
        func.set_terminator(
            block,
            Terminator::Branch {
                cond,
                then_dst,
                else_dst,
            },
        );
        return Ok(());
    }
    if p.eat("ret") {
        p.skip_ws();
        let v = if p.rest.is_empty() {
            None
        } else {
            Some(value!())
        };
        func.set_terminator(block, Terminator::Return(v));
        return Ok(());
    }

    // Result-less instructions.
    if p.eat("store") {
        let array = value!();
        p.expect("[")?;
        let index = value!();
        p.expect("]")?;
        p.expect("=")?;
        let value = value!();
        let id = func.create_inst(
            InstKind::Store {
                array,
                index,
                value,
            },
            None,
        );
        func.append_inst(block, id);
        return Ok(());
    }
    for (prefix, spec) in [("check.", 0u8), ("spec_check.", 1), ("trap_if_flagged.", 2)] {
        if p.eat(prefix) {
            let kind = parse_check_kind(p)?;
            let array = value!();
            p.expect("[")?;
            let index = value!();
            p.expect("]")?;
            let site = site!();
            let k = match spec {
                0 => InstKind::BoundsCheck {
                    site,
                    array,
                    index,
                    kind,
                },
                1 => InstKind::SpecCheck {
                    site,
                    array,
                    index,
                    kind,
                },
                _ => InstKind::TrapIfFlagged {
                    site,
                    array,
                    index,
                    kind,
                },
            };
            let id = func.create_inst(k, None);
            func.append_inst(block, id);
            return Ok(());
        }
    }
    if p.eat("output") {
        let arg = value!();
        let id = func.create_inst(InstKind::Output { arg }, None);
        func.append_inst(block, id);
        return Ok(());
    }
    if p.eat("set") {
        let n = p.index_of("loc")?;
        p.expect("=")?;
        let value = value!();
        let id = func.create_inst(
            InstKind::SetLocal {
                local: Local::new(n),
                value,
            },
            None,
        );
        func.append_inst(block, id);
        return Ok(());
    }
    if p.rest.trim_start().starts_with("call") {
        // void call
        p.expect("call")?;
        let (callee, args) = parse_call_tail(p, values)?;
        let id = func.create_inst(InstKind::Call { func: callee, args }, None);
        func.append_inst(block, id);
        return Ok(());
    }

    // Valued instruction: `vN: TYPE = <kind>`.
    let _ = p.index_of("v")?;
    p.expect(":")?;
    let ty = p.ty()?;
    p.expect("=")?;

    let kind: InstKind = if p.eat("const") {
        InstKind::Const(p.int()?)
    } else if p.eat("bconst") {
        p.skip_ws();
        if p.eat("true") {
            InstKind::BoolConst(true)
        } else if p.eat("false") {
            InstKind::BoolConst(false)
        } else {
            return p.err("expected true/false");
        }
    } else if p.eat("Neg") {
        InstKind::Unary {
            op: UnOp::Neg,
            arg: value!(),
        }
    } else if p.eat("Not") {
        InstKind::Unary {
            op: UnOp::Not,
            arg: value!(),
        }
    } else if p.eat("cmp.") {
        let op = parse_cmp(p)?;
        let lhs = value!();
        p.expect(",")?;
        let rhs = value!();
        InstKind::Compare { op, lhs, rhs }
    } else if p.eat("newarray") {
        let elem = p.ty()?;
        p.expect(",")?;
        InstKind::NewArray {
            elem,
            len: value!(),
        }
    } else if p.eat("arraylen") {
        InstKind::ArrayLen { array: value!() }
    } else if p.eat("load") {
        let array = value!();
        p.expect("[")?;
        let index = value!();
        p.expect("]")?;
        InstKind::Load { array, index }
    } else if p.eat("phi") {
        let mut args = Vec::new();
        loop {
            p.expect("[")?;
            let b = block_ref!();
            p.expect(":")?;
            let v = value!();
            p.expect("]")?;
            args.push((b, v));
            if !p.eat(",") {
                break;
            }
        }
        InstKind::Phi { args }
    } else if p.eat("pi") {
        let input = value!();
        p.expect(",")?;
        p.expect("[")?;
        let guard = if p.eat("branch") {
            let b = block_ref!();
            let taken = if p.eat("taken") {
                true
            } else if p.eat("fallthrough") {
                false
            } else {
                return p.err("expected taken/fallthrough");
            };
            PiGuard::Branch { block: b, taken }
        } else if p.eat("checked.") {
            let kind = parse_check_kind(p)?;
            let array = value!();
            let site = site!();
            PiGuard::Check { site, array, kind }
        } else {
            return p.err("expected branch/checked guard");
        };
        p.expect("]")?;
        InstKind::Pi { input, guard }
    } else if p.eat("copy") {
        InstKind::Copy { arg: value!() }
    } else if p.eat("call") {
        let (callee, args) = parse_call_tail(p, values)?;
        InstKind::Call { func: callee, args }
    } else if p.eat("get") {
        InstKind::GetLocal {
            local: Local::new(p.index_of("loc")?),
        }
    } else {
        // binary ops by mnemonic
        let mn = p.ident()?;
        let op = match mn {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "div" => BinOp::Div,
            "rem" => BinOp::Rem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "shr" => BinOp::Shr,
            other => return p.err(format!("unknown instruction `{other}`")),
        };
        let lhs = value!();
        p.expect(",")?;
        let rhs = value!();
        InstKind::Binary { op, lhs, rhs }
    };

    let id = func.create_inst(kind, Some(ty));
    func.append_inst(block, id);
    Ok(())
}

fn parse_check_kind(p: &mut P) -> Result<CheckKind, ParseIrError> {
    if p.eat("lower") {
        Ok(CheckKind::Lower)
    } else if p.eat("upper") {
        Ok(CheckKind::Upper)
    } else if p.eat("both") {
        Ok(CheckKind::Both)
    } else {
        p.err("expected lower/upper/both")
    }
}

fn parse_cmp(p: &mut P) -> Result<CmpOp, ParseIrError> {
    for (s, op) in [
        ("eq", CmpOp::Eq),
        ("ne", CmpOp::Ne),
        ("le", CmpOp::Le),
        ("lt", CmpOp::Lt),
        ("ge", CmpOp::Ge),
        ("gt", CmpOp::Gt),
    ] {
        if p.eat(s) {
            return Ok(op);
        }
    }
    p.err("expected comparison mnemonic")
}

fn parse_call_tail(
    p: &mut P,
    values: &HashMap<usize, Value>,
) -> Result<(FuncId, Vec<Value>), ParseIrError> {
    let n = p.index_of("fn")?;
    p.expect("(")?;
    let mut args = Vec::new();
    loop {
        p.skip_ws();
        if p.eat(")") {
            break;
        }
        if !args.is_empty() {
            p.expect(",")?;
        }
        let vn = p.index_of("v")?;
        let v = values.get(&vn).copied().ok_or(ParseIrError {
            line: p.line_no,
            message: format!("undefined value v{vn}"),
        })?;
        args.push(v);
    }
    Ok((FuncId::new(n), args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::verify::verify_function;

    #[test]
    fn round_trips_a_checked_loop() {
        let mut b = FunctionBuilder::new("sum", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let acc = b.new_local(Type::Int);
        let zero = b.iconst(0);
        b.set_local(acc, zero);
        let (head, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(head);
        b.switch_to_block(head);
        let len = b.array_len(a);
        let c = b.compare(CmpOp::Lt, zero, len);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        b.bounds_check(a, zero, CheckKind::Upper);
        let x = b.load(a, zero);
        let av = b.get_local(acc);
        let s = b.binary(BinOp::Add, av, x);
        b.set_local(acc, s);
        b.jump(exit);
        b.switch_to_block(exit);
        let out = b.get_local(acc);
        b.ret(Some(out));
        let f = b.finish().unwrap();

        let text = f.to_string();
        let parsed = parse_function_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        verify_function(&parsed, None).unwrap();
        assert_eq!(parsed.to_string(), text, "round trip not stable");
        assert_eq!(parsed.check_site_count(), f.check_site_count());
        assert_eq!(parsed.local_count(), f.local_count());
    }

    #[test]
    fn parses_phis_and_pis() {
        let text = "\
func @f(v0: int[], v1: int) -> int {
bb0:
    v2: bool = cmp.lt v1, v1
    br v2, bb1, bb2
bb1:
    v3: int = pi v1, [branch bb0 taken]
    jump bb3
bb2:
    v4: int = pi v1, [branch bb0 fallthrough]
    jump bb3
bb3:
    v5: int = phi [bb1: v3], [bb2: v4]
    check.upper v0[v5] @ck2
    v6: int = pi v5, [checked.upper v0 @ck2]
    v7: int = load v0[v6]
    ret v7
}
";
        let f = parse_function_text(text).unwrap();
        verify_function(&f, None).unwrap();
        // site ids up to ck2 must be allocated
        assert_eq!(f.check_site_count(), 3);
        assert_eq!(f.to_string(), text.trim_end());
    }

    #[test]
    fn renumbers_sparse_value_names() {
        let text = "\
func @g() -> int {
bb0:
    v17: int = const 4
    v9: int = add v17, v17
    ret v9
}
";
        let f = parse_function_text(text).unwrap();
        verify_function(&f, None).unwrap();
        // dense ids: v0 (const), v1 (add)
        assert_eq!(f.value_count(), 2);
    }

    #[test]
    fn module_with_calls_round_trips() {
        let text = "\
func @callee(v0: int) -> int {
bb0:
    ret v0
}

func @caller(v0: int) -> int {
bb0:
    v1: int = call fn0(v0)
    call fn0(v1)
    ret v1
}
";
        let m = parse_module(text).unwrap();
        assert_eq!(m.function_count(), 2);
        crate::verify::verify_module(&m).unwrap();
        assert_eq!(m.to_string().trim_end(), text.trim_end());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "\
func @f() {
bb0:
    v1: int = frobnicate v0
    ret
}
";
        let err = parse_function_text(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn undefined_value_is_reported() {
        let text = "\
func @f() {
bb0:
    output v5
    ret
}
";
        let err = parse_function_text(text).unwrap_err();
        assert!(err.message.contains("undefined value"));
    }

    #[test]
    fn duplicate_definition_is_reported() {
        let text = "\
func @f() {
bb0:
    v1: int = const 1
    v1: int = const 2
    ret
}
";
        let err = parse_function_text(text).unwrap_err();
        assert!(err.message.contains("defined twice"));
    }
}
