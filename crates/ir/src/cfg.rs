//! Control-flow-graph utilities: successors, predecessors, traversal orders.

use crate::entities::Block;
use crate::function::Function;
use crate::inst::Terminator;

/// The successor blocks of `b`, in terminator order
/// (then-destination before else-destination).
pub fn successors(func: &Function, b: Block) -> Vec<Block> {
    match func.block(b).terminator_opt() {
        None | Some(Terminator::Return(_)) => Vec::new(),
        Some(Terminator::Jump(d)) => vec![*d],
        Some(Terminator::Branch {
            then_dst, else_dst, ..
        }) => vec![*then_dst, *else_dst],
    }
}

/// The predecessor lists of every block, indexed by block.
///
/// A block appears twice in a predecessor list if both edges of a branch
/// target it; SSA φ-argument handling relies on such edges having been split
/// (see the critical-edge splitter in `abcd-ssa`).
pub fn predecessors(func: &Function) -> Vec<Vec<Block>> {
    let mut preds = vec![Vec::new(); func.block_count()];
    for b in func.blocks() {
        for s in successors(func, b) {
            preds[s.index()].push(b);
        }
    }
    preds
}

/// Blocks in postorder of a depth-first traversal from the entry.
/// Unreachable blocks are omitted.
pub fn postorder(func: &Function) -> Vec<Block> {
    let mut order = Vec::with_capacity(func.block_count());
    let mut state = vec![0u8; func.block_count()]; // 0 unvisited, 1 on stack, 2 done
    let mut stack = vec![(func.entry(), 0usize)];
    state[func.entry().index()] = 1;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let succs = successors(func, b);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[b.index()] = 2;
            order.push(b);
            stack.pop();
        }
    }
    order
}

/// Blocks in reverse postorder from the entry (a topological order for
/// acyclic CFGs; the standard iteration order for forward dataflow).
pub fn reverse_postorder(func: &Function) -> Vec<Block> {
    let mut order = postorder(func);
    order.reverse();
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    /// Builds the diamond CFG `entry → {a, b} → exit`.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Type::Bool], None);
        let cond = b.param(0);
        let t = b.new_block();
        let e = b.new_block();
        let exit = b.new_block();
        b.branch(cond, t, e);
        b.switch_to_block(t);
        b.jump(exit);
        b.switch_to_block(e);
        b.jump(exit);
        b.switch_to_block(exit);
        b.ret(None);
        b.finish().unwrap()
    }

    #[test]
    fn diamond_preds_and_succs() {
        let f = diamond();
        let entry = f.entry();
        assert_eq!(successors(&f, entry).len(), 2);
        let preds = predecessors(&f);
        // exit is block 3 and has two predecessors.
        assert_eq!(preds[3].len(), 2);
        assert_eq!(preds[entry.index()].len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_ends_at_exit() {
        let f = diamond();
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], f.entry());
        assert_eq!(*rpo.last().unwrap(), Block::new(3));
    }

    #[test]
    fn unreachable_blocks_are_omitted() {
        let mut b = FunctionBuilder::new("u", vec![], None);
        b.ret(None);
        let dead = b.new_block();
        b.switch_to_block(dead);
        b.ret(None);
        let f = b.finish().unwrap();
        assert_eq!(postorder(&f).len(), 1);
    }

    #[test]
    fn postorder_handles_loops() {
        // entry -> head; head -> body|exit; body -> head
        let mut b = FunctionBuilder::new("l", vec![Type::Bool], None);
        let cond = b.param(0);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to_block(head);
        b.branch(cond, body, exit);
        b.switch_to_block(body);
        b.jump(head);
        b.switch_to_block(exit);
        b.ret(None);
        let f = b.finish().unwrap();
        let po = postorder(&f);
        assert_eq!(po.len(), 4);
        // entry is last in postorder.
        assert_eq!(*po.last().unwrap(), f.entry());
    }
}
