//! Instructions, operators, π-guards, and block terminators.

use crate::entities::{Block, CheckSite, FuncId, Local, Value};
use std::fmt;

/// A binary arithmetic operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (traps on division by zero).
    Div,
    /// Signed remainder (traps on division by zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 63).
    Shl,
    /// Arithmetic right shift (shift amount masked to 63).
    Shr,
}

impl BinOp {
    /// The textual mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        }
    }
}

/// A unary operator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// A comparison operator producing a [`Type::Bool`](crate::Type::Bool).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Lt,
    /// `<=` (signed)
    Le,
    /// `>` (signed)
    Gt,
    /// `>=` (signed)
    Ge,
}

impl CmpOp {
    /// The textual mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison that holds when this one does with operands swapped
    /// (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The comparison that holds exactly when this one does not
    /// (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluates the comparison on concrete integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Which bound(s) a check instruction validates.
///
/// The paper treats lower- and upper-bound elimination as independent
/// problems (§2); [`CheckKind::Both`] is the merged unsigned comparison of
/// §7.2, produced by the `merge_checks` pass.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// `index >= 0`
    Lower,
    /// `index <= array.length - 1`
    Upper,
    /// Both bounds via one unsigned comparison (§7.2).
    Both,
}

impl CheckKind {
    /// The textual mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CheckKind::Lower => "lower",
            CheckKind::Upper => "upper",
            CheckKind::Both => "both",
        }
    }
}

/// The provenance of a π-assignment in e-SSA form (§3 of the paper).
///
/// A π-assignment renames a value on a control-flow edge (or after a check)
/// so that the constraint generated there attaches to a fresh name. The guard
/// records exactly which constraint that is; the inequality-graph builder in
/// the `abcd` crate consumes it (constraint classes C4 and C5 of Table 1).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PiGuard {
    /// The renamed value flows out of the conditional branch terminating
    /// `block`; `taken` tells which out-edge.
    ///
    /// The comparison itself is found through the branch: its condition is a
    /// [`InstKind::Compare`] whose operands include the π's input. Storing
    /// the block (rather than the operand values) keeps the guard stable
    /// under SSA renaming and lets the inequality-graph builder pair the πs
    /// of the two comparison operands on the same edge (Table 1, C4).
    Branch {
        /// The block whose terminator generates the constraint.
        block: Block,
        /// `true` for the then-edge, `false` for the else-edge.
        taken: bool,
    },
    /// The renamed value is the index of a bounds check that succeeded
    /// (constraint class C5): after `check A[i]`, `i ≤ A.length − 1`
    /// (upper) or `i ≥ 0` (lower).
    Check {
        /// The site of the generating check.
        site: CheckSite,
        /// The checked array reference.
        array: Value,
        /// Which bound the check validated.
        kind: CheckKind,
    },
}

/// An instruction: an operation plus an optional result value.
#[derive(Clone, PartialEq, Debug)]
pub struct Inst {
    /// What the instruction does.
    pub kind: InstKind,
    /// The value the instruction defines, if any.
    pub result: Option<Value>,
}

/// The operation an instruction performs.
#[derive(Clone, PartialEq, Debug)]
pub enum InstKind {
    /// An integer constant.
    Const(i64),
    /// A boolean constant.
    BoolConst(bool),
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        arg: Value,
    },
    /// A binary arithmetic operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// A comparison producing a boolean.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Allocates a zero-initialized array of the given element type.
    NewArray {
        /// Element type of the allocated array.
        elem: crate::Type,
        /// Number of elements (traps if negative).
        len: Value,
    },
    /// Reads the length of an array (constraint class C1 when assigned).
    ArrayLen {
        /// Array reference.
        array: Value,
    },
    /// Loads `array[index]`. The load itself performs **no** check; safety
    /// relies on the preceding check instructions, exactly as in the paper's
    /// IR where checks are separate, removable instructions.
    Load {
        /// Array reference.
        array: Value,
        /// Element index.
        index: Value,
    },
    /// Stores `value` into `array[index]` (unchecked; see [`InstKind::Load`]).
    Store {
        /// Array reference.
        array: Value,
        /// Element index.
        index: Value,
        /// Value stored.
        value: Value,
    },
    /// An array bounds check: traps if the index violates `kind`.
    ///
    /// This is the instruction ABCD removes. Each check carries a stable
    /// [`CheckSite`] for profiling and reporting.
    BoundsCheck {
        /// Stable site identifier.
        site: CheckSite,
        /// Checked array reference.
        array: Value,
        /// Checked index.
        index: Value,
        /// Which bound to validate.
        kind: CheckKind,
    },
    /// A *speculative* (hoisted) bounds check inserted by partial-redundancy
    /// elimination (§6.2). Instead of trapping it records the failure in a
    /// per-activation flag for `site`; the residual [`InstKind::TrapIfFlagged`]
    /// at the original program point raises the exception, preserving precise
    /// exception semantics.
    SpecCheck {
        /// Site of the original (optimized) check.
        site: CheckSite,
        /// Checked array reference.
        array: Value,
        /// Checked index.
        index: Value,
        /// Which bound to validate.
        kind: CheckKind,
    },
    /// Traps iff a [`InstKind::SpecCheck`] for `site` failed on this
    /// activation **and** the original bound is actually violated here
    /// (re-validated against `array`/`index`, handling the speculative case
    /// where the hoisted check failed spuriously, §6.2).
    TrapIfFlagged {
        /// Site of the original check.
        site: CheckSite,
        /// Array of the original check.
        array: Value,
        /// Index of the original check.
        index: Value,
        /// Bound of the original check.
        kind: CheckKind,
    },
    /// An SSA φ: selects the argument corresponding to the predecessor block
    /// the edge was taken from. Arguments are keyed by predecessor.
    Phi {
        /// `(predecessor, value)` pairs, one per CFG predecessor.
        args: Vec<(Block, Value)>,
    },
    /// An e-SSA π-assignment: a copy of `input` valid only where the
    /// constraint described by `guard` holds (§3).
    Pi {
        /// The renamed value.
        input: Value,
        /// Why the rename generates a constraint.
        guard: PiGuard,
    },
    /// A plain copy (used by tests and as a normalization target).
    Copy {
        /// Copied value.
        arg: Value,
    },
    /// A direct call.
    Call {
        /// Callee.
        func: FuncId,
        /// Actual arguments.
        args: Vec<Value>,
    },
    /// Emits a value to the VM's output stream (used by examples and for
    /// differential testing of optimized code).
    Output {
        /// Emitted value.
        arg: Value,
    },
    /// Reads a mutable local slot (pre-SSA form only).
    GetLocal {
        /// The slot.
        local: Local,
    },
    /// Writes a mutable local slot (pre-SSA form only; has no result).
    SetLocal {
        /// The slot.
        local: Local,
        /// Stored value.
        value: Value,
    },
}

impl InstKind {
    /// Calls `f` on every value this instruction uses.
    pub fn for_each_use(&self, mut f: impl FnMut(Value)) {
        match self {
            InstKind::Const(_) | InstKind::BoolConst(_) | InstKind::GetLocal { .. } => {}
            InstKind::Unary { arg, .. }
            | InstKind::Copy { arg }
            | InstKind::Output { arg }
            | InstKind::Pi { input: arg, .. } => f(*arg),
            InstKind::Binary { lhs, rhs, .. } | InstKind::Compare { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            InstKind::NewArray { len, .. } => f(*len),
            InstKind::ArrayLen { array } => f(*array),
            InstKind::Load { array, index } => {
                f(*array);
                f(*index);
            }
            InstKind::Store {
                array,
                index,
                value,
            } => {
                f(*array);
                f(*index);
                f(*value);
            }
            InstKind::BoundsCheck { array, index, .. }
            | InstKind::SpecCheck { array, index, .. }
            | InstKind::TrapIfFlagged { array, index, .. } => {
                f(*array);
                f(*index);
            }
            InstKind::Phi { args } => {
                for (_, v) in args {
                    f(*v);
                }
            }
            InstKind::Call { args, .. } => {
                for v in args {
                    f(*v);
                }
            }
            InstKind::SetLocal { value, .. } => f(*value),
        }
    }

    /// Rewrites every used value through `f` (including π-guard operands).
    pub fn map_uses(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            InstKind::Const(_) | InstKind::BoolConst(_) | InstKind::GetLocal { .. } => {}
            InstKind::Unary { arg, .. } | InstKind::Copy { arg } | InstKind::Output { arg } => {
                *arg = f(*arg)
            }
            InstKind::Pi { input, guard } => {
                *input = f(*input);
                if let PiGuard::Check { array, .. } = guard {
                    *array = f(*array);
                }
            }
            InstKind::Binary { lhs, rhs, .. } | InstKind::Compare { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            InstKind::NewArray { len, .. } => *len = f(*len),
            InstKind::ArrayLen { array } => *array = f(*array),
            InstKind::Load { array, index } => {
                *array = f(*array);
                *index = f(*index);
            }
            InstKind::Store {
                array,
                index,
                value,
            } => {
                *array = f(*array);
                *index = f(*index);
                *value = f(*value);
            }
            InstKind::BoundsCheck { array, index, .. }
            | InstKind::SpecCheck { array, index, .. }
            | InstKind::TrapIfFlagged { array, index, .. } => {
                *array = f(*array);
                *index = f(*index);
            }
            InstKind::Phi { args } => {
                for (_, v) in args {
                    *v = f(*v);
                }
            }
            InstKind::Call { args, .. } => {
                for v in args {
                    *v = f(*v);
                }
            }
            InstKind::SetLocal { value, .. } => *value = f(*value),
        }
    }

    /// Returns `true` for instructions with no side effect and no result
    /// dependence on memory, i.e. candidates for dead-code elimination when
    /// their result is unused.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            InstKind::Const(_)
                | InstKind::BoolConst(_)
                | InstKind::Unary { .. }
                | InstKind::Compare { .. }
                | InstKind::ArrayLen { .. }
                | InstKind::Phi { .. }
                | InstKind::Pi { .. }
                | InstKind::Copy { .. }
        ) || matches!(
            self,
            // Add/Sub/Mul and bitwise ops cannot trap; Div/Rem can.
            InstKind::Binary { op, .. } if !matches!(op, BinOp::Div | BinOp::Rem)
        )
    }

    /// Returns `true` if this is any flavor of check instruction
    /// (regular, speculative, or residual trap).
    pub fn is_check(&self) -> bool {
        matches!(
            self,
            InstKind::BoundsCheck { .. }
                | InstKind::SpecCheck { .. }
                | InstKind::TrapIfFlagged { .. }
        )
    }
}

/// The control-flow transfer ending a basic block.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(Block),
    /// Two-way conditional branch on a boolean value.
    Branch {
        /// The boolean condition.
        cond: Value,
        /// Destination when `cond` is true.
        then_dst: Block,
        /// Destination when `cond` is false.
        else_dst: Block,
    },
    /// Function return with an optional value.
    Return(Option<Value>),
}

impl Terminator {
    /// Calls `f` on every value the terminator uses.
    pub fn for_each_use(&self, mut f: impl FnMut(Value)) {
        match self {
            Terminator::Jump(_) => {}
            Terminator::Branch { cond, .. } => f(*cond),
            Terminator::Return(v) => {
                if let Some(v) = v {
                    f(*v)
                }
            }
        }
    }

    /// Rewrites every used value through `f`.
    pub fn map_uses(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Terminator::Jump(_) => {}
            Terminator::Branch { cond, .. } => *cond = f(*cond),
            Terminator::Return(v) => {
                if let Some(v) = v {
                    *v = f(*v)
                }
            }
        }
    }

    /// Rewrites every successor block through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(Block) -> Block) {
        match self {
            Terminator::Jump(dst) => *dst = f(*dst),
            Terminator::Branch {
                then_dst, else_dst, ..
            } => {
                *then_dst = f(*then_dst);
                *else_dst = f(*else_dst);
            }
            Terminator::Return(_) => {}
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negation_is_involutive() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.swapped().swapped(), op);
        }
    }

    #[test]
    fn cmp_eval_agrees_with_negation() {
        let cases = [(3, 5), (5, 3), (4, 4), (-1, 0), (i64::MIN, i64::MAX)];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for (a, b) in cases {
                assert_eq!(op.eval(a, b), !op.negated().eval(a, b), "{op:?} {a} {b}");
                assert_eq!(op.eval(a, b), op.swapped().eval(b, a), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn for_each_use_covers_store() {
        let k = InstKind::Store {
            array: Value::new(0),
            index: Value::new(1),
            value: Value::new(2),
        };
        let mut seen = Vec::new();
        k.for_each_use(|v| seen.push(v.index()));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn map_uses_rewrites_phi_and_pi_guard() {
        let mut phi = InstKind::Phi {
            args: vec![
                (Block::new(0), Value::new(4)),
                (Block::new(1), Value::new(5)),
            ],
        };
        phi.map_uses(|v| Value::new(v.index() + 10));
        let mut seen = Vec::new();
        phi.for_each_use(|v| seen.push(v.index()));
        assert_eq!(seen, vec![14, 15]);

        let mut pi = InstKind::Pi {
            input: Value::new(1),
            guard: PiGuard::Check {
                site: CheckSite::new(0),
                array: Value::new(9),
                kind: CheckKind::Upper,
            },
        };
        pi.map_uses(|v| Value::new(v.index() + 1));
        match pi {
            InstKind::Pi {
                input,
                guard: PiGuard::Check { array, .. },
            } => {
                assert_eq!(input.index(), 2);
                assert_eq!(array.index(), 10);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn purity_classification() {
        assert!(InstKind::Const(3).is_pure());
        assert!(InstKind::Binary {
            op: BinOp::Add,
            lhs: Value::new(0),
            rhs: Value::new(1)
        }
        .is_pure());
        assert!(!InstKind::Binary {
            op: BinOp::Div,
            lhs: Value::new(0),
            rhs: Value::new(1)
        }
        .is_pure());
        assert!(!InstKind::Store {
            array: Value::new(0),
            index: Value::new(1),
            value: Value::new(2)
        }
        .is_pure());
        assert!(InstKind::BoundsCheck {
            site: CheckSite::new(0),
            array: Value::new(0),
            index: Value::new(1),
            kind: CheckKind::Upper
        }
        .is_check());
    }
}
