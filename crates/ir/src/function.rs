//! Function bodies: arenas of values, instructions, and basic blocks.

use crate::entities::{Block, CheckSite, InstId, Local, Value};
use crate::inst::{Inst, InstKind, Terminator};
use crate::intern::Symbol;
use crate::types::Type;

/// Where a [`Value`] comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueDef {
    /// The `index`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// A basic block: an ordered list of instructions plus a terminator.
#[derive(Clone, Debug, Default)]
pub struct BlockData {
    insts: Vec<InstId>,
    term: Option<Terminator>,
}

impl BlockData {
    /// The instructions of the block, in order.
    pub fn insts(&self) -> &[InstId] {
        &self.insts
    }

    /// The block terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block has not been terminated yet (only possible during
    /// construction; [`crate::verify_function`] rejects such functions).
    pub fn terminator(&self) -> &Terminator {
        self.term.as_ref().expect("block missing terminator")
    }

    /// The terminator if the block has one.
    pub fn terminator_opt(&self) -> Option<&Terminator> {
        self.term.as_ref()
    }
}

/// A function: parameters, local slots, and a CFG of basic blocks.
///
/// The arenas are append-only; passes that delete instructions remove them
/// from the owning block's instruction list (the arena slot simply becomes
/// unreferenced). All iteration goes through block lists, so unreferenced
/// slots are invisible.
#[derive(Clone, Debug)]
pub struct Function {
    name: Symbol,
    param_types: Vec<Type>,
    ret_type: Option<Type>,
    local_types: Vec<Type>,
    values: Vec<ValueDef>,
    value_types: Vec<Type>,
    insts: Vec<Inst>,
    blocks: Vec<BlockData>,
    entry: Block,
    next_check_site: u32,
}

impl Function {
    /// Creates an empty function with one (entry) block.
    ///
    /// Parameters become values `v0..vN` in order.
    pub fn new(name: impl Into<Symbol>, param_types: Vec<Type>, ret_type: Option<Type>) -> Self {
        let mut f = Function {
            name: name.into(),
            values: Vec::new(),
            value_types: Vec::new(),
            param_types: param_types.clone(),
            ret_type,
            local_types: Vec::new(),
            insts: Vec::new(),
            blocks: vec![BlockData::default()],
            entry: Block::new(0),
            next_check_site: 0,
        };
        for (i, ty) in param_types.iter().enumerate() {
            f.values.push(ValueDef::Param(i as u32));
            f.value_types.push(ty.clone());
        }
        f
    }

    /// The function's name.
    pub fn name(&self) -> &'static str {
        self.name.as_str()
    }

    /// The function's name as its interned handle (cheap to copy, compare
    /// and hash; resolve with [`Symbol::as_str`] at display time).
    pub fn name_symbol(&self) -> Symbol {
        self.name
    }

    /// Renames the function (used when cloning specialized versions).
    pub fn set_name(&mut self, name: impl Into<Symbol>) {
        self.name = name.into();
    }

    /// Parameter types, in order.
    pub fn param_types(&self) -> &[Type] {
        &self.param_types
    }

    /// The return type, or `None` for a void function.
    pub fn ret_type(&self) -> Option<&Type> {
        self.ret_type.as_ref()
    }

    /// The value naming the `index`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn param(&self, index: usize) -> Value {
        assert!(index < self.param_types.len(), "parameter out of range");
        Value::new(index)
    }

    /// Number of parameters.
    pub fn param_count(&self) -> usize {
        self.param_types.len()
    }

    /// The entry block.
    pub fn entry(&self) -> Block {
        self.entry
    }

    /// Number of basic blocks ever created (dense index space).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over all block ids in creation order.
    pub fn blocks(&self) -> impl ExactSizeIterator<Item = Block> + DoubleEndedIterator + '_ {
        (0..self.blocks.len()).map(Block::new)
    }

    /// The data of block `b`.
    pub fn block(&self, b: Block) -> &BlockData {
        &self.blocks[b.index()]
    }

    /// Number of values (dense index space).
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Iterates over all values.
    pub fn values(&self) -> impl ExactSizeIterator<Item = Value> + DoubleEndedIterator + '_ {
        (0..self.values.len()).map(Value::new)
    }

    /// The definition site of `v`.
    pub fn value_def(&self, v: Value) -> ValueDef {
        self.values[v.index()]
    }

    /// The type of `v`.
    pub fn value_type(&self, v: Value) -> &Type {
        &self.value_types[v.index()]
    }

    /// The instruction `id`.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutable access to instruction `id`.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Declares a new local slot of type `ty` (pre-SSA form).
    pub fn new_local(&mut self, ty: Type) -> Local {
        let l = Local::new(self.local_types.len());
        self.local_types.push(ty);
        l
    }

    /// Number of local slots.
    pub fn local_count(&self) -> usize {
        self.local_types.len()
    }

    /// The type of local `l`.
    pub fn local_type(&self, l: Local) -> &Type {
        &self.local_types[l.index()]
    }

    /// Allocates a fresh bounds-check site id.
    pub fn new_check_site(&mut self) -> CheckSite {
        let s = CheckSite::new(self.next_check_site as usize);
        self.next_check_site += 1;
        s
    }

    /// Number of check sites ever allocated.
    pub fn check_site_count(&self) -> usize {
        self.next_check_site as usize
    }

    /// Creates a new, empty, unterminated block.
    pub fn new_block(&mut self) -> Block {
        let b = Block::new(self.blocks.len());
        self.blocks.push(BlockData::default());
        b
    }

    /// Creates an instruction (not yet placed in any block). If `result_ty`
    /// is `Some`, a fresh result value of that type is allocated.
    pub fn create_inst(&mut self, kind: InstKind, result_ty: Option<Type>) -> InstId {
        let id = InstId::new(self.insts.len());
        let result = result_ty.map(|ty| {
            let v = Value::new(self.values.len());
            self.values.push(ValueDef::Inst(id));
            self.value_types.push(ty);
            v
        });
        self.insts.push(Inst { kind, result });
        id
    }

    /// Appends instruction `id` to block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is already terminated.
    pub fn append_inst(&mut self, b: Block, id: InstId) {
        assert!(
            self.blocks[b.index()].term.is_none(),
            "appending to terminated block {b}"
        );
        self.blocks[b.index()].insts.push(id);
    }

    /// Inserts instruction `id` into block `b` at position `pos`.
    pub fn insert_inst(&mut self, b: Block, pos: usize, id: InstId) {
        self.blocks[b.index()].insts.insert(pos, id);
    }

    /// Removes (unlinks) instruction `id` from block `b`. The arena slot
    /// remains but is no longer reachable. Returns `true` if it was present.
    pub fn remove_inst(&mut self, b: Block, id: InstId) -> bool {
        let insts = &mut self.blocks[b.index()].insts;
        if let Some(pos) = insts.iter().position(|&i| i == id) {
            insts.remove(pos);
            true
        } else {
            false
        }
    }

    /// Replaces the instruction list of block `b` wholesale.
    pub fn set_block_insts(&mut self, b: Block, insts: Vec<InstId>) {
        self.blocks[b.index()].insts = insts;
    }

    /// Empties block `b`: removes all instructions **and** the terminator,
    /// detaching its out-edges from the CFG. Used to neutralize unreachable
    /// blocks (the verifier permits unreachable, unterminated blocks).
    pub fn clear_block(&mut self, b: Block) {
        self.blocks[b.index()] = BlockData::default();
    }

    /// Sets (or replaces) the terminator of block `b`.
    pub fn set_terminator(&mut self, b: Block, term: Terminator) {
        self.blocks[b.index()].term = Some(term);
    }

    /// Returns `true` if block `b` has a terminator.
    pub fn is_terminated(&self, b: Block) -> bool {
        self.blocks[b.index()].term.is_some()
    }

    /// Rewrites every value use in the function through `f`
    /// (instructions, π-guards, and terminators).
    pub fn map_all_uses(&mut self, mut f: impl FnMut(Value) -> Value) {
        // Iterate via block lists so unlinked instructions are skipped.
        let block_ids: Vec<Block> = self.blocks().collect();
        for b in block_ids {
            let ids = self.blocks[b.index()].insts.clone();
            for id in ids {
                self.insts[id.index()].kind.map_uses(&mut f);
            }
            if let Some(term) = &mut self.blocks[b.index()].term {
                term.map_uses(&mut f);
            }
        }
    }

    /// Convenience: the block and position of every instruction, computed
    /// from block lists. Useful for passes that need def locations.
    pub fn inst_locations(&self) -> Vec<Option<(Block, usize)>> {
        let mut loc = vec![None; self.insts.len()];
        for b in self.blocks() {
            for (pos, &id) in self.block(b).insts().iter().enumerate() {
                loc[id.index()] = Some((b, pos));
            }
        }
        loc
    }

    /// The defining block of a value, if it is an instruction result that is
    /// currently linked into a block (parameters define in the entry block).
    pub fn def_block(&self, v: Value, locations: &[Option<(Block, usize)>]) -> Option<Block> {
        match self.value_def(v) {
            ValueDef::Param(_) => Some(self.entry),
            ValueDef::Inst(id) => locations[id.index()].map(|(b, _)| b),
        }
    }

    /// Counts the check instructions currently linked into blocks, by kind:
    /// `(bounds_checks, spec_checks, traps)`.
    pub fn count_checks(&self) -> (usize, usize, usize) {
        let mut n = (0, 0, 0);
        for b in self.blocks() {
            for &id in self.block(b).insts() {
                match &self.inst(id).kind {
                    InstKind::BoundsCheck { .. } => n.0 += 1,
                    InstKind::SpecCheck { .. } => n.1 += 1,
                    InstKind::TrapIfFlagged { .. } => n.2 += 1,
                    _ => {}
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::BinOp;

    fn sample() -> Function {
        Function::new("f", vec![Type::Int, Type::Int], Some(Type::Int))
    }

    #[test]
    fn params_become_values() {
        let f = sample();
        assert_eq!(f.param_count(), 2);
        assert_eq!(f.param(0), Value::new(0));
        assert_eq!(f.value_def(Value::new(1)), ValueDef::Param(1));
        assert_eq!(*f.value_type(Value::new(0)), Type::Int);
    }

    #[test]
    fn create_and_append_inst() {
        let mut f = sample();
        let id = f.create_inst(
            InstKind::Binary {
                op: BinOp::Add,
                lhs: f.param(0),
                rhs: f.param(1),
            },
            Some(Type::Int),
        );
        let entry = f.entry();
        f.append_inst(entry, id);
        let result = f.inst(id).result.unwrap();
        assert_eq!(f.value_def(result), ValueDef::Inst(id));
        f.set_terminator(entry, Terminator::Return(Some(result)));
        assert_eq!(f.block(entry).insts(), &[id]);
        assert!(f.is_terminated(entry));
    }

    #[test]
    #[should_panic(expected = "appending to terminated block")]
    fn append_after_terminator_panics() {
        let mut f = sample();
        let entry = f.entry();
        f.set_terminator(entry, Terminator::Return(None));
        let id = f.create_inst(InstKind::Const(1), Some(Type::Int));
        f.append_inst(entry, id);
    }

    #[test]
    fn remove_inst_unlinks() {
        let mut f = sample();
        let entry = f.entry();
        let id = f.create_inst(InstKind::Const(1), Some(Type::Int));
        f.append_inst(entry, id);
        assert!(f.remove_inst(entry, id));
        assert!(!f.remove_inst(entry, id));
        assert!(f.block(entry).insts().is_empty());
    }

    #[test]
    fn map_all_uses_rewrites_terminator() {
        let mut f = sample();
        let entry = f.entry();
        f.set_terminator(entry, Terminator::Return(Some(f.param(0))));
        f.map_all_uses(|_| Value::new(1));
        match f.block(entry).terminator() {
            Terminator::Return(Some(v)) => assert_eq!(*v, Value::new(1)),
            t => panic!("unexpected {t:?}"),
        }
    }

    #[test]
    fn check_sites_are_sequential() {
        let mut f = sample();
        assert_eq!(f.new_check_site(), CheckSite::new(0));
        assert_eq!(f.new_check_site(), CheckSite::new(1));
        assert_eq!(f.check_site_count(), 2);
    }

    #[test]
    fn locals_are_typed() {
        let mut f = sample();
        let l = f.new_local(Type::array_of(Type::Int));
        assert_eq!(f.local_count(), 1);
        assert!(f.local_type(l).is_array());
    }
}
