//! Interned identifier strings.
//!
//! Function (and report/incident) names travel through the pipeline as
//! [`Symbol`]s — `u32` handles into a process-global interner — so the
//! hot path compares and hashes names as integers and only resolves the
//! text at display time. Interned strings are leaked: the interner is
//! append-only for the life of the process, which is what lets
//! [`Symbol::as_str`] hand out `&'static str` without reference counting.
//!
//! Determinism: two equal strings intern to the same id, always, from any
//! thread. Ids themselves depend on interning order, so nothing persisted
//! (cache keys, metrics JSON, traces) ever stores a raw id — persistence
//! always goes through the resolved text.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string: a cheap, `Copy`, integer-comparable name handle.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its stable handle. Repeated calls with equal
    /// strings return equal symbols; distinct strings never collide.
    pub fn intern(s: &str) -> Symbol {
        let mut i = interner().lock().expect("interner poisoned");
        if let Some(&id) = i.map.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(i.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
        i.strings.push(leaked);
        i.map.insert(leaked, id);
        Symbol(id)
    }

    /// The interned text. O(1); no allocation.
    pub fn as_str(self) -> &'static str {
        let i = interner().lock().expect("interner poisoned");
        i.strings[self.0 as usize]
    }

    /// The raw handle, for dense side tables. Not stable across processes.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The default symbol is the empty string (used by default-initialized
/// reports before a name is attached).
impl Default for Symbol {
    fn default() -> Symbol {
        Symbol::intern("")
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

/// String comparison resolves the text — convenient for tests and display
/// paths; hot-path code compares `Symbol == Symbol` (integer equality).
impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

// `Debug` prints the resolved text (with the id for disambiguation) so
// assertion failures stay readable.
impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}#{}", self.as_str(), self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_strings_intern_to_equal_symbols() {
        let a = Symbol::intern("main");
        let b = Symbol::intern("main");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "main");
        assert_ne!(Symbol::intern("other"), a);
    }

    #[test]
    fn symbol_ids_are_stable_for_identical_modules_across_threads() {
        // The --jobs byte-identity suites cover output; this pins the
        // mechanism: interning the same set of names from many threads
        // concurrently yields one id per name, and re-interning from any
        // thread reproduces it.
        let names: Vec<String> = (0..64).map(|i| format!("fn_{i}")).collect();
        let first: Vec<Symbol> = names.iter().map(|n| Symbol::intern(n)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let names = names.clone();
                std::thread::spawn(move || {
                    names.iter().map(|n| Symbol::intern(n)).collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), first);
        }
    }

    #[test]
    fn hostile_names_round_trip_collision_free() {
        // The same adversarial corpus the JSON-escaping tests use:
        // quotes, backslashes, control characters, non-ASCII, embedded
        // NULs — every one must survive the round trip and none may
        // alias another.
        let corpus = [
            "a\"b\\c",
            "x\ny",
            "\u{1}",
            "tab\there",
            "quote\"inside",
            "back\\slash",
            "null\0byte",
            "ünïcódé·名前",
            "",
            " ",
            "weird\"name",
            "injected \"quote\"",
        ];
        let symbols: Vec<Symbol> = corpus.iter().map(|s| Symbol::intern(s)).collect();
        for (s, sym) in corpus.iter().zip(&symbols) {
            assert_eq!(sym.as_str(), *s);
        }
        for i in 0..symbols.len() {
            for j in 0..symbols.len() {
                assert_eq!(symbols[i] == symbols[j], i == j, "{i} vs {j}");
            }
        }
    }
}
