//! Interpreter, profiler, and cycle cost model for the ABCD IR.
//!
//! The ABCD paper evaluates inside the Jalapeño JVM; this crate is the
//! reproduction's stand-in execution substrate. It provides:
//!
//! * an interpreter ([`Vm`]) for every IR form — locals, SSA, e-SSA, and
//!   optimized code with the paper's compare/trap split
//!   (`spec_check`/`trap_if_flagged`, §6.2),
//! * dynamic-count statistics ([`ExecStats`]) — the unit of the paper's
//!   Figure 6 is dynamic upper-bound check executions,
//! * edge/site [`Profile`]s, which drive ABCD's demand-driven hot-check
//!   selection and PRE profitability test (§6.1),
//! * a cycle [`CostModel`] reproducing the speedup experiment's *shape*
//!   without the 1999 PowerPC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod interp;
mod profile;
mod trap;
mod value;

pub use cost::CostModel;
pub use interp::{ExecStats, Vm, VmOptions};
pub use profile::Profile;
pub use trap::{Trap, TrapKind};
pub use value::{ArrayRef, Heap, HeapArray, RtVal};
