//! The cycle cost model used to reproduce the paper's speedup experiment.
//!
//! The paper measures wall-clock speedup on a PowerPC 604e; we measure
//! model cycles. The model's key ratios follow the paper's §1: a full bounds
//! check "involve[s] a memory load of the array length and two compare
//! operations", so an upper check costs a load plus a compare, a lower check
//! one compare, and the merged unsigned check (§7.2) a load plus one
//! compare. The residual `trap_if_flagged` of the PRE transformation costs
//! one cycle (a flag test), modelling the paper's compare/trap split where
//! the expensive compare is hoisted but the trap point remains.

use abcd_ir::{BinOp, CheckKind, InstKind};

/// Per-instruction-class cycle costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Plain ALU / copy / φ / π / constant.
    pub simple: u64,
    /// Memory access (array load/store).
    pub memory: u64,
    /// Lower-bound check (one compare).
    pub check_lower: u64,
    /// Upper-bound check (length load + compare).
    pub check_upper: u64,
    /// Merged unsigned check (length load + one unsigned compare).
    pub check_both: u64,
    /// Residual trap flag test.
    pub trap_if_flagged: u64,
    /// Multiplication.
    pub mul: u64,
    /// Division / remainder.
    pub div: u64,
    /// Call overhead (frame setup).
    pub call: u64,
    /// Array allocation, per element.
    pub alloc_per_elem: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            simple: 1,
            memory: 2,
            check_lower: 1,
            check_upper: 2,
            check_both: 2,
            trap_if_flagged: 1,
            mul: 3,
            div: 20,
            call: 5,
            alloc_per_elem: 1,
        }
    }
}

impl CostModel {
    /// The cycle cost of one execution of `kind` (allocation cost excludes
    /// the per-element part, which the interpreter adds from the runtime
    /// length).
    pub fn cost_of(&self, kind: &InstKind) -> u64 {
        match kind {
            InstKind::Load { .. } | InstKind::Store { .. } | InstKind::ArrayLen { .. } => {
                self.memory
            }
            InstKind::BoundsCheck { kind, .. } | InstKind::SpecCheck { kind, .. } => match kind {
                CheckKind::Lower => self.check_lower,
                CheckKind::Upper => self.check_upper,
                CheckKind::Both => self.check_both,
            },
            InstKind::TrapIfFlagged { .. } => self.trap_if_flagged,
            InstKind::Binary { op, .. } => match op {
                BinOp::Mul => self.mul,
                BinOp::Div | BinOp::Rem => self.div,
                _ => self.simple,
            },
            InstKind::Call { .. } => self.call,
            InstKind::NewArray { .. } => self.simple,
            // π-assignments are analysis-only renames: a code generator
            // never materializes them, so they execute for free.
            InstKind::Pi { .. } => 0,
            _ => self.simple,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{CheckSite, Value};

    #[test]
    fn upper_check_costs_more_than_lower() {
        let m = CostModel::default();
        let upper = InstKind::BoundsCheck {
            site: CheckSite::new(0),
            array: Value::new(0),
            index: Value::new(1),
            kind: CheckKind::Upper,
        };
        let lower = InstKind::BoundsCheck {
            site: CheckSite::new(0),
            array: Value::new(0),
            index: Value::new(1),
            kind: CheckKind::Lower,
        };
        assert!(m.cost_of(&upper) > m.cost_of(&lower));
        // Merged check is cheaper than the two separate checks combined.
        let both = InstKind::BoundsCheck {
            site: CheckSite::new(0),
            array: Value::new(0),
            index: Value::new(1),
            kind: CheckKind::Both,
        };
        assert!(m.cost_of(&both) < m.cost_of(&upper) + m.cost_of(&lower));
    }
}
