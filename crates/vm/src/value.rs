//! Runtime values and the array heap.

use abcd_ir::Type;
use std::fmt;

/// A runtime value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RtVal {
    /// A 64-bit integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A reference to a heap array.
    Ref(ArrayRef),
}

impl RtVal {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (the verifier makes this
    /// unreachable for verified programs).
    pub fn as_int(self) -> i64 {
        match self {
            RtVal::Int(i) => i,
            v => panic!("expected int, found {v:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a boolean.
    pub fn as_bool(self) -> bool {
        match self {
            RtVal::Bool(b) => b,
            v => panic!("expected bool, found {v:?}"),
        }
    }

    /// The array reference payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an array reference.
    pub fn as_ref(self) -> ArrayRef {
        match self {
            RtVal::Ref(r) => r,
            v => panic!("expected array ref, found {v:?}"),
        }
    }
}

impl fmt::Display for RtVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtVal::Int(i) => write!(f, "{i}"),
            RtVal::Bool(b) => write!(f, "{b}"),
            RtVal::Ref(r) => write!(f, "@{}", r.0),
        }
    }
}

/// An opaque handle to a heap array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArrayRef(pub(crate) usize);

/// A heap-allocated array.
#[derive(Clone, Debug)]
pub struct HeapArray {
    /// Element type.
    pub elem: Type,
    /// Element storage.
    pub data: Vec<RtVal>,
}

/// The array heap: a growing arena of arrays (no deallocation; programs in
/// this reproduction are short-lived benchmark kernels).
#[derive(Clone, Debug, Default)]
pub struct Heap {
    arrays: Vec<HeapArray>,
}

impl Heap {
    /// Allocates an array of `len` elements of type `elem`, zero/default
    /// initialized (`0`, `false`, or a zero-length inner array for nested
    /// array types — matching Java's null-free default of this IR: nested
    /// arrays start as empty arrays rather than null references).
    pub fn alloc(&mut self, elem: &Type, len: usize) -> ArrayRef {
        let default = match elem {
            Type::Int => RtVal::Int(0),
            Type::Bool => RtVal::Bool(false),
            Type::Array(inner) => {
                // Allocate one shared empty inner array to stand for the
                // default; loads of unset slots see a zero-length array.
                let empty = self.alloc(inner, 0);
                RtVal::Ref(empty)
            }
        };
        let r = ArrayRef(self.arrays.len());
        self.arrays.push(HeapArray {
            elem: elem.clone(),
            data: vec![default; len],
        });
        r
    }

    /// The array behind `r`.
    pub fn get(&self, r: ArrayRef) -> &HeapArray {
        &self.arrays[r.0]
    }

    /// Mutable access to the array behind `r`.
    pub fn get_mut(&mut self, r: ArrayRef) -> &mut HeapArray {
        &mut self.arrays[r.0]
    }

    /// The length of the array behind `r`.
    pub fn len_of(&self, r: ArrayRef) -> usize {
        self.arrays[r.0].data.len()
    }

    /// Number of arrays allocated so far.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_int_array_is_zeroed() {
        let mut h = Heap::new_for_test();
        let r = h.alloc(&Type::Int, 3);
        assert_eq!(h.len_of(r), 3);
        assert_eq!(h.get(r).data, vec![RtVal::Int(0); 3]);
    }

    #[test]
    fn nested_array_defaults_to_empty_inner() {
        let mut h = Heap::new_for_test();
        let r = h.alloc(&Type::array_of(Type::Int), 2);
        let inner = h.get(r).data[0].as_ref();
        assert_eq!(h.len_of(inner), 0);
    }

    #[test]
    #[should_panic(expected = "expected int")]
    fn as_int_of_bool_panics() {
        let _ = RtVal::Bool(true).as_int();
    }

    impl Heap {
        fn new_for_test() -> Heap {
            Heap::default()
        }
    }
}
