//! The interpreter.
//!
//! Executes every IR form — locals form, SSA, e-SSA, and ABCD-optimized
//! code (including the speculative `spec_check`/`trap_if_flagged` pair) —
//! which is what makes each compiler pass differentially testable.

use crate::cost::CostModel;
use crate::profile::Profile;
use crate::trap::{Trap, TrapKind};
use crate::value::{Heap, RtVal};
use abcd_ir::{Block, CheckKind, FuncId, Function, InstKind, Module, Terminator, UnOp, Value};

/// Interpreter configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmOptions {
    /// Abort with [`TrapKind::StepLimitExceeded`] after this many
    /// instructions (guards generated test programs against divergence).
    pub step_limit: u64,
    /// Maximum call depth.
    pub call_depth_limit: usize,
    /// The cycle cost model.
    pub cost: CostModel,
    /// Record edge/block/site frequencies into the [`Profile`].
    pub collect_profile: bool,
}

impl Default for VmOptions {
    fn default() -> Self {
        VmOptions {
            step_limit: 500_000_000,
            call_depth_limit: 10_000,
            cost: CostModel::default(),
            collect_profile: true,
        }
    }
}

/// Aggregate dynamic execution statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed (terminators excluded).
    pub insts: u64,
    /// Model cycles (see [`CostModel`]).
    pub cycles: u64,
    /// `bounds_check` executions by kind `[lower, upper, both]`.
    pub checks: [u64; 3],
    /// `spec_check` executions by kind `[lower, upper, both]`.
    pub spec_checks: [u64; 3],
    /// `trap_if_flagged` executions.
    pub trap_tests: u64,
}

impl ExecStats {
    /// Dynamic *upper*-bound check executions, the unit of the paper's
    /// Figure 6 (compensating `spec_check`s count, residual flag tests do
    /// not — the expensive compare is what was hoisted).
    pub fn dynamic_upper_checks(&self) -> u64 {
        self.checks[1] + self.spec_checks[1]
    }

    /// Dynamic lower-bound check executions (including compensating ones).
    pub fn dynamic_lower_checks(&self) -> u64 {
        self.checks[0] + self.spec_checks[0]
    }

    /// All dynamic check executions of any kind.
    pub fn dynamic_checks_total(&self) -> u64 {
        self.checks.iter().sum::<u64>() + self.spec_checks.iter().sum::<u64>()
    }
}

fn kind_index(kind: CheckKind) -> usize {
    match kind {
        CheckKind::Lower => 0,
        CheckKind::Upper => 1,
        CheckKind::Both => 2,
    }
}

/// An interpreter instance: module + heap + accumulated statistics.
///
/// # Example
///
/// ```
/// use abcd_ir::{FunctionBuilder, Module, Type, BinOp};
/// use abcd_vm::{Vm, RtVal};
///
/// let mut m = Module::new();
/// let mut b = FunctionBuilder::new("double", vec![Type::Int], Some(Type::Int));
/// let two = b.iconst(2);
/// let r = b.binary(BinOp::Mul, b.param(0), two);
/// b.ret(Some(r));
/// m.add_function(b.finish()?);
///
/// let mut vm = Vm::new(&m);
/// let out = vm.call_by_name("double", &[RtVal::Int(21)])?;
/// assert_eq!(out, Some(RtVal::Int(42)));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Vm<'m> {
    module: &'m Module,
    options: VmOptions,
    heap: Heap,
    stats: ExecStats,
    profile: Profile,
    output: Vec<i64>,
    steps_left: u64,
}

impl<'m> Vm<'m> {
    /// Creates an interpreter with default options.
    pub fn new(module: &'m Module) -> Self {
        Vm::with_options(module, VmOptions::default())
    }

    /// Creates an interpreter with explicit options.
    pub fn with_options(module: &'m Module, options: VmOptions) -> Self {
        Vm {
            module,
            options,
            heap: Heap::default(),
            stats: ExecStats::default(),
            profile: Profile::new(),
            output: Vec::new(),
            steps_left: options.step_limit,
        }
    }

    /// Allocates an integer array initialized from `data` and returns a
    /// reference usable as a call argument.
    pub fn alloc_int_array(&mut self, data: &[i64]) -> RtVal {
        let r = self.heap.alloc(&abcd_ir::Type::Int, data.len());
        for (i, v) in data.iter().enumerate() {
            self.heap.get_mut(r).data[i] = RtVal::Int(*v);
        }
        RtVal::Ref(r)
    }

    /// Allocates an `int[][]` whose rows are the given (array-reference)
    /// values — a convenience for calling functions that take nested
    /// arrays.
    ///
    /// # Panics
    ///
    /// Panics if any element is not an array reference.
    pub fn alloc_ref_array(&mut self, rows: &[RtVal]) -> RtVal {
        let r = self
            .heap
            .alloc(&abcd_ir::Type::array_of(abcd_ir::Type::Int), rows.len());
        for (i, v) in rows.iter().enumerate() {
            let _ = v.as_ref(); // validate
            self.heap.get_mut(r).data[i] = *v;
        }
        RtVal::Ref(r)
    }

    /// Reads back an integer array (for assertions in tests/examples).
    ///
    /// # Panics
    ///
    /// Panics if `v` is not an array of integers.
    pub fn read_int_array(&self, v: RtVal) -> Vec<i64> {
        self.heap
            .get(v.as_ref())
            .data
            .iter()
            .map(|e| e.as_int())
            .collect()
    }

    /// Calls a function by name.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if execution traps.
    ///
    /// # Panics
    ///
    /// Panics if no function has that name.
    pub fn call_by_name(&mut self, name: &str, args: &[RtVal]) -> Result<Option<RtVal>, Trap> {
        let id = self
            .module
            .function_by_name(name)
            .unwrap_or_else(|| panic!("no function named {name}"));
        self.call(id, args)
    }

    /// Calls a function by id.
    ///
    /// # Errors
    ///
    /// Returns a [`Trap`] if execution traps.
    pub fn call(&mut self, func: FuncId, args: &[RtVal]) -> Result<Option<RtVal>, Trap> {
        self.exec(func, args.to_vec(), 0)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The profile accumulated so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Consumes the interpreter, returning the profile.
    pub fn into_profile(self) -> Profile {
        self.profile
    }

    /// Values emitted by `output` instructions, in order.
    pub fn output(&self) -> &[i64] {
        &self.output
    }

    fn exec(
        &mut self,
        func_id: FuncId,
        args: Vec<RtVal>,
        depth: usize,
    ) -> Result<Option<RtVal>, Trap> {
        let trap = |kind: TrapKind| Trap {
            kind,
            func: func_id,
        };
        if depth > self.options.call_depth_limit {
            return Err(trap(TrapKind::CallDepthExceeded));
        }
        let func: &Function = self.module.function(func_id);
        assert_eq!(args.len(), func.param_count(), "call arity mismatch");

        let mut regs: Vec<Option<RtVal>> = vec![None; func.value_count()];
        for (i, a) in args.into_iter().enumerate() {
            regs[i] = Some(a);
        }
        let mut locals: Vec<Option<RtVal>> = vec![None; func.local_count()];
        let mut flags: Vec<bool> = vec![false; func.check_site_count()];

        let mut block = func.entry();
        let mut came_from: Option<Block> = None;
        if self.options.collect_profile {
            self.profile.record_block(func_id, block);
        }

        'blocks: loop {
            // Phase 1: φs evaluate in parallel against pre-transfer state.
            let insts = func.block(block).insts();
            let mut phi_updates: Vec<(Value, RtVal)> = Vec::new();
            for &id in insts {
                let inst = func.inst(id);
                if let InstKind::Phi { args } = &inst.kind {
                    let from = came_from.expect("phi in entry block");
                    let (_, v) = args
                        .iter()
                        .find(|(p, _)| *p == from)
                        .unwrap_or_else(|| panic!("phi {id} lacks arg for pred {from}"));
                    let val = regs[v.index()].expect("phi argument unset");
                    phi_updates.push((inst.result.expect("phi result"), val));
                } else {
                    break; // φs form a prefix
                }
            }
            for (r, v) in phi_updates {
                regs[r.index()] = Some(v);
            }

            // Phase 2: straight-line execution.
            for &id in insts {
                let inst = func.inst(id);
                if matches!(inst.kind, InstKind::Phi { .. }) {
                    self.bump(&inst.kind, func_id)?;
                    continue;
                }
                self.bump(&inst.kind, func_id)?;
                let get = |v: Value| regs[v.index()].expect("use of unset value");
                let result: Option<RtVal> = match &inst.kind {
                    InstKind::Const(c) => Some(RtVal::Int(*c)),
                    InstKind::BoolConst(c) => Some(RtVal::Bool(*c)),
                    InstKind::Unary { op, arg } => Some(match op {
                        UnOp::Neg => RtVal::Int(get(*arg).as_int().wrapping_neg()),
                        UnOp::Not => RtVal::Bool(!get(*arg).as_bool()),
                    }),
                    InstKind::Binary { op, lhs, rhs } => {
                        let a = get(*lhs).as_int();
                        let b = get(*rhs).as_int();
                        use abcd_ir::BinOp::*;
                        let v = match op {
                            Add => a.wrapping_add(b),
                            Sub => a.wrapping_sub(b),
                            Mul => a.wrapping_mul(b),
                            Div => {
                                if b == 0 {
                                    return Err(trap(TrapKind::DivisionByZero));
                                }
                                a.wrapping_div(b)
                            }
                            Rem => {
                                if b == 0 {
                                    return Err(trap(TrapKind::DivisionByZero));
                                }
                                a.wrapping_rem(b)
                            }
                            And => a & b,
                            Or => a | b,
                            Xor => a ^ b,
                            Shl => a.wrapping_shl(b as u32 & 63),
                            Shr => a.wrapping_shr(b as u32 & 63),
                        };
                        Some(RtVal::Int(v))
                    }
                    InstKind::Compare { op, lhs, rhs } => {
                        Some(RtVal::Bool(op.eval(get(*lhs).as_int(), get(*rhs).as_int())))
                    }
                    InstKind::NewArray { elem, len } => {
                        let n = get(*len).as_int();
                        if n < 0 {
                            return Err(trap(TrapKind::NegativeArrayLength(n)));
                        }
                        self.stats.cycles = self
                            .stats
                            .cycles
                            .saturating_add(self.options.cost.alloc_per_elem * n as u64);
                        Some(RtVal::Ref(self.heap.alloc(elem, n as usize)))
                    }
                    InstKind::ArrayLen { array } => {
                        Some(RtVal::Int(self.heap.len_of(get(*array).as_ref()) as i64))
                    }
                    InstKind::Load { array, index } => {
                        let r = get(*array).as_ref();
                        let i = get(*index).as_int();
                        let len = self.heap.len_of(r) as i64;
                        if i < 0 || i >= len {
                            return Err(trap(TrapKind::UncheckedAccessOutOfBounds {
                                index: i,
                                len,
                            }));
                        }
                        Some(self.heap.get(r).data[i as usize])
                    }
                    InstKind::Store {
                        array,
                        index,
                        value,
                    } => {
                        let r = get(*array).as_ref();
                        let i = get(*index).as_int();
                        let len = self.heap.len_of(r) as i64;
                        if i < 0 || i >= len {
                            return Err(trap(TrapKind::UncheckedAccessOutOfBounds {
                                index: i,
                                len,
                            }));
                        }
                        let v = get(*value);
                        self.heap.get_mut(r).data[i as usize] = v;
                        None
                    }
                    InstKind::BoundsCheck {
                        site,
                        array,
                        index,
                        kind,
                    } => {
                        let i = get(*index).as_int();
                        let len = self.heap.len_of(get(*array).as_ref()) as i64;
                        self.stats.checks[kind_index(*kind)] += 1;
                        if self.options.collect_profile {
                            self.profile.record_site(func_id, *site);
                        }
                        if violates(*kind, i, len) {
                            return Err(trap(TrapKind::BoundsCheckFailed {
                                site: *site,
                                index: i,
                                len,
                            }));
                        }
                        None
                    }
                    InstKind::SpecCheck {
                        site,
                        array,
                        index,
                        kind,
                    } => {
                        let i = get(*index).as_int();
                        let len = self.heap.len_of(get(*array).as_ref()) as i64;
                        self.stats.spec_checks[kind_index(*kind)] += 1;
                        if violates(*kind, i, len) {
                            flags[site.index()] = true;
                        }
                        None
                    }
                    InstKind::TrapIfFlagged {
                        site,
                        array,
                        index,
                        kind,
                    } => {
                        self.stats.trap_tests += 1;
                        if flags[site.index()] {
                            // Re-validate at the original exception point
                            // (the speculative failure may be spurious).
                            let i = get(*index).as_int();
                            let len = self.heap.len_of(get(*array).as_ref()) as i64;
                            if violates(*kind, i, len) {
                                return Err(trap(TrapKind::BoundsCheckFailed {
                                    site: *site,
                                    index: i,
                                    len,
                                }));
                            }
                        }
                        None
                    }
                    InstKind::Phi { .. } => unreachable!("handled above"),
                    InstKind::Pi { input, .. } => Some(get(*input)),
                    InstKind::Copy { arg } => Some(get(*arg)),
                    InstKind::Call { func: callee, args } => {
                        let argv: Vec<RtVal> = args.iter().map(|a| get(*a)).collect();
                        self.exec(*callee, argv, depth + 1)?
                    }
                    InstKind::Output { arg } => {
                        self.output.push(get(*arg).as_int());
                        None
                    }
                    InstKind::GetLocal { local } => {
                        Some(locals[local.index()].expect("read of uninitialized local"))
                    }
                    InstKind::SetLocal { local, value } => {
                        locals[local.index()] = Some(get(*value));
                        None
                    }
                };
                if let Some(r) = inst.result {
                    if let Some(v) = result {
                        regs[r.index()] = Some(v);
                    }
                }
            }

            // Phase 3: control transfer.
            let term = func.block(block).terminator();
            let next = match term {
                Terminator::Jump(d) => *d,
                Terminator::Branch {
                    cond,
                    then_dst,
                    else_dst,
                } => {
                    if regs[cond.index()].expect("branch cond unset").as_bool() {
                        *then_dst
                    } else {
                        *else_dst
                    }
                }
                Terminator::Return(v) => {
                    let out = v.map(|v| regs[v.index()].expect("return value unset"));
                    return Ok(out);
                }
            };
            if self.options.collect_profile {
                self.profile.record_edge(func_id, block, next);
                self.profile.record_block(func_id, next);
            }
            came_from = Some(block);
            block = next;
            continue 'blocks;
        }
    }

    /// Accounts one instruction execution; errors out when the step budget
    /// is exhausted.
    fn bump(&mut self, kind: &InstKind, func: FuncId) -> Result<(), Trap> {
        self.stats.insts += 1;
        self.stats.cycles = self
            .stats
            .cycles
            .saturating_add(self.options.cost.cost_of(kind));
        if self.steps_left == 0 {
            return Err(Trap {
                kind: TrapKind::StepLimitExceeded,
                func,
            });
        }
        self.steps_left -= 1;
        Ok(())
    }
}

/// Does `index` violate `kind` for an array of length `len`?
fn violates(kind: CheckKind, index: i64, len: i64) -> bool {
    match kind {
        CheckKind::Lower => index < 0,
        CheckKind::Upper => index >= len,
        CheckKind::Both => (index as u64) >= (len as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{BinOp, CheckSite, CmpOp, FunctionBuilder, Type};

    /// sum(a) with full checks, in locals form.
    fn checked_sum_module() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("sum", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let acc = b.new_local(Type::Int);
        let i = b.new_local(Type::Int);
        let zero = b.iconst(0);
        b.set_local(acc, zero);
        b.set_local(i, zero);
        let (head, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(head);
        b.switch_to_block(head);
        let iv = b.get_local(i);
        let len = b.array_len(a);
        let c = b.compare(CmpOp::Lt, iv, len);
        b.branch(c, body, exit);
        b.switch_to_block(body);
        let iv2 = b.get_local(i);
        b.bounds_check(a, iv2, CheckKind::Lower);
        b.bounds_check(a, iv2, CheckKind::Upper);
        let x = b.load(a, iv2);
        let av = b.get_local(acc);
        let s = b.binary(BinOp::Add, av, x);
        b.set_local(acc, s);
        let one = b.iconst(1);
        let inc = b.binary(BinOp::Add, iv2, one);
        b.set_local(i, inc);
        b.jump(head);
        b.switch_to_block(exit);
        let out = b.get_local(acc);
        b.ret(Some(out));
        m.add_function(b.finish().unwrap());
        m
    }

    #[test]
    fn checked_sum_runs_in_locals_form() {
        let m = checked_sum_module();
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[1, 2, 3, 4]);
        let r = vm.call_by_name("sum", &[arr]).unwrap();
        assert_eq!(r, Some(RtVal::Int(10)));
        assert_eq!(vm.stats().checks, [4, 4, 0]);
        assert_eq!(vm.stats().dynamic_upper_checks(), 4);
    }

    #[test]
    fn same_result_after_ssa_and_essa() {
        let m = checked_sum_module();
        let mut m2 = m.clone();
        abcd_ssa::module_to_essa(&mut m2).unwrap();

        let mut vm1 = Vm::new(&m);
        let a1 = vm1.alloc_int_array(&[5, -3, 7]);
        let r1 = vm1.call_by_name("sum", &[a1]).unwrap();

        let mut vm2 = Vm::new(&m2);
        let a2 = vm2.alloc_int_array(&[5, -3, 7]);
        let r2 = vm2.call_by_name("sum", &[a2]).unwrap();

        assert_eq!(r1, r2);
        assert_eq!(vm1.stats().checks, vm2.stats().checks);
    }

    #[test]
    fn failing_check_traps_with_site() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], None);
        let a = b.param(0);
        let i = b.iconst(9);
        b.bounds_check(a, i, CheckKind::Upper);
        let _ = b.load(a, i);
        b.ret(None);
        m.add_function(b.finish().unwrap());
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[1, 2]);
        let err = vm.call_by_name("f", &[arr]).unwrap_err();
        assert!(matches!(
            err.kind,
            TrapKind::BoundsCheckFailed {
                index: 9,
                len: 2,
                ..
            }
        ));
    }

    #[test]
    fn spec_check_defers_to_residual_trap() {
        // spec_check (fails, sets flag) … trap_if_flagged re-validates:
        // with an in-bounds index at the original point, execution continues;
        // with an out-of-bounds one it traps there.
        let mut m = Module::new();
        let b = FunctionBuilder::new(
            "f",
            vec![Type::array_of(Type::Int), Type::Int],
            Some(Type::Int),
        );
        let a = b.param(0);
        let orig_index = b.param(1);
        let func = {
            let mut f = b;
            let site = CheckSite::new(0);
            let hoisted = f.iconst(100); // always-failing compensating index
            let id = f.func().value_count(); // keep clippy quiet
            let _ = id;
            // Manually append spec_check + trap_if_flagged.
            let spec = InstKind::SpecCheck {
                site,
                array: a,
                index: hoisted,
                kind: CheckKind::Upper,
            };
            let residual = InstKind::TrapIfFlagged {
                site,
                array: a,
                index: orig_index,
                kind: CheckKind::Upper,
            };
            // builder has no spec helpers (only the optimizer emits them);
            // use the low-level function API.
            let mut raw = f.finish_unverified();
            raw.new_check_site();
            let entry = raw.entry();
            let s = raw.create_inst(spec, None);
            raw.append_inst(entry, s);
            let t = raw.create_inst(residual, None);
            raw.append_inst(entry, t);
            let l = raw.create_inst(
                InstKind::Load {
                    array: a,
                    index: orig_index,
                },
                Some(Type::Int),
            );
            raw.append_inst(entry, l);
            let lv = raw.inst(l).result.unwrap();
            raw.set_terminator(entry, Terminator::Return(Some(lv)));
            raw
        };
        m.add_function(func);

        // Spurious speculative failure: original index in bounds → no trap.
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[7, 8]);
        let r = vm.call_by_name("f", &[arr, RtVal::Int(1)]).unwrap();
        assert_eq!(r, Some(RtVal::Int(8)));
        assert_eq!(vm.stats().spec_checks, [0, 1, 0]);
        assert_eq!(vm.stats().trap_tests, 1);

        // Genuine failure: original index out of bounds → trap at residual.
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[7, 8]);
        let err = vm.call_by_name("f", &[arr, RtVal::Int(5)]).unwrap_err();
        assert!(matches!(
            err.kind,
            TrapKind::BoundsCheckFailed { index: 5, .. }
        ));
    }

    #[test]
    fn unchecked_oob_access_is_distinguished() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", vec![Type::array_of(Type::Int)], Some(Type::Int));
        let a = b.param(0);
        let i = b.iconst(5);
        let x = b.load(a, i); // no check!
        b.ret(Some(x));
        m.add_function(b.finish().unwrap());
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[1]);
        let err = vm.call_by_name("f", &[arr]).unwrap_err();
        assert!(matches!(
            err.kind,
            TrapKind::UncheckedAccessOutOfBounds { index: 5, len: 1 }
        ));
    }

    #[test]
    fn merged_unsigned_check_covers_both_bounds() {
        assert!(violates(CheckKind::Both, -1, 4));
        assert!(violates(CheckKind::Both, 4, 4));
        assert!(!violates(CheckKind::Both, 0, 4));
        assert!(!violates(CheckKind::Both, 3, 4));
        assert!(violates(CheckKind::Lower, -1, 4));
        assert!(!violates(CheckKind::Lower, 0, 4));
        assert!(violates(CheckKind::Upper, 4, 4));
        assert!(!violates(CheckKind::Upper, 3, 4));
    }

    #[test]
    fn profile_records_edges_and_sites() {
        let m = checked_sum_module();
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[1, 2, 3]);
        vm.call_by_name("sum", &[arr]).unwrap();
        let f = m.function_by_name("sum").unwrap();
        let hot = vm.profile().hot_sites();
        assert_eq!(hot.len(), 2); // lower + upper sites
        assert_eq!(hot[0].1, 3); // each executed once per element
                                 // Loop head executed 4 times (3 iterations + exit test).
        assert_eq!(vm.profile().block_count(f, Block::new(1)), 4);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("spin", vec![], None);
        let l = b.new_block();
        b.jump(l);
        b.switch_to_block(l);
        let _ = b.iconst(0);
        b.jump(l);
        m.add_function(b.finish().unwrap());
        let mut vm = Vm::with_options(
            &m,
            VmOptions {
                step_limit: 1000,
                ..VmOptions::default()
            },
        );
        let err = vm.call_by_name("spin", &[]).unwrap_err();
        assert_eq!(err.kind, TrapKind::StepLimitExceeded);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("d", vec![Type::Int], Some(Type::Int));
        let zero = b.iconst(0);
        let q = b.binary(BinOp::Div, b.param(0), zero);
        b.ret(Some(q));
        m.add_function(b.finish().unwrap());
        let mut vm = Vm::new(&m);
        let err = vm.call_by_name("d", &[RtVal::Int(1)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::DivisionByZero);
    }

    #[test]
    fn recursive_calls_work() {
        // fact(n) = n <= 1 ? 1 : n * fact(n - 1)
        let mut m = Module::new();
        let fact_id = abcd_ir::FuncId::new(0);
        let mut b = FunctionBuilder::new("fact", vec![Type::Int], Some(Type::Int));
        let n = b.param(0);
        let one = b.iconst(1);
        let c = b.compare(CmpOp::Le, n, one);
        let (base, rec) = (b.new_block(), b.new_block());
        b.branch(c, base, rec);
        b.switch_to_block(base);
        b.ret(Some(one));
        b.switch_to_block(rec);
        let one2 = b.iconst(1);
        let nm1 = b.binary(BinOp::Sub, n, one2);
        let r = b.call(fact_id, vec![nm1], Some(Type::Int)).unwrap();
        let p = b.binary(BinOp::Mul, n, r);
        b.ret(Some(p));
        m.add_function(b.finish().unwrap());
        abcd_ir::verify_module(&m).unwrap();
        let mut vm = Vm::new(&m);
        let r = vm.call_by_name("fact", &[RtVal::Int(10)]).unwrap();
        assert_eq!(r, Some(RtVal::Int(3_628_800)));
    }

    #[test]
    fn negative_array_length_traps() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", vec![Type::Int], None);
        let n = b.param(0);
        let _ = b.new_array(Type::Int, n);
        b.ret(None);
        m.add_function(b.finish().unwrap());
        let mut vm = Vm::new(&m);
        let err = vm.call_by_name("f", &[RtVal::Int(-4)]).unwrap_err();
        assert_eq!(err.kind, TrapKind::NegativeArrayLength(-4));
    }
}
