//! Execution profiles: edge frequencies and per-site check frequencies.
//!
//! ABCD is demand-driven: the paper applies it to *hot* checks known from
//! profiling, and its PRE extension decides profitability by comparing "the
//! cumulative execution frequency of the insertion points with the frequency
//! of the partially redundant check" (§6.1). This module records exactly
//! those frequencies.

use abcd_ir::{Block, CheckSite, FuncId};
use std::collections::HashMap;

/// Dynamic execution counts gathered by the interpreter.
#[derive(Clone, Debug, Default)]
pub struct Profile {
    edge_counts: HashMap<(FuncId, Block, Block), u64>,
    block_counts: HashMap<(FuncId, Block), u64>,
    site_counts: HashMap<(FuncId, CheckSite), u64>,
}

impl Profile {
    /// Creates an empty profile.
    pub fn new() -> Profile {
        Profile::default()
    }

    pub(crate) fn record_edge(&mut self, func: FuncId, from: Block, to: Block) {
        *self.edge_counts.entry((func, from, to)).or_insert(0) += 1;
    }

    pub(crate) fn record_block(&mut self, func: FuncId, block: Block) {
        *self.block_counts.entry((func, block)).or_insert(0) += 1;
    }

    pub(crate) fn record_site(&mut self, func: FuncId, site: CheckSite) {
        *self.site_counts.entry((func, site)).or_insert(0) += 1;
    }

    /// Executions of CFG edge `from → to` in `func`.
    pub fn edge_count(&self, func: FuncId, from: Block, to: Block) -> u64 {
        self.edge_counts
            .get(&(func, from, to))
            .copied()
            .unwrap_or(0)
    }

    /// Executions of block `block` in `func`.
    pub fn block_count(&self, func: FuncId, block: Block) -> u64 {
        self.block_counts.get(&(func, block)).copied().unwrap_or(0)
    }

    /// Dynamic executions of the check at `site` in `func`
    /// (sums `bounds_check` and `spec_check` executions attributed to it).
    pub fn site_count(&self, func: FuncId, site: CheckSite) -> u64 {
        self.site_counts.get(&(func, site)).copied().unwrap_or(0)
    }

    /// All `(func, site)` pairs with their counts, hottest first — the
    /// "hot bounds checks" work-list a demand-driven dynamic optimizer
    /// starts from.
    pub fn hot_sites(&self) -> Vec<((FuncId, CheckSite), u64)> {
        let mut v: Vec<_> = self.site_counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Total dynamic check executions recorded.
    pub fn total_site_count(&self) -> u64 {
        self.site_counts.values().sum()
    }

    /// Adds `n` executions to the check at `site` in `func`. Public so
    /// profiles can be reconstructed from serialized counts (the `abcdd`
    /// wire protocol ships profiles as plain count triples).
    pub fn add_site_count(&mut self, func: FuncId, site: CheckSite, n: u64) {
        *self.site_counts.entry((func, site)).or_insert(0) += n;
    }

    /// Adds `n` executions to block `block` of `func` (see
    /// [`Profile::add_site_count`]).
    pub fn add_block_count(&mut self, func: FuncId, block: Block, n: u64) {
        *self.block_counts.entry((func, block)).or_insert(0) += n;
    }

    /// Adds `n` traversals of CFG edge `from → to` in `func` (see
    /// [`Profile::add_site_count`]).
    pub fn add_edge_count(&mut self, func: FuncId, from: Block, to: Block, n: u64) {
        *self.edge_counts.entry((func, from, to)).or_insert(0) += n;
    }

    /// All recorded `((func, site), count)` entries, in hash order — sort
    /// before using where determinism matters.
    pub fn site_entries(&self) -> impl Iterator<Item = ((FuncId, CheckSite), u64)> + '_ {
        self.site_counts.iter().map(|(k, c)| (*k, *c))
    }

    /// All recorded `((func, block), count)` entries, in hash order.
    pub fn block_entries(&self) -> impl Iterator<Item = ((FuncId, Block), u64)> + '_ {
        self.block_counts.iter().map(|(k, c)| (*k, *c))
    }

    /// All recorded `((func, from, to), count)` edge entries, in hash order.
    pub fn edge_entries(&self) -> impl Iterator<Item = ((FuncId, Block, Block), u64)> + '_ {
        self.edge_counts.iter().map(|(k, c)| (*k, *c))
    }

    /// Merges another profile into this one (e.g. across multiple runs).
    pub fn merge(&mut self, other: &Profile) {
        for (k, v) in &other.edge_counts {
            *self.edge_counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.block_counts {
            *self.block_counts.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.site_counts {
            *self.site_counts.entry(*k).or_insert(0) += v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_sites_sorted_by_count() {
        let mut p = Profile::new();
        let f = FuncId::new(0);
        for _ in 0..3 {
            p.record_site(f, CheckSite::new(1));
        }
        p.record_site(f, CheckSite::new(0));
        let hot = p.hot_sites();
        assert_eq!(hot[0], ((f, CheckSite::new(1)), 3));
        assert_eq!(hot[1], ((f, CheckSite::new(0)), 1));
        assert_eq!(p.total_site_count(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let f = FuncId::new(0);
        let (b0, b1) = (Block::new(0), Block::new(1));
        let mut a = Profile::new();
        a.record_edge(f, b0, b1);
        let mut b = Profile::new();
        b.record_edge(f, b0, b1);
        b.record_block(f, b0);
        a.merge(&b);
        assert_eq!(a.edge_count(f, b0, b1), 2);
        assert_eq!(a.block_count(f, b0), 1);
    }
}
