//! Runtime traps (the exceptions whose precise semantics motivate the paper).

use abcd_ir::{CheckSite, FuncId};
use std::error::Error;
use std::fmt;

/// Why execution trapped.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TrapKind {
    /// A bounds check failed: `index` violated the checked bound of an
    /// array of length `len`.
    BoundsCheckFailed {
        /// The failing site.
        site: CheckSite,
        /// The out-of-bounds index.
        index: i64,
        /// The array length.
        len: i64,
    },
    /// An (unchecked) load or store went out of bounds. In unoptimized code
    /// this is unreachable — a `BoundsCheck` always precedes the access — so
    /// hitting it after optimization indicates an optimizer soundness bug.
    /// The differential test suite relies on this signal.
    UncheckedAccessOutOfBounds {
        /// The out-of-bounds index.
        index: i64,
        /// The array length.
        len: i64,
    },
    /// `new_array` with a negative length.
    NegativeArrayLength(i64),
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// The call stack exceeded the configured limit.
    CallDepthExceeded,
    /// The instruction budget was exhausted (guards against accidental
    /// non-termination in generated test programs).
    StepLimitExceeded,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrapKind::BoundsCheckFailed { site, index, len } => {
                write!(f, "bounds check {site} failed: index {index}, length {len}")
            }
            TrapKind::UncheckedAccessOutOfBounds { index, len } => write!(
                f,
                "unchecked access out of bounds: index {index}, length {len} (optimizer bug?)"
            ),
            TrapKind::NegativeArrayLength(n) => write!(f, "negative array length {n}"),
            TrapKind::DivisionByZero => write!(f, "division by zero"),
            TrapKind::CallDepthExceeded => write!(f, "call depth exceeded"),
            TrapKind::StepLimitExceeded => write!(f, "step limit exceeded"),
        }
    }
}

/// A trap, located in the function that raised it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trap {
    /// What went wrong.
    pub kind: TrapKind,
    /// The function in which the trap occurred.
    pub func: FuncId,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trap in {}: {}", self.func, self.kind)
    }
}

impl Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let t = Trap {
            kind: TrapKind::BoundsCheckFailed {
                site: CheckSite::new(3),
                index: 10,
                len: 5,
            },
            func: FuncId::new(0),
        };
        let s = t.to_string();
        assert!(s.contains("ck3"));
        assert!(s.contains("index 10"));
    }
}
