//! Integration-level semantics tests for the interpreter: cost accounting,
//! profiles across calls, output ordering, and trap behaviors that the unit
//! tests in `interp.rs` don't cover.

use abcd_frontend::compile;
use abcd_vm::{CostModel, RtVal, TrapKind, Vm, VmOptions};

#[test]
fn cycles_accumulate_per_cost_model() {
    let m = compile("fn f(x: int) -> int { return x + 1; }").unwrap();
    let mut vm = Vm::new(&m);
    vm.call_by_name("f", &[RtVal::Int(1)]).unwrap();
    let first = vm.stats().cycles;
    assert!(first > 0);
    vm.call_by_name("f", &[RtVal::Int(2)]).unwrap();
    assert_eq!(
        vm.stats().cycles,
        first * 2,
        "stats accumulate across calls"
    );
}

#[test]
fn custom_cost_model_changes_cycles_not_results() {
    let m = compile("fn f(a: int[]) -> int { return a[0] * a[1]; }").unwrap();
    let expensive = VmOptions {
        cost: CostModel {
            mul: 100,
            ..CostModel::default()
        },
        ..VmOptions::default()
    };
    let mut vm1 = Vm::new(&m);
    let a1 = vm1.alloc_int_array(&[6, 7]);
    let r1 = vm1.call_by_name("f", &[a1]).unwrap();
    let mut vm2 = Vm::with_options(&m, expensive);
    let a2 = vm2.alloc_int_array(&[6, 7]);
    let r2 = vm2.call_by_name("f", &[a2]).unwrap();
    assert_eq!(r1, r2);
    assert_eq!(r1, Some(RtVal::Int(42)));
    assert!(vm2.stats().cycles > vm1.stats().cycles + 90);
}

#[test]
fn output_preserves_program_order_across_calls() {
    let m = compile(
        "fn emit(x: int) { print(x); print(x * 10); }
         fn main() -> int { emit(1); emit(2); print(99); return 0; }",
    )
    .unwrap();
    let mut vm = Vm::new(&m);
    vm.call_by_name("main", &[]).unwrap();
    assert_eq!(vm.output(), &[1, 10, 2, 20, 99]);
}

#[test]
fn profile_aggregates_sites_across_function_calls() {
    let m = compile(
        "fn touch(a: int[], i: int) -> int { return a[i]; }
         fn main() -> int {
             let a: int[] = new int[4];
             let s: int = 0;
             for (let r: int = 0; r < 5; r = r + 1) { s = s + touch(a, r % 4); }
             return s;
         }",
    )
    .unwrap();
    let mut vm = Vm::new(&m);
    vm.call_by_name("main", &[]).unwrap();
    let touch = m.function_by_name("touch").unwrap();
    let hot = vm.profile().hot_sites();
    // touch has 2 sites (lower+upper), each executed 5 times.
    let touch_counts: Vec<u64> = hot
        .iter()
        .filter(|((f, _), _)| *f == touch)
        .map(|(_, c)| *c)
        .collect();
    assert_eq!(touch_counts, vec![5, 5]);
}

#[test]
fn call_depth_limit_traps_cleanly() {
    let m = compile("fn spin(n: int) -> int { return spin(n + 1); }").unwrap();
    let mut vm = Vm::with_options(
        &m,
        VmOptions {
            call_depth_limit: 50,
            ..VmOptions::default()
        },
    );
    let err = vm.call_by_name("spin", &[RtVal::Int(0)]).unwrap_err();
    assert_eq!(err.kind, TrapKind::CallDepthExceeded);
}

#[test]
fn step_limit_trap_names_the_spinning_function() {
    let m = compile(
        "fn inner() -> int { let s: int = 0; while (true) { s = s + 1; } return s; }
         fn main() -> int { return inner(); }",
    )
    .unwrap();
    let mut vm = Vm::with_options(
        &m,
        VmOptions {
            step_limit: 500,
            ..VmOptions::default()
        },
    );
    let err = vm.call_by_name("main", &[]).unwrap_err();
    assert_eq!(err.kind, TrapKind::StepLimitExceeded);
    assert_eq!(err.func, m.function_by_name("inner").unwrap());
}

#[test]
fn wrapping_arithmetic_matches_rust_semantics() {
    let m = compile(
        "fn f(x: int) -> int { return x + 1; }
         fn g(x: int) -> int { return x * 2; }
         fn h(x: int, y: int) -> int { return x % y; }",
    )
    .unwrap();
    let mut vm = Vm::new(&m);
    assert_eq!(
        vm.call_by_name("f", &[RtVal::Int(i64::MAX)]).unwrap(),
        Some(RtVal::Int(i64::MIN))
    );
    assert_eq!(
        vm.call_by_name("g", &[RtVal::Int(i64::MAX)]).unwrap(),
        Some(RtVal::Int(-2))
    );
    // Rust-style remainder: sign follows the dividend.
    assert_eq!(
        vm.call_by_name("h", &[RtVal::Int(-7), RtVal::Int(3)])
            .unwrap(),
        Some(RtVal::Int(-1))
    );
}

#[test]
fn shifts_mask_their_amount() {
    let m = compile(
        "fn shl(x: int, s: int) -> int { return x << s; }
         fn shr(x: int, s: int) -> int { return x >> s; }",
    )
    .unwrap();
    let mut vm = Vm::new(&m);
    // Shift of 64 is masked to 0, like Rust's wrapping_shl.
    assert_eq!(
        vm.call_by_name("shl", &[RtVal::Int(5), RtVal::Int(64)])
            .unwrap(),
        Some(RtVal::Int(5))
    );
    // Arithmetic right shift preserves sign.
    assert_eq!(
        vm.call_by_name("shr", &[RtVal::Int(-8), RtVal::Int(1)])
            .unwrap(),
        Some(RtVal::Int(-4))
    );
}

#[test]
fn collect_profile_off_records_nothing() {
    let m = compile("fn f(a: int[]) -> int { return a[0]; }").unwrap();
    let mut vm = Vm::with_options(
        &m,
        VmOptions {
            collect_profile: false,
            ..VmOptions::default()
        },
    );
    let a = vm.alloc_int_array(&[7]);
    vm.call_by_name("f", &[a]).unwrap();
    assert_eq!(vm.profile().total_site_count(), 0);
    // …but stats still count.
    assert_eq!(vm.stats().dynamic_checks_total(), 2);
}

#[test]
fn read_int_array_reflects_stores() {
    let m = compile("fn put(a: int[], i: int, v: int) { a[i] = v; }").unwrap();
    let mut vm = Vm::new(&m);
    let a = vm.alloc_int_array(&[0, 0, 0]);
    vm.call_by_name("put", &[a, RtVal::Int(1), RtVal::Int(42)])
        .unwrap();
    assert_eq!(vm.read_int_array(a), vec![0, 42, 0]);
}
