//! Behavioral tests of the demand prover that cut across modules:
//! memoization/subsumption economics, π-chain reasoning depth, and the
//! PRE prover's recursive salvage.

use abcd::{
    DemandProver, ExhaustiveDistances, InequalityGraph, PreOutcome, PreProver, Problem, Vertex,
};
use abcd_ir::{CheckKind, Function, InstKind, Value};

fn essa(src: &str) -> Function {
    let mut m = abcd_frontend::compile(src).unwrap();
    abcd_ssa::module_to_essa(&mut m).unwrap();
    let id = m.functions().next().unwrap().0;
    let mut f = m.function(id).clone();
    abcd_analysis::cleanup(&mut f);
    f
}

fn upper_checks(f: &Function) -> Vec<(Value, Value)> {
    let mut out = Vec::new();
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::BoundsCheck {
                array,
                index,
                kind: CheckKind::Upper,
                ..
            } = f.inst(id).kind
            {
                out.push((array, index));
            }
        }
    }
    out
}

#[test]
fn memo_subsumption_makes_repeat_queries_cheap() {
    let f = essa(
        "fn f(a: int[]) -> int {
            let s: int = 0;
            for (let i: int = 0; i < a.length; i = i + 1) {
                s = s + a[i] + a[i] + a[i] + a[i];
            }
            return s;
        }",
    );
    let g = InequalityGraph::build(&f, Problem::Upper, None);
    let checks = upper_checks(&f);
    assert_eq!(checks.len(), 4);
    let (array, _) = checks[0];
    let mut p = DemandProver::new(&g, Vertex::ArrayLen(array));

    assert!(p.demand_prove(Vertex::Value(checks[0].1), -1));
    let first = p.steps;
    for (_, idx) in &checks[1..] {
        assert!(p.demand_prove(Vertex::Value(*idx), -1));
    }
    let rest = p.steps - first;
    // The later queries ride the memo: strictly cheaper per check than the
    // first (they are subsumed π-chains of the proven one).
    assert!(
        rest < first * 3,
        "memo ineffective: first={first}, rest-of-3={rest}"
    );
}

#[test]
fn long_pi_chains_prove_with_linear_steps() {
    // i, i-1, i-2, … i-6 all checked: each proof is a short walk, not a
    // re-exploration of the whole graph.
    let f = essa(
        "fn f(a: int[], i: int) -> int {
            let s: int = 0;
            if (i >= 6) {
                if (i < a.length) {
                    s = a[i] + a[i-1] + a[i-2] + a[i-3] + a[i-4] + a[i-5] + a[i-6];
                }
            }
            return s;
        }",
    );
    let g = InequalityGraph::build(&f, Problem::Upper, None);
    let checks = upper_checks(&f);
    assert_eq!(checks.len(), 7);
    let (array, _) = checks[0];
    let mut p = DemandProver::new(&g, Vertex::ArrayLen(array));
    for (_, idx) in &checks {
        assert!(p.demand_prove(Vertex::Value(*idx), -1), "{f}");
    }
    assert!(
        p.steps < 40 * checks.len() as u64,
        "steps blew up: {}",
        p.steps
    );

    // Lower bounds hold too (i ≥ 6 covers the −6 offset exactly).
    let gl = InequalityGraph::build(&f, Problem::Lower, None);
    let mut pl = DemandProver::new(&gl, Vertex::Const(0));
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::BoundsCheck {
                index,
                kind: CheckKind::Lower,
                ..
            } = f.inst(id).kind
            {
                assert!(pl.demand_prove(Vertex::Value(index), 0), "{f}");
            }
        }
    }
}

#[test]
fn off_by_one_over_the_guard_fails_exactly() {
    // i ≥ 6 proves a[i−6] but must NOT prove a[i−7].
    let f = essa(
        "fn f(a: int[], i: int) -> int {
            if (i >= 6) {
                if (i < a.length) {
                    return a[i - 7];
                }
            }
            return 0;
        }",
    );
    let gl = InequalityGraph::build(&f, Problem::Lower, None);
    let mut pl = DemandProver::new(&gl, Vertex::Const(0));
    let mut lower = None;
    for b in f.blocks() {
        for &id in f.block(b).insts() {
            if let InstKind::BoundsCheck {
                index,
                kind: CheckKind::Lower,
                ..
            } = f.inst(id).kind
            {
                lower = Some(index);
            }
        }
    }
    assert!(!pl.demand_prove(Vertex::Value(lower.unwrap()), 0), "{f}");
    // The exhaustive solver agrees: the distance is exactly one too weak.
    let ex = ExhaustiveDistances::compute(&gl, Vertex::Const(0));
    assert_eq!(ex.distance(&gl, Vertex::Value(lower.unwrap())), Some(1));
}

#[test]
fn pre_salvage_recurses_through_nested_phis() {
    // Both the inner and outer loops carry `limit`; the single unknown is
    // its initial value, so one compensating check at the entry edge fixes
    // the innermost check — found through two levels of φ.
    let f = essa(
        "fn f(a: int[], n: int) -> int {
            let limit: int = n;
            let s: int = 0;
            for (let r: int = 0; r < 3; r = r + 1) {
                for (let j: int = 0; j < limit; j = j + 1) {
                    s = s + a[j];
                }
                limit = limit - 1;
            }
            return s;
        }",
    );
    let g = InequalityGraph::build(&f, Problem::Upper, None);
    let (array, index) = upper_checks(&f)[0];
    let mut pre = PreProver::new(&g, Vertex::ArrayLen(array), None);
    match pre.demand_prove(Vertex::Value(index), -1) {
        PreOutcome::ProvenWithInsertions(points) => {
            assert_eq!(points.len(), 1, "{points:?}\n{f}");
        }
        other => panic!("expected salvage, got {other:?}\n{f}"),
    }
}

#[test]
fn unrelated_array_does_not_leak_constraints() {
    // The guard is on b.length; checks on a must stay.
    let f = essa(
        "fn f(a: int[], b: int[], i: int) -> int {
            if (i >= 0) {
                if (i < b.length) {
                    return a[i];
                }
            }
            return 0;
        }",
    );
    let g = InequalityGraph::build(&f, Problem::Upper, None);
    let (array, index) = upper_checks(&f)[0];
    let mut p = DemandProver::new(&g, Vertex::ArrayLen(array));
    assert!(!p.demand_prove(Vertex::Value(index), -1), "{f}");
    // …but the same index against b would be fine.
    let b_param = f.param(1);
    let mut pb = DemandProver::new(&g, Vertex::ArrayLen(b_param));
    assert!(pb.demand_prove(Vertex::Value(index), -1), "{f}");
}

#[test]
fn equality_guard_proves_both_directions_without_cycles() {
    // i == n-1 with n = a.length: both `a[i]` (upper via equality) and the
    // graph's acyclicity (no φ-free cycle from the == encoding) hold.
    let f = essa(
        "fn f(a: int[], i: int) -> int {
            let n: int = a.length;
            if (i == n - 1) {
                if (i >= 0) {
                    return a[i];
                }
            }
            return 0;
        }",
    );
    let g = InequalityGraph::build(&f, Problem::Upper, None);
    let (array, index) = upper_checks(&f)[0];
    let mut p = DemandProver::new(&g, Vertex::ArrayLen(array));
    assert!(p.demand_prove(Vertex::Value(index), -1), "{f}");
    // And mirrored operands:
    let f2 = essa(
        "fn f(a: int[], i: int) -> int {
            let n: int = a.length;
            if (n - 1 == i) {
                if (0 <= i) {
                    return a[i];
                }
            }
            return 0;
        }",
    );
    let g2 = InequalityGraph::build(&f2, Problem::Upper, None);
    let (array2, index2) = upper_checks(&f2)[0];
    let mut p2 = DemandProver::new(&g2, Vertex::ArrayLen(array2));
    assert!(p2.demand_prove(Vertex::Value(index2), -1), "{f2}");
}
