//! An exhaustive (non-demand-driven) distance solver for the inequality
//! graph — the alternative §5 of the paper sketches before rejecting it for
//! JIT use ("An exhaustive algorithm analyzes all bounds checks in the
//! program, which in the context of shortest paths means computing the
//! single-source shortest-path problem for each array-length vertex").
//!
//! The generalized distance of §4 is the value of the equation system
//!
//! ```text
//! D(source) = 0
//! D(v)      = max over in-edges (D(u) + w)   if v is a max (φ) vertex
//! D(v)      = min over in-edges (D(u) + w)   otherwise
//! ```
//!
//! under the *finite hyperpath* semantics. That is the **least fixpoint**
//! of the (monotone) system, computed here by Kleene iteration from ⊥:
//!
//! 1. vertices with no edge path from the source (or from a constant axiom)
//!    are unconstrained — pinned at `+∞` up front, so they act as the
//!    identity at min vertices and poison max vertices, as they should;
//! 2. everything else starts at `−∞` and rises monotonically; a value that
//!    is still rising after `|V| + 2` rounds can only be fed by a cycle
//!    with positive gain — the paper's *amplifying* cycle — and is pinned
//!    at `+∞` (re-iterating until no new pins appear);
//! 3. the §4 consistency invariant (every cycle passes a φ; no φ-free
//!    cycles, which the graph builder enforces) guarantees `−∞` is never a
//!    self-justifying fixpoint, so surviving `−∞` means "no derivation",
//!    reported as unconstrained.
//!
//! Besides reproducing the paper's cost comparison (work proportional to
//! the whole graph instead of to the queried check), this solver is an
//! independent oracle: the test-suite property "`demandProve` never proves
//! more than the exhaustive distances allow" cross-validates the
//! demand-driven prover's soundness on random programs.

use crate::graph::{InequalityGraph, Problem, Vertex, VertexId};

/// Sentinel for "unconstrained" (no bounding hyperpath from the source).
const INF: i64 = i64::MAX / 4;
/// Kleene bottom ("no derivation found yet").
const BOT: i64 = i64::MIN / 4;

/// Beyond this many vertices a dense n×n matrix stops paying for itself
/// (and its memory quadratically stops being funny); the dense relaxation
/// silently falls back to the sparse edge lists — the fixpoint is
/// identical either way.
const DENSE_LIMIT: usize = 1024;

/// How the Kleene rounds examine the graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Relaxation {
    /// Walk each vertex's sparse in-edge list (the batch backend).
    Sparse,
    /// Collapse parallel edges into a dense difference-bound matrix and
    /// relax whole rows (the dbm/octagon-closure backend). Falls back to
    /// sparse past [`DENSE_LIMIT`] vertices.
    Dense,
}

/// Parallel edges collapsed into one weight per `(dst, src)` pair — max
/// weight into max vertices, min weight into min vertices, which preserves
/// the fixpoint exactly because `max/min` distribute over `d[u] + w`.
struct DenseRows {
    n: usize,
    weight: Vec<i64>,
    present: Vec<bool>,
}

/// Reusable buffers for [`ExhaustiveDistances::compute_with`] — the sweep
/// backends' share of the zero-allocation prove path. A retired table
/// donates its distance vector back via [`ExhaustiveDistances::into_dist`].
#[derive(Debug, Default)]
pub struct SweepScratch {
    /// Donated distance storage for the next table.
    dist: Vec<i64>,
    axiom: Vec<bool>,
    reach: Vec<bool>,
    work: Vec<u32>,
    pinned: Vec<bool>,
    dense_weight: Vec<i64>,
    dense_present: Vec<bool>,
}

impl SweepScratch {
    /// Donates a retired table's distance vector back for reuse.
    pub fn adopt(&mut self, table: ExhaustiveDistances) {
        self.dist = table.into_dist();
    }
}

impl DenseRows {
    fn build(graph: &InequalityGraph, n: usize, scratch: &mut SweepScratch) -> DenseRows {
        let mut weight = std::mem::take(&mut scratch.dense_weight);
        weight.clear();
        weight.resize(n * n, 0);
        let mut present = std::mem::take(&mut scratch.dense_present);
        present.clear();
        present.resize(n * n, false);
        let mut rows = DenseRows { n, weight, present };
        for v in 0..n {
            let vid = VertexId::from_index(v);
            let keep_max = graph.is_max(vid);
            for e in graph.in_edges(vid) {
                let cell = v * n + e.src.index();
                if !rows.present[cell] {
                    rows.present[cell] = true;
                    rows.weight[cell] = e.weight;
                } else if keep_max {
                    rows.weight[cell] = rows.weight[cell].max(e.weight);
                } else {
                    rows.weight[cell] = rows.weight[cell].min(e.weight);
                }
            }
        }
        rows
    }
}

/// Distances from one source vertex to every vertex of the graph.
#[derive(Clone, Debug)]
pub struct ExhaustiveDistances {
    dist: Vec<i64>,
    source_vertex: Vertex,
    source_potential: Option<i64>,
    problem: Problem,
    /// Vertex-relaxation steps performed (the cost metric to compare with
    /// [`DemandProver::steps`](crate::DemandProver)): one per sparse
    /// vertex relaxation, one per matrix cell examined in dense mode.
    pub steps: u64,
    /// The fuel budget ran out mid-sweep; `dist` is partial and callers
    /// must discard the table (fail-open).
    aborted: bool,
    /// Some accumulation saturated against the sentinel range; distances
    /// are conservative but no longer exact, so sweep-backed provers
    /// refuse to prove from them.
    overflowed: bool,
}

impl ExhaustiveDistances {
    /// Runs the unbudgeted single-source computation for `source` over
    /// `graph` with the sparse relaxation.
    pub fn compute(graph: &InequalityGraph, source: Vertex) -> ExhaustiveDistances {
        Self::compute_budgeted(graph, source, u64::MAX, Relaxation::Sparse)
    }

    /// Did the fuel budget run out mid-sweep?
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Did any accumulation saturate (distances conservative, not exact)?
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Runs the single-source computation for `source` over `graph`,
    /// spending at most `fuel` relaxation steps (the sweep aborts past the
    /// budget — check [`ExhaustiveDistances::aborted`]) and relaxing per
    /// `relaxation`.
    pub fn compute_budgeted(
        graph: &InequalityGraph,
        source: Vertex,
        fuel: u64,
        relaxation: Relaxation,
    ) -> ExhaustiveDistances {
        Self::compute_with(
            graph,
            source,
            fuel,
            relaxation,
            &mut SweepScratch::default(),
        )
    }

    /// The retired table's distance storage, for donation back into a
    /// [`SweepScratch`].
    pub fn into_dist(self) -> Vec<i64> {
        self.dist
    }

    /// Like [`ExhaustiveDistances::compute_budgeted`], running entirely in
    /// the donated scratch buffers: with warm capacities (a previous sweep
    /// of the same or a larger graph) the computation performs no heap
    /// allocation.
    pub fn compute_with(
        graph: &InequalityGraph,
        source: Vertex,
        fuel: u64,
        relaxation: Relaxation,
        scratch: &mut SweepScratch,
    ) -> ExhaustiveDistances {
        let n = graph.vertex_count();
        let src = graph.lookup(source);
        let source_potential = src.and_then(|s| graph.potential(s));
        let mut dist = std::mem::take(&mut scratch.dist);
        dist.clear();
        dist.resize(n, BOT);
        let mut this = ExhaustiveDistances {
            dist,
            source_vertex: source,
            source_potential,
            problem: graph.problem(),
            steps: 0,
            aborted: false,
            overflowed: false,
        };
        if n == 0 {
            return this;
        }
        let dense = match relaxation {
            Relaxation::Dense if n <= DENSE_LIMIT => Some(DenseRows::build(graph, n, scratch)),
            _ => None,
        };

        // Axioms: the source, and — when the source is a constant —
        // every constant-potential vertex (exact numeric relation,
        // computed in i128 so adversarial constants saturate instead of
        // wrapping).
        let mut axiom = std::mem::take(&mut scratch.axiom);
        axiom.clear();
        axiom.resize(n, false);
        if let Some(s) = src {
            this.dist[s.index()] = 0;
            axiom[s.index()] = true;
        }
        if let Some(pa) = source_potential {
            for (v, is_axiom) in axiom.iter_mut().enumerate() {
                if let Some(pv) = graph.potential(VertexId::from_index(v)) {
                    let rel = pv as i128 - pa as i128;
                    let rel = if rel >= INF as i128 {
                        this.overflowed = true;
                        INF
                    } else if rel <= BOT as i128 {
                        this.overflowed = true;
                        BOT + 1
                    } else {
                        rel as i64
                    };
                    this.dist[v] = this.dist[v].max(rel);
                    *is_axiom = true;
                }
            }
        }

        // Step 1: plain edge reachability from the axioms over the graph's
        // out-neighbor CSR; everything not reached carries no constraint
        // at all.
        let mut reach = std::mem::take(&mut scratch.reach);
        reach.clear();
        reach.extend_from_slice(&axiom);
        let mut work = std::mem::take(&mut scratch.work);
        work.clear();
        work.extend((0..n as u32).filter(|&v| axiom[v as usize]));
        while let Some(v) = work.pop() {
            for &w in graph.out_neighbors(VertexId::from_index(v as usize)) {
                if !reach[w as usize] {
                    reach[w as usize] = true;
                    work.push(w);
                }
            }
        }
        for v in 0..n {
            if !reach[v] && !axiom[v] {
                this.dist[v] = INF;
            }
        }

        // Steps 2–3: Kleene from below with amplification pinning.
        // ⊥ participates as a genuine −∞: max ignores not-yet-derived
        // inputs (and converges upward as they appear), min is dragged to
        // ⊥ by them (and rises together with them) — exactly the monotone
        // Kleene step.
        let relax = |dist: &[i64], v: usize, overflowed: &mut bool| -> (i64, u64) {
            let vid = VertexId::from_index(v);
            let is_max = graph.is_max(vid);
            let mut val = if is_max { BOT } else { INF };
            match &dense {
                Some(rows) => {
                    let row = v * rows.n;
                    for (u, &du) in dist.iter().enumerate().take(rows.n) {
                        if !rows.present[row + u] {
                            continue;
                        }
                        let via = add(du, rows.weight[row + u], overflowed);
                        val = if is_max { val.max(via) } else { val.min(via) };
                    }
                    (val, rows.n as u64)
                }
                None => {
                    for e in graph.in_edges(vid) {
                        let via = add(dist[e.src.index()], e.weight, overflowed);
                        val = if is_max { val.max(via) } else { val.min(via) };
                    }
                    (val, 1)
                }
            }
        };
        let mut pinned = std::mem::take(&mut scratch.pinned);
        pinned.clear();
        pinned.resize(n, false);
        'sweep: loop {
            let rounds = n + 2;
            let mut changed_last = false;
            for _ in 0..rounds {
                changed_last = false;
                for v in 0..n {
                    if axiom[v] || pinned[v] || !reach[v] {
                        continue;
                    }
                    if graph.in_edges(VertexId::from_index(v)).is_empty() {
                        continue;
                    }
                    if this.steps >= fuel {
                        // Fail-open: out of budget mid-sweep — the partial
                        // table must not be consulted.
                        this.aborted = true;
                        break 'sweep;
                    }
                    let (val, cost) = relax(&this.dist, v, &mut this.overflowed);
                    this.steps += cost;
                    if val > this.dist[v] {
                        this.dist[v] = val;
                        changed_last = true;
                    }
                }
                if !changed_last {
                    break;
                }
            }
            if !changed_last {
                break;
            }
            // Still rising after |V|+2 rounds: pin every vertex that an
            // extra round would still improve (amplifying cycles).
            let mut pinned_any = false;
            for v in 0..n {
                if axiom[v] || pinned[v] || !reach[v] {
                    continue;
                }
                if graph.in_edges(VertexId::from_index(v)).is_empty() {
                    continue;
                }
                let (val, _) = relax(&this.dist, v, &mut this.overflowed);
                if val > this.dist[v] {
                    this.dist[v] = INF;
                    pinned[v] = true;
                    pinned_any = true;
                }
            }
            if !pinned_any {
                break;
            }
        }

        // Step 4: downward correction (narrowing). The from-below sweep
        // over-pins: a positive-gain cycle that a parallel edge clamps at a
        // min vertex (`x ≤ x_prev + 1` next to `x ≤ limit`) rises by one
        // per trip, so its fixpoint is O(weight) rounds away while the
        // round bound is O(|V|) — the pinning pass then widens the whole
        // cycle to `INF` even though it converges. The pinned table is a
        // post-fixpoint (every coordinate ≥ the least fixpoint), so
        // re-applying the equations downward only removes widening
        // overshoot and every intermediate table stays sound; genuinely
        // amplifying cycles keep `INF` because their φ max holds them up.
        if !this.aborted {
            'narrow: for _ in 0..(n + 2) {
                let mut changed = false;
                for v in 0..n {
                    if axiom[v] || !reach[v] {
                        continue;
                    }
                    if graph.in_edges(VertexId::from_index(v)).is_empty() {
                        continue;
                    }
                    if this.steps >= fuel {
                        this.aborted = true;
                        break 'narrow;
                    }
                    let (val, cost) = relax(&this.dist, v, &mut this.overflowed);
                    this.steps += cost;
                    if val < this.dist[v] {
                        this.dist[v] = val;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        // Return every working buffer for the next sweep.
        if let Some(rows) = dense {
            scratch.dense_weight = rows.weight;
            scratch.dense_present = rows.present;
        }
        scratch.axiom = axiom;
        scratch.reach = reach;
        scratch.work = work;
        scratch.pinned = pinned;
        this
    }

    /// The distance to `v`, or `None` if `v` is unconstrained (no bounding
    /// hyperpath from the source, or an amplifying cycle).
    pub fn distance(&self, graph: &InequalityGraph, v: Vertex) -> Option<i64> {
        let id = graph.lookup(v)?;
        let d = self.dist[id.index()];
        (d < INF && d > BOT).then_some(d)
    }

    /// Is `target − source ≤ c` implied? (The exhaustive analogue of
    /// [`DemandProver::demand_prove`](crate::DemandProver::demand_prove).)
    pub fn proves(&self, graph: &InequalityGraph, target: Vertex, c: i64) -> bool {
        if target == self.source_vertex {
            return c >= 0;
        }
        // Constant targets against constant sources resolve numerically
        // (in i128 — near-i64::MAX constants must not wrap).
        if let (Vertex::Const(k), Some(pa)) = (target, self.source_potential) {
            let pk = match self.problem {
                Problem::Upper => k as i128,
                Problem::Lower => -(k as i128),
            };
            if pk - pa as i128 <= c as i128 {
                return true;
            }
        }
        match self.distance(graph, target) {
            Some(d) => d <= c,
            None => false,
        }
    }
}

/// Sentinel-aware addition. A finite sum that collides with the sentinel
/// range saturates (which is conservative: `INF` keeps the check,
/// `BOT + 1` over-claims the distance only upward) and raises the
/// overflow flag so sweep-backed provers stop trusting the table.
fn add(a: i64, b: i64, overflowed: &mut bool) -> i64 {
    if a >= INF {
        INF
    } else if a <= BOT {
        BOT
    } else {
        let sum = a as i128 + b as i128;
        if sum >= INF as i128 {
            *overflowed = true;
            INF
        } else if sum <= BOT as i128 {
            *overflowed = true;
            BOT + 1
        } else {
            sum as i64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Problem;
    use crate::solver::DemandProver;
    use abcd_ir::{CheckKind, Function, InstKind};

    fn essa(src: &str) -> Function {
        let mut m = abcd_frontend::compile(src).unwrap();
        abcd_ssa::module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        m.function(id).clone()
    }

    fn checks(f: &Function) -> Vec<(abcd_ir::Value, abcd_ir::Value, CheckKind)> {
        let mut out = Vec::new();
        for b in f.blocks() {
            for &id in f.block(b).insts() {
                if let InstKind::BoundsCheck {
                    array, index, kind, ..
                } = f.inst(id).kind
                {
                    out.push((array, index, kind));
                }
            }
        }
        out
    }

    /// On a battery of shapes, the demand prover must never prove anything
    /// the exhaustive solver refutes (soundness cross-validation); on these
    /// specific programs the two agree exactly.
    #[test]
    fn agrees_with_demand_prover_on_suite_shapes() {
        let sources = [
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[], i: int) -> int {
                if (0 <= i) { if (i < a.length) { return a[i]; } }
                return 0;
            }",
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[]) -> int {
                let limit: int = a.length;
                let s: int = 0;
                while (limit > 0) {
                    limit = limit - 1;
                    s = s + a[limit];
                }
                return s;
            }",
            "fn f() -> int { let a: int[] = new int[10]; return a[9] + a[0]; }",
            "fn f(a: int[]) {
                let limit: int = a.length;
                let st: int = 0 - 1;
                while (st < limit) {
                    st = st + 1;
                    limit = limit - 1;
                    for (let j: int = st; j < limit; j = j + 1) {
                        let x: int = a[j];
                        let y: int = a[j + 1];
                    }
                }
            }",
        ];
        for src in sources {
            let f = essa(src);
            for problem in [Problem::Upper, Problem::Lower] {
                let g = InequalityGraph::build(&f, problem, None);
                for (array, index, _) in checks(&f) {
                    let (source, c) = match problem {
                        Problem::Upper => (Vertex::ArrayLen(array), -1),
                        Problem::Lower => (Vertex::Const(0), 0),
                    };
                    let mut demand = DemandProver::new(&g, source);
                    let d = demand.demand_prove(Vertex::Value(index), c);
                    let ex = ExhaustiveDistances::compute(&g, source);
                    let e = ex.proves(&g, Vertex::Value(index), c);
                    assert_eq!(d, e, "{problem:?} disagreement on {index} in\n{src}\n{f}");
                }
            }
        }
    }

    #[test]
    fn distance_matches_paper_figure4() {
        // The paper computes distance(A.length, j2) = −2 in Figure 4.
        let f = essa(
            "fn f(a: int[]) {
                let limit: int = a.length;
                let st: int = 0 - 1;
                while (st < limit) {
                    st = st + 1;
                    limit = limit - 1;
                    for (let j: int = st; j < limit; j = j + 1) {
                        let x: int = a[j];
                    }
                }
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Upper)
            .unwrap();
        let ex = ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array));
        assert_eq!(
            ex.distance(&g, Vertex::Value(index)),
            Some(-2),
            "paper's Figure 4 distance\n{f}"
        );
        assert!(ex.proves(&g, Vertex::Value(index), -1));
    }

    #[test]
    fn interdependent_phis_settle_at_weakest_entry() {
        // Two φs feeding each other through zero-weight π/check chains must
        // settle at max of their entries, not be declared amplifying.
        let f = essa(
            "fn f(a: int[], x: int) -> int {
                let s: int = 0;
                a[x] = 1;
                for (let i: int = 0; i < a.length; i = i + 1) {
                    if (x < 0) { x = 1; }
                    s = s + a[x];
                }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Lower, None);
        let lower_checks: Vec<_> = checks(&f)
            .into_iter()
            .filter(|(_, _, k)| *k == CheckKind::Lower)
            .collect();
        let ex = ExhaustiveDistances::compute(&g, Vertex::Const(0));
        let mut demand = DemandProver::new(&g, Vertex::Const(0));
        for (_, index, _) in lower_checks {
            assert_eq!(
                demand.demand_prove(Vertex::Value(index), 0),
                ex.proves(&g, Vertex::Value(index), 0),
                "lower disagreement on {index}\n{f}"
            );
        }
    }

    #[test]
    fn clamped_cycle_narrows_back_from_the_widening_pin() {
        // Regression (found by the backend-parity sweep on the `mpeg`
        // kernel): a constant-bound loop over a constant-size allocation
        // forms a +1-gain cycle clamped by a parallel min edge (`i ≤ 63`).
        // The fixpoint climb is O(bound) rounds, the sweep's round budget
        // is O(|V|), so the pinning pass used to widen the whole cycle to
        // INF and refute a check the demand prover proves via potentials.
        // The downward-correction rounds must recover the exact fixpoint.
        let f = essa(
            "fn f() -> int {
                let a: int[] = new int[64];
                let s: int = 0;
                for (let i: int = 0; i < 64; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Upper)
            .unwrap();
        let source = Vertex::ArrayLen(array);
        let mut demand = DemandProver::new(&g, source);
        assert!(demand.demand_prove(Vertex::Value(index), -1), "{f}");
        let ex = ExhaustiveDistances::compute(&g, source);
        assert!(
            ex.proves(&g, Vertex::Value(index), -1),
            "sweep must agree with the demand prover on the clamped cycle\n{f}"
        );
    }

    #[test]
    fn amplifying_cycle_yields_unbounded_distance() {
        // j grows without a length bound: its φ must be +∞ in the upper
        // problem (the amplification pin), never a finite value.
        let f = essa(
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let j: int = 0; j < n; j = j + 1) { s = s + a[j]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Upper)
            .unwrap();
        let ex = ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array));
        assert!(!ex.proves(&g, Vertex::Value(index), -1));
        // ... while the lower problem proves j ≥ 0 (negative cycle broken
        // at the φ, per §4's consistency argument).
        let gl = InequalityGraph::build(&f, Problem::Lower, None);
        let exl = ExhaustiveDistances::compute(&gl, Vertex::Const(0));
        let (_, lower_index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Lower)
            .unwrap();
        assert!(exl.proves(&gl, Vertex::Value(lower_index), 0), "{f}");
    }

    #[test]
    fn exhaustive_work_scales_with_graph_not_query() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)[0];
        let ex = ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array));
        let mut demand = DemandProver::new(&g, Vertex::ArrayLen(array));
        demand.demand_prove(Vertex::Value(index), -1);
        assert!(
            ex.steps > demand.steps,
            "exhaustive {} vs demand {}",
            ex.steps,
            demand.steps
        );
    }

    /// Dense (matrix) relaxation computes exactly the same fixpoint as the
    /// sparse edge lists, vertex by vertex.
    #[test]
    fn dense_relaxation_matches_sparse() {
        let sources = [
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[]) {
                let limit: int = a.length;
                let st: int = 0 - 1;
                while (st < limit) {
                    st = st + 1;
                    limit = limit - 1;
                    for (let j: int = st; j < limit; j = j + 1) {
                        let x: int = a[j];
                    }
                }
            }",
        ];
        for src in sources {
            let f = essa(src);
            for problem in [Problem::Upper, Problem::Lower] {
                let g = InequalityGraph::build(&f, problem, None);
                for (array, _, _) in checks(&f) {
                    let source = match problem {
                        Problem::Upper => Vertex::ArrayLen(array),
                        Problem::Lower => Vertex::Const(0),
                    };
                    let sparse = ExhaustiveDistances::compute_budgeted(
                        &g,
                        source,
                        u64::MAX,
                        Relaxation::Sparse,
                    );
                    let dense = ExhaustiveDistances::compute_budgeted(
                        &g,
                        source,
                        u64::MAX,
                        Relaxation::Dense,
                    );
                    for v in 0..g.vertex_count() {
                        let vx = g.vertex(VertexId::from_index(v));
                        assert_eq!(
                            sparse.distance(&g, vx),
                            dense.distance(&g, vx),
                            "{problem:?} dense/sparse split on {vx:?}\n{src}"
                        );
                    }
                }
            }
        }
    }

    /// A starved sweep reports `aborted` and is never consulted.
    #[test]
    fn budgeted_sweep_aborts_cleanly() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, _, _) = checks(&f)[0];
        for relaxation in [Relaxation::Sparse, Relaxation::Dense] {
            let ex =
                ExhaustiveDistances::compute_budgeted(&g, Vertex::ArrayLen(array), 0, relaxation);
            assert!(ex.aborted(), "{relaxation:?}");
            let full = ExhaustiveDistances::compute_budgeted(
                &g,
                Vertex::ArrayLen(array),
                u64::MAX,
                relaxation,
            );
            assert!(!full.aborted(), "{relaxation:?}");
            assert!(!full.overflowed(), "{relaxation:?}");
        }
    }
}
