//! An exhaustive (non-demand-driven) distance solver for the inequality
//! graph — the alternative §5 of the paper sketches before rejecting it for
//! JIT use ("An exhaustive algorithm analyzes all bounds checks in the
//! program, which in the context of shortest paths means computing the
//! single-source shortest-path problem for each array-length vertex").
//!
//! The generalized distance of §4 is the value of the equation system
//!
//! ```text
//! D(source) = 0
//! D(v)      = max over in-edges (D(u) + w)   if v is a max (φ) vertex
//! D(v)      = min over in-edges (D(u) + w)   otherwise
//! ```
//!
//! under the *finite hyperpath* semantics. That is the **least fixpoint**
//! of the (monotone) system, computed here by Kleene iteration from ⊥:
//!
//! 1. vertices with no edge path from the source (or from a constant axiom)
//!    are unconstrained — pinned at `+∞` up front, so they act as the
//!    identity at min vertices and poison max vertices, as they should;
//! 2. everything else starts at `−∞` and rises monotonically; a value that
//!    is still rising after `|V| + 2` rounds can only be fed by a cycle
//!    with positive gain — the paper's *amplifying* cycle — and is pinned
//!    at `+∞` (re-iterating until no new pins appear);
//! 3. the §4 consistency invariant (every cycle passes a φ; no φ-free
//!    cycles, which the graph builder enforces) guarantees `−∞` is never a
//!    self-justifying fixpoint, so surviving `−∞` means "no derivation",
//!    reported as unconstrained.
//!
//! Besides reproducing the paper's cost comparison (work proportional to
//! the whole graph instead of to the queried check), this solver is an
//! independent oracle: the test-suite property "`demandProve` never proves
//! more than the exhaustive distances allow" cross-validates the
//! demand-driven prover's soundness on random programs.

use crate::graph::{InequalityGraph, Problem, Vertex, VertexId};

/// Sentinel for "unconstrained" (no bounding hyperpath from the source).
const INF: i64 = i64::MAX / 4;
/// Kleene bottom ("no derivation found yet").
const BOT: i64 = i64::MIN / 4;

/// Distances from one source vertex to every vertex of the graph.
#[derive(Clone, Debug)]
pub struct ExhaustiveDistances {
    dist: Vec<i64>,
    source_vertex: Vertex,
    source_potential: Option<i64>,
    problem: Problem,
    /// Vertex-relaxation steps performed (the cost metric to compare with
    /// [`DemandProver::steps`](crate::DemandProver)).
    pub steps: u64,
}

impl ExhaustiveDistances {
    /// Runs the single-source computation for `source` over `graph`.
    pub fn compute(graph: &InequalityGraph, source: Vertex) -> ExhaustiveDistances {
        let n = graph.vertex_count();
        let src = graph.lookup(source);
        let source_potential = src.and_then(|s| graph.potential(s));
        let mut this = ExhaustiveDistances {
            dist: vec![BOT; n],
            source_vertex: source,
            source_potential,
            problem: graph.problem(),
            steps: 0,
        };
        if n == 0 {
            return this;
        }

        // Axioms: the source, and — when the source is a constant —
        // every constant-potential vertex (exact numeric relation).
        let mut axiom = vec![false; n];
        if let Some(s) = src {
            this.dist[s.index()] = 0;
            axiom[s.index()] = true;
        }
        if let Some(pa) = source_potential {
            for (v, is_axiom) in axiom.iter_mut().enumerate() {
                if let Some(pv) = graph.potential(VertexId::from_index(v)) {
                    this.dist[v] = this.dist[v].max(pv - pa);
                    *is_axiom = true;
                }
            }
        }

        // Step 1: plain edge reachability from the axioms; everything not
        // reached carries no constraint at all.
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        for v in 0..n {
            for e in graph.in_edges(VertexId::from_index(v)) {
                out[e.src.index()].push(v as u32);
            }
        }
        let mut reach = axiom.clone();
        let mut work: Vec<u32> = (0..n as u32).filter(|&v| axiom[v as usize]).collect();
        while let Some(v) = work.pop() {
            for &w in &out[v as usize] {
                if !reach[w as usize] {
                    reach[w as usize] = true;
                    work.push(w);
                }
            }
        }
        for v in 0..n {
            if !reach[v] && !axiom[v] {
                this.dist[v] = INF;
            }
        }

        // Steps 2–3: Kleene from below with amplification pinning.
        let mut pinned = vec![false; n];
        loop {
            let rounds = n + 2;
            let mut changed_last = false;
            for _ in 0..rounds {
                changed_last = false;
                for v in 0..n {
                    if axiom[v] || pinned[v] || !reach[v] {
                        continue;
                    }
                    let vid = VertexId::from_index(v);
                    let edges = graph.in_edges(vid);
                    if edges.is_empty() {
                        continue;
                    }
                    this.steps += 1;
                    let is_max = graph.is_max(vid);
                    // ⊥ participates as a genuine −∞: max ignores not-yet-
                    // derived inputs (and converges upward as they appear),
                    // min is dragged to ⊥ by them (and rises together with
                    // them) — exactly the monotone Kleene step.
                    let mut val = if is_max { BOT } else { INF };
                    for e in edges {
                        let via = add(this.dist[e.src.index()], e.weight);
                        val = if is_max { val.max(via) } else { val.min(via) };
                    }
                    if val > this.dist[v] {
                        this.dist[v] = val;
                        changed_last = true;
                    }
                }
                if !changed_last {
                    break;
                }
            }
            if !changed_last {
                break;
            }
            // Still rising after |V|+2 rounds: pin every vertex that an
            // extra round would still improve (amplifying cycles).
            let mut pinned_any = false;
            for v in 0..n {
                if axiom[v] || pinned[v] || !reach[v] {
                    continue;
                }
                let vid = VertexId::from_index(v);
                let edges = graph.in_edges(vid);
                if edges.is_empty() {
                    continue;
                }
                let is_max = graph.is_max(vid);
                let mut val = if is_max { BOT } else { INF };
                for e in edges {
                    let via = add(this.dist[e.src.index()], e.weight);
                    val = if is_max { val.max(via) } else { val.min(via) };
                }
                if val > this.dist[v] {
                    this.dist[v] = INF;
                    pinned[v] = true;
                    pinned_any = true;
                }
            }
            if !pinned_any {
                break;
            }
        }
        this
    }

    /// The distance to `v`, or `None` if `v` is unconstrained (no bounding
    /// hyperpath from the source, or an amplifying cycle).
    pub fn distance(&self, graph: &InequalityGraph, v: Vertex) -> Option<i64> {
        let id = graph.lookup(v)?;
        let d = self.dist[id.index()];
        (d < INF && d > BOT).then_some(d)
    }

    /// Is `target − source ≤ c` implied? (The exhaustive analogue of
    /// [`DemandProver::demand_prove`](crate::DemandProver::demand_prove).)
    pub fn proves(&self, graph: &InequalityGraph, target: Vertex, c: i64) -> bool {
        if target == self.source_vertex {
            return c >= 0;
        }
        // Constant targets against constant sources resolve numerically.
        if let (Vertex::Const(k), Some(pa)) = (target, self.source_potential) {
            let pk = match self.problem {
                Problem::Upper => k,
                Problem::Lower => -k,
            };
            if pk - pa <= c {
                return true;
            }
        }
        match self.distance(graph, target) {
            Some(d) => d <= c,
            None => false,
        }
    }
}

fn add(a: i64, b: i64) -> i64 {
    if a >= INF {
        INF
    } else if a <= BOT {
        BOT
    } else {
        a.saturating_add(b).clamp(BOT + 1, INF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Problem;
    use crate::solver::DemandProver;
    use abcd_ir::{CheckKind, Function, InstKind};

    fn essa(src: &str) -> Function {
        let mut m = abcd_frontend::compile(src).unwrap();
        abcd_ssa::module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        m.function(id).clone()
    }

    fn checks(f: &Function) -> Vec<(abcd_ir::Value, abcd_ir::Value, CheckKind)> {
        let mut out = Vec::new();
        for b in f.blocks() {
            for &id in f.block(b).insts() {
                if let InstKind::BoundsCheck {
                    array, index, kind, ..
                } = f.inst(id).kind
                {
                    out.push((array, index, kind));
                }
            }
        }
        out
    }

    /// On a battery of shapes, the demand prover must never prove anything
    /// the exhaustive solver refutes (soundness cross-validation); on these
    /// specific programs the two agree exactly.
    #[test]
    fn agrees_with_demand_prover_on_suite_shapes() {
        let sources = [
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[], i: int) -> int {
                if (0 <= i) { if (i < a.length) { return a[i]; } }
                return 0;
            }",
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[]) -> int {
                let limit: int = a.length;
                let s: int = 0;
                while (limit > 0) {
                    limit = limit - 1;
                    s = s + a[limit];
                }
                return s;
            }",
            "fn f() -> int { let a: int[] = new int[10]; return a[9] + a[0]; }",
            "fn f(a: int[]) {
                let limit: int = a.length;
                let st: int = 0 - 1;
                while (st < limit) {
                    st = st + 1;
                    limit = limit - 1;
                    for (let j: int = st; j < limit; j = j + 1) {
                        let x: int = a[j];
                        let y: int = a[j + 1];
                    }
                }
            }",
        ];
        for src in sources {
            let f = essa(src);
            for problem in [Problem::Upper, Problem::Lower] {
                let g = InequalityGraph::build(&f, problem, None);
                for (array, index, _) in checks(&f) {
                    let (source, c) = match problem {
                        Problem::Upper => (Vertex::ArrayLen(array), -1),
                        Problem::Lower => (Vertex::Const(0), 0),
                    };
                    let mut demand = DemandProver::new(&g, source);
                    let d = demand.demand_prove(Vertex::Value(index), c);
                    let ex = ExhaustiveDistances::compute(&g, source);
                    let e = ex.proves(&g, Vertex::Value(index), c);
                    assert_eq!(d, e, "{problem:?} disagreement on {index} in\n{src}\n{f}");
                }
            }
        }
    }

    #[test]
    fn distance_matches_paper_figure4() {
        // The paper computes distance(A.length, j2) = −2 in Figure 4.
        let f = essa(
            "fn f(a: int[]) {
                let limit: int = a.length;
                let st: int = 0 - 1;
                while (st < limit) {
                    st = st + 1;
                    limit = limit - 1;
                    for (let j: int = st; j < limit; j = j + 1) {
                        let x: int = a[j];
                    }
                }
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Upper)
            .unwrap();
        let ex = ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array));
        assert_eq!(
            ex.distance(&g, Vertex::Value(index)),
            Some(-2),
            "paper's Figure 4 distance\n{f}"
        );
        assert!(ex.proves(&g, Vertex::Value(index), -1));
    }

    #[test]
    fn interdependent_phis_settle_at_weakest_entry() {
        // Two φs feeding each other through zero-weight π/check chains must
        // settle at max of their entries, not be declared amplifying.
        let f = essa(
            "fn f(a: int[], x: int) -> int {
                let s: int = 0;
                a[x] = 1;
                for (let i: int = 0; i < a.length; i = i + 1) {
                    if (x < 0) { x = 1; }
                    s = s + a[x];
                }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Lower, None);
        let lower_checks: Vec<_> = checks(&f)
            .into_iter()
            .filter(|(_, _, k)| *k == CheckKind::Lower)
            .collect();
        let ex = ExhaustiveDistances::compute(&g, Vertex::Const(0));
        let mut demand = DemandProver::new(&g, Vertex::Const(0));
        for (_, index, _) in lower_checks {
            assert_eq!(
                demand.demand_prove(Vertex::Value(index), 0),
                ex.proves(&g, Vertex::Value(index), 0),
                "lower disagreement on {index}\n{f}"
            );
        }
    }

    #[test]
    fn amplifying_cycle_yields_unbounded_distance() {
        // j grows without a length bound: its φ must be +∞ in the upper
        // problem (the amplification pin), never a finite value.
        let f = essa(
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let j: int = 0; j < n; j = j + 1) { s = s + a[j]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Upper)
            .unwrap();
        let ex = ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array));
        assert!(!ex.proves(&g, Vertex::Value(index), -1));
        // ... while the lower problem proves j ≥ 0 (negative cycle broken
        // at the φ, per §4's consistency argument).
        let gl = InequalityGraph::build(&f, Problem::Lower, None);
        let exl = ExhaustiveDistances::compute(&gl, Vertex::Const(0));
        let (_, lower_index, _) = checks(&f)
            .into_iter()
            .find(|(_, _, k)| *k == CheckKind::Lower)
            .unwrap();
        assert!(exl.proves(&gl, Vertex::Value(lower_index), 0), "{f}");
    }

    #[test]
    fn exhaustive_work_scales_with_graph_not_query() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (array, index, _) = checks(&f)[0];
        let ex = ExhaustiveDistances::compute(&g, Vertex::ArrayLen(array));
        let mut demand = DemandProver::new(&g, Vertex::ArrayLen(array));
        demand.demand_prove(Vertex::Value(index), -1);
        assert!(
            ex.steps > demand.steps,
            "exhaustive {} vs demand {}",
            ex.steps,
            demand.steps
        );
    }
}
