//! Pooled per-worker scratch for the zero-allocation prove path.
//!
//! Everything the analysis allocates per function — graph shells, demand
//! memo tables, sweep distance buffers, PRE worklists — lives in a
//! [`ScratchArena`] that a worker checks out of a [`ScratchPool`] once and
//! reuses across every function it analyzes. After the first few functions
//! warm the buffers to the module's high-water capacities, steady-state
//! re-optimization performs no heap allocation on the prove path (the
//! bench suite's counting-allocator gate pins this).
//!
//! The take/put protocol is panic-safe by construction: a worker that
//! unwinds mid-function simply fails to return the items it took, so the
//! pool loses capacity but never observes torn state.

use crate::graph::{InequalityGraph, Problem, Vertex};
use crate::solver::{
    AnyProver, DemandProver, DemandScratch, PreScratch, ProverBackend, SweepProver,
};
use std::sync::Mutex;

use crate::exhaustive::SweepScratch;

/// One worker's reusable analysis storage.
#[derive(Debug, Default)]
pub struct ScratchArena {
    graphs: Vec<InequalityGraph>,
    demand: Vec<DemandScratch>,
    sweep: Vec<SweepScratch>,
    pre: Vec<PreScratch>,
}

impl ScratchArena {
    /// A fresh, cold arena.
    pub fn new() -> ScratchArena {
        ScratchArena::default()
    }

    /// Takes a pooled graph shell (or a cold one), ready for
    /// `rebuild_excluding`.
    pub(crate) fn take_graph(&mut self, problem: Problem) -> InequalityGraph {
        self.graphs
            .pop()
            .unwrap_or_else(|| InequalityGraph::empty(problem))
    }

    /// Returns a graph shell to the pool.
    pub(crate) fn put_graph(&mut self, graph: InequalityGraph) {
        self.graphs.push(graph);
    }

    /// Takes a donated demand-prover scratch.
    pub(crate) fn take_demand(&mut self) -> DemandScratch {
        self.demand.pop().unwrap_or_default()
    }

    /// Returns a demand-prover scratch.
    pub(crate) fn put_demand(&mut self, scratch: DemandScratch) {
        self.demand.push(scratch);
    }

    /// Takes a donated sweep scratch.
    pub(crate) fn take_sweep(&mut self) -> SweepScratch {
        self.sweep.pop().unwrap_or_default()
    }

    /// Returns a sweep scratch.
    pub(crate) fn put_sweep(&mut self, scratch: SweepScratch) {
        self.sweep.push(scratch);
    }

    /// Takes a donated PRE scratch.
    pub(crate) fn take_pre(&mut self) -> PreScratch {
        self.pre.pop().unwrap_or_default()
    }

    /// Returns a PRE scratch.
    pub(crate) fn put_pre(&mut self, scratch: PreScratch) {
        self.pre.push(scratch);
    }
}

impl<'g> AnyProver<'g> {
    /// Like [`AnyProver::new`], drawing the engine's working storage from
    /// `arena` instead of allocating cold tables. Pair with
    /// [`AnyProver::reclaim`] to return the storage once the prover
    /// retires.
    pub fn with_arena(
        graph: &'g InequalityGraph,
        source: Vertex,
        backend: ProverBackend,
        arena: &mut ScratchArena,
    ) -> AnyProver<'g> {
        match backend.resolve(graph) {
            kind @ (ProverBackend::Batch | ProverBackend::Dbm) => AnyProver::Sweep(
                SweepProver::with_scratch(graph, source, kind, arena.take_sweep()),
            ),
            _ => AnyProver::Demand(DemandProver::with_scratch(
                graph,
                source,
                arena.take_demand(),
            )),
        }
    }

    /// Retires the prover, donating its scratch back to `arena`.
    pub fn reclaim(self, arena: &mut ScratchArena) {
        match self {
            AnyProver::Demand(p) => arena.put_demand(p.into_scratch()),
            AnyProver::Sweep(p) => arena.put_sweep(p.into_scratch()),
        }
    }
}

/// A shared pool of [`ScratchArena`]s, one checked out per driver worker
/// (or per `abcdd` request) so arenas never cross threads concurrently but
/// their warm capacity survives across modules and requests.
#[derive(Debug, Default)]
pub struct ScratchPool {
    arenas: Mutex<Vec<ScratchArena>>,
}

impl ScratchPool {
    /// An empty pool; arenas are created cold on first checkout.
    pub fn new() -> ScratchPool {
        ScratchPool::default()
    }

    /// Checks out an arena (warm if one was returned before).
    pub fn checkout(&self) -> ScratchArena {
        self.arenas
            .lock()
            .map(|mut v| v.pop())
            .unwrap_or_default()
            .unwrap_or_default()
    }

    /// Returns an arena after a worker finishes with it.
    pub fn checkin(&self, arena: ScratchArena) {
        if let Ok(mut v) = self.arenas.lock() {
            v.push(arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_round_trips_arenas() {
        let pool = ScratchPool::new();
        let mut a = pool.checkout();
        a.put_demand(DemandScratch::default());
        pool.checkin(a);
        let mut b = pool.checkout();
        // The arena we get back is the one we returned (its pooled demand
        // scratch is still there), and a second checkout is a cold arena.
        let _ = b.take_demand();
        assert!(b.demand.is_empty());
        let c = pool.checkout();
        assert!(c.demand.is_empty() && c.graphs.is_empty());
    }
}
