//! The demand-driven constraint solver (Figure 5 of the paper), and its
//! extension that collects PRE insertion points (§6.1).
//!
//! `demandProve(G, t)` asks whether the distance from a source vertex `a`
//! (an array length, or the constant 0 for lower-bound checks) to a target
//! `b` (the checked index) is at most `c`. The traversal walks **backwards**
//! along in-edges from `b` towards `a`, adjusting the allowed slack `c` by
//! each edge weight:
//!
//! * reaching `a` with `c ≥ 0` proves the traversed path (True);
//! * a vertex with no constraints refutes it (False);
//! * re-visiting an active vertex detects a cycle: if the current slack is
//!   *smaller* than when the vertex was first entered, the cycle has
//!   positive weight — an *amplifying* cycle (an induction variable
//!   incremented in a loop) — and the path is refuted; otherwise the cycle
//!   is harmless and reports `Reduced`;
//! * results merge with **meet** at max (φ) vertices — all paths must prove
//!   — and **join** at min vertices — any path suffices — over the lattice
//!   `True > Reduced > False`.
//!
//! Memoization uses subsumption: a difference proven with a smaller bound
//! proves every weaker query, and one refuted with a larger bound refutes
//! every stronger query.

use crate::exhaustive::{ExhaustiveDistances, Relaxation, SweepScratch};
use crate::graph::{InequalityGraph, Vertex, VertexId};
use crate::trace::ProveEvent;
use abcd_ir::{Block, Value};
use std::collections::HashMap;

/// The three-point result lattice (`True > Reduced > False`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Lattice {
    /// The difference was refuted on some path.
    False,
    /// A harmless (non-amplifying) cycle was reduced.
    Reduced,
    /// The difference holds.
    True,
}

impl Lattice {
    /// Meet (greatest lower bound): used at max/φ vertices.
    pub fn meet(self, other: Lattice) -> Lattice {
        self.min(other)
    }

    /// Join (least upper bound): used at min vertices.
    pub fn join(self, other: Lattice) -> Lattice {
        self.max(other)
    }

    /// Stable lower-case name, used by the trace schema.
    pub fn name(self) -> &'static str {
        match self {
            Lattice::False => "false",
            Lattice::Reduced => "reduced",
            Lattice::True => "true",
        }
    }
}

/// A single compensating-check insertion point discovered by the PRE
/// extension: insert `check A[arg + δ]` at the end of `pred` (the φ
/// in-edge), where δ is derived from `c_prime` by the driver.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InsertionPoint {
    /// The predecessor block owning the failing φ in-edge (critical edges
    /// are split, so this block *is* the edge).
    pub pred: Block,
    /// The failing φ argument — the compensating check's base index.
    pub arg: Value,
    /// The remaining difference query at the insertion point:
    /// the check must establish `arg − a ≤ c_prime` (solver domain).
    pub c_prime: i64,
}

/// Result of a PRE-collecting query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PreOutcome {
    /// Fully redundant — no insertions needed.
    Proven,
    /// Partially redundant — redundant once checks are inserted at all the
    /// given points.
    ProvenWithInsertions(Vec<InsertionPoint>),
    /// Not provable even with insertions.
    Failed,
}

/// Sentinel for "this verdict depends on no active ancestor" — it is a
/// context-free fact about the constraint system and safe to memoize.
const NO_DEP: u32 = u32::MAX;

/// Reusable dense state for [`DemandProver`] — the per-worker scratch the
/// zero-allocation prove path is built on. Every table is indexed by
/// `VertexId` and sized once per function ([`attach`](Self::attach));
/// clearing between functions is O(touched vertices), and clearing the
/// active set between queries is O(1) (an epoch bump).
#[derive(Debug, Default)]
pub struct DemandScratch {
    /// memo[v] = (c, verdict) entries, consulted with subsumption.
    memo: Vec<Vec<(i64, Lattice)>>,
    /// Vertices holding at least one memo entry (bounds the reset walk).
    touched: Vec<u32>,
    /// Active DFS entry slack, valid where `mark == epoch`.
    active_c: Vec<i64>,
    /// Active DFS stack depth, valid where `mark == epoch`.
    active_d: Vec<u32>,
    mark: Vec<u32>,
    /// Current query's epoch; 0 is never current, so stale marks are inert.
    epoch: u32,
}

impl DemandScratch {
    /// Sizes the tables for a graph of `n` vertices and clears leftovers
    /// from the previous function. Growth allocates (that is the
    /// per-function reserve); re-attachment at steady-state sizes does not.
    fn attach(&mut self, n: usize) {
        self.reset_memo();
        if self.memo.len() < n {
            self.memo.resize_with(n, Vec::new);
        }
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.active_c.resize(n, 0);
            self.active_d.resize(n, 0);
        }
    }

    /// Invalidates the whole active set in O(1).
    fn begin_query(&mut self) {
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Drops every memoized verdict while keeping each buffer's capacity,
    /// so subsequent queries re-traverse without allocating — what the
    /// allocation gate uses to prove the warm path is allocation-free even
    /// on memo misses.
    pub fn reset_memo(&mut self) {
        for &v in &self.touched {
            self.memo[v as usize].clear();
        }
        self.touched.clear();
    }
}

/// A demand-driven prover for one `(graph, source)` pair.
///
/// The memo table persists across queries against the same source (e.g. all
/// checks of the same array), which is how the paper's "fewer than 10
/// analysis steps per check" arises in practice.
///
/// # Memo soundness across queries
///
/// A verdict computed while an ancestor vertex is still on the active
/// DFS stack (a cycle was closed below it) is valid only *relative to that
/// ancestor's pending resolution*: a `Reduced` obtained by hitting an
/// active vertex may collapse to `False` once the ancestor's other in-edges
/// refute it. Since the memo table outlives the traversal (and the whole
/// prover is shared across every check with the same source), caching such
/// context-dependent verdicts is unsound. `prove` therefore tracks, for
/// every sub-result, the shallowest active ancestor it depended on, and
/// only memoizes verdicts that are self-contained (depend on no ancestor
/// above the vertex itself).
#[derive(Debug)]
pub struct DemandProver<'g> {
    graph: &'g InequalityGraph,
    source: Option<VertexId>,
    source_vertex: Vertex,
    /// Dense memo/active tables, possibly donated by a [`super::scratch::ScratchArena`]
    /// and reclaimable via [`DemandProver::into_scratch`].
    scratch: DemandScratch,
    /// Per-query fuel allowance (`u64::MAX` = unbudgeted). Every call to
    /// [`DemandProver::demand_prove`] starts with a fresh allowance of this
    /// many steps, so one query's spend never starves the next.
    query_fuel: u64,
    /// Step count at which the *current* query's fuel runs out; derived
    /// from `query_fuel` at the start of every query.
    fuel_stop: u64,
    /// Did the current query trip its budget? Post-exhaustion verdicts are
    /// conservative placeholders, not genuine refutations, so while this is
    /// set nothing may enter the memo table.
    exhausted_in_query: bool,
    /// Did the current query hit an `i64` overflow while accumulating path
    /// weights? Overflow verdicts are conservative (`False`, the check
    /// stays) and — like exhaustion — never enter the memo table.
    overflow_in_query: bool,
    /// Invocations of `prove` — the paper's "analysis steps".
    pub steps: u64,
    /// Queries answered from the memo table (subsumption hits).
    pub memo_hits: u64,
    /// Queries that had to traverse (memo misses at interned vertices).
    pub memo_misses: u64,
    /// Queries that tripped their fuel budget (fail-open: the check stays).
    pub exhausted_queries: u64,
    /// Traversal recorder: `None` (the default) keeps the hot path a
    /// single untaken branch per record point — no allocation, no
    /// formatting. [`DemandProver::enable_trace`] arms it.
    trace: Option<Vec<ProveEvent>>,
}

impl<'g> DemandProver<'g> {
    /// Creates a prover for queries from `source` (e.g. `ArrayLen(a)` for
    /// upper-bound checks, `Const(0)` for lower-bound checks).
    pub fn new(graph: &'g InequalityGraph, source: Vertex) -> Self {
        Self::with_scratch(graph, source, DemandScratch::default())
    }

    /// Like [`DemandProver::new`], reusing a donated scratch: warm tables
    /// make prover construction and the queries themselves allocation-free.
    pub fn with_scratch(
        graph: &'g InequalityGraph,
        source: Vertex,
        mut scratch: DemandScratch,
    ) -> Self {
        scratch.attach(graph.vertex_count());
        DemandProver {
            graph,
            source: graph.lookup(source),
            source_vertex: source,
            scratch,
            query_fuel: u64::MAX,
            fuel_stop: u64::MAX,
            exhausted_in_query: false,
            overflow_in_query: false,
            steps: 0,
            memo_hits: 0,
            memo_misses: 0,
            exhausted_queries: 0,
            trace: None,
        }
    }

    /// Retires the prover, handing its scratch back for reuse (typically
    /// into a [`crate::ScratchArena`]).
    pub fn into_scratch(self) -> DemandScratch {
        self.scratch
    }

    /// Drops memoized verdicts while keeping every buffer's capacity, so
    /// subsequent queries re-traverse without allocating (see
    /// [`DemandScratch::reset_memo`]).
    pub fn reset_memo(&mut self) {
        self.scratch.reset_memo();
    }

    /// Budgets every subsequent query: each may spend at most `fuel` solver
    /// steps of its own before it is cut off with a conservative `False`
    /// (the check stays in place — fail-open). The allowance is re-armed at
    /// the start of each query, so query N's spend cannot starve query N+1.
    pub fn set_query_fuel(&mut self, fuel: u64) {
        self.query_fuel = fuel;
        self.fuel_stop = self.steps.saturating_add(fuel);
    }

    /// Did the most recent `demand_prove` trip its fuel budget?
    pub fn last_query_exhausted(&self) -> bool {
        self.exhausted_in_query
    }

    /// Did the most recent `demand_prove` answer conservatively because a
    /// path-weight accumulation overflowed `i64`?
    pub fn last_query_overflowed(&self) -> bool {
        self.overflow_in_query
    }

    /// Arms the traversal recorder: subsequent queries append their events
    /// to an internal buffer drained by [`DemandProver::take_trace`].
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drains the recorded events. On a prover that never had tracing
    /// enabled this returns a `Vec` with capacity 0 — the structural
    /// witness that the disabled path never allocated.
    pub fn take_trace(&mut self) -> Vec<ProveEvent> {
        match &mut self.trace {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// `demandProve`: is `target − source ≤ c` implied by the constraint
    /// system? (Figure 5: returns true iff the result is `True` or
    /// `Reduced`.)
    pub fn demand_prove(&mut self, target: Vertex, c: i64) -> bool {
        self.exhausted_in_query = false;
        self.overflow_in_query = false;
        self.fuel_stop = self.steps.saturating_add(self.query_fuel);
        let Some(t) = self.graph.lookup(target) else {
            // A value with no constraints at all can still be the source
            // itself, or a constant comparable by potentials.
            return self.trivial(target, c).unwrap_or(false);
        };
        self.scratch.begin_query();
        let (result, _) = self.prove(t, c, 0);
        if self.exhausted_in_query {
            self.exhausted_queries += 1;
            return false; // conservative: keep the check
        }
        matches!(result, Lattice::True | Lattice::Reduced)
    }

    /// Source/constant fast path for vertices missing from the graph.
    fn trivial(&self, target: Vertex, c: i64) -> Option<bool> {
        if target == self.source_vertex {
            return Some(c >= 0);
        }
        // Comparisons run in i128: constants near the i64 boundary must
        // not wrap (satellite overflow audit).
        let pot = |v: Vertex| match (v, self.graph.problem()) {
            (Vertex::Const(k), crate::graph::Problem::Upper) => Some(k as i128),
            (Vertex::Const(k), crate::graph::Problem::Lower) => Some(-(k as i128)),
            _ => None,
        };
        match (pot(target), pot(self.source_vertex)) {
            (Some(pv), Some(pa)) => Some(pv - pa <= c as i128),
            _ => None,
        }
    }

    /// One traversal step. Returns the verdict together with the depth of
    /// the shallowest *active ancestor* the verdict depends on ([`NO_DEP`]
    /// when it depends on none). Only verdicts whose dependency is not
    /// shallower than the vertex's own stack position are memoized; the
    /// rest are valid only within the enclosing traversal.
    fn prove(&mut self, v: VertexId, c: i64, depth: u32) -> (Lattice, u32) {
        // Fuel gate: past the budget every verdict is a conservative False
        // ("cannot prove"), which keeps the check — never unsound, never an
        // unbounded walk.
        if self.steps >= self.fuel_stop {
            self.exhausted_in_query = true;
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Fuel { d: depth });
            }
            return (Lattice::False, NO_DEP);
        }
        self.steps += 1;
        let g = self.graph;

        // Lines 3–5: memoized subsumption.
        let entries = &self.scratch.memo[v.0 as usize];
        if !entries.is_empty() {
            let mut hit = None;
            for &(c2, l) in entries {
                match l {
                    Lattice::True if c2 <= c => hit = Some(Lattice::True),
                    Lattice::False if c2 >= c => hit = Some(Lattice::False),
                    Lattice::Reduced if c2 <= c => hit = Some(Lattice::Reduced),
                    _ => continue,
                }
                break;
            }
            if let Some(l) = hit {
                self.memo_hits += 1;
                if let Some(buf) = &mut self.trace {
                    buf.push(ProveEvent::MemoHit {
                        v: g.vertex(v).to_string(),
                        c,
                        d: depth,
                        verdict: l.name(),
                    });
                }
                return (l, NO_DEP);
            }
        }
        // Line 6: reached the source with enough slack.
        if Some(v) == self.source && c >= 0 {
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Source {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                });
            }
            return (Lattice::True, NO_DEP);
        }
        // Fall through: the source may itself be constrained (only
        // possible for constant sources; array lengths have no
        // in-edges).
        // Constants compare numerically against constant sources.
        if let (Some(pv), Some(pa)) = (
            self.graph.potential(v),
            self.source.and_then(|s| self.graph.potential(s)),
        ) {
            let l = if pv as i128 - pa as i128 <= c as i128 {
                Lattice::True
            } else {
                Lattice::False
            };
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Potential {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                    proven: l == Lattice::True,
                });
            }
            return (l, NO_DEP);
        }
        // Line 7: no constraint bounds v. (`self.graph` is a shared
        // reference copied out of `self`, so `edges` borrows the graph for
        // `'g` — not `self` — and the recursive calls below stay legal
        // without cloning the edge list.)
        let edges: &'g [crate::graph::InEdge] = self.graph.in_edges(v);
        if edges.is_empty() {
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Unconstrained {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                });
            }
            return (Lattice::False, NO_DEP);
        }
        // Lines 8–11: cycle detection. The verdict is relative to the
        // ancestor's entry slack, so it depends on that ancestor's depth.
        if self.scratch.mark[v.0 as usize] == self.scratch.epoch {
            let (ac, ad) = (
                self.scratch.active_c[v.0 as usize],
                self.scratch.active_d[v.0 as usize],
            );
            let l = if c < ac {
                Lattice::False // amplifying cycle
            } else {
                Lattice::Reduced // harmless cycle
            };
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Cycle {
                    v: g.vertex(v).to_string(),
                    c,
                    entry_c: ac,
                    amplifying: c < ac,
                    d: depth,
                });
            }
            return (l, ad);
        }
        self.memo_misses += 1;
        // Lines 12–18: recurse over in-edges, merging per vertex kind.
        self.scratch.mark[v.0 as usize] = self.scratch.epoch;
        self.scratch.active_c[v.0 as usize] = c;
        self.scratch.active_d[v.0 as usize] = depth;
        if let Some(buf) = &mut self.trace {
            buf.push(ProveEvent::Visit {
                v: g.vertex(v).to_string(),
                c,
                d: depth,
            });
        }
        let is_max = self.graph.is_max(v);
        let mut result = if is_max {
            Lattice::True
        } else {
            Lattice::False
        };
        let mut dep = NO_DEP;
        for e in edges {
            // Adversarial constants can push the slack out of the i64
            // range; the edge is then treated as refuting — conservative
            // (the check stays) — and the driver records an incident.
            let (r, d) = match c.checked_sub(e.weight) {
                Some(slack) => self.prove(e.src, slack, depth + 1),
                None => {
                    self.overflow_in_query = true;
                    (Lattice::False, NO_DEP)
                }
            };
            dep = dep.min(d);
            result = if is_max {
                result.meet(r)
            } else {
                result.join(r)
            };
            if (is_max && result == Lattice::False) || (!is_max && result == Lattice::True) {
                break; // short-circuit
            }
        }
        self.scratch.mark[v.0 as usize] = 0;
        if let Some(buf) = &mut self.trace {
            buf.push(ProveEvent::Resolved {
                v: g.vertex(v).to_string(),
                d: depth,
                verdict: result.name(),
            });
        }
        if dep >= depth && !self.exhausted_in_query && !self.overflow_in_query {
            // Self-contained: any cycle the sub-traversal closed bottoms
            // out at this vertex, which is now fully resolved. (Verdicts
            // tainted by fuel exhaustion or arithmetic overflow are
            // placeholders, not facts, and must not outlive the query.)
            let slot = &mut self.scratch.memo[v.0 as usize];
            if slot.is_empty() {
                self.scratch.touched.push(v.0);
            }
            slot.push((c, result));
            (result, NO_DEP)
        } else {
            // Depends on an ancestor still on the stack — valid only in
            // this traversal context; do not memoize.
            (result, dep)
        }
    }
}

/// The PRE-collecting prover (§6.1).
///
/// Identical traversal, but `False` results carry — when possible — the set
/// of φ in-edges where compensating checks would make the query provable.
/// Per the paper, a direct insertion at a φ in-edge is considered "exactly
/// when some of the φ-node's arguments were proven and some were not"; where
/// a failing argument is itself salvageable deeper, the deeper set is used.
pub struct PreProver<'g, 'f> {
    graph: &'g InequalityGraph,
    source: Option<VertexId>,
    /// Pooled memo/worklist tables (see [`PreScratch`]).
    scratch: PreScratch,
    /// Edge-frequency oracle for choosing the cheapest salvage at min
    /// vertices (block execution counts from the profile; `None` = count
    /// insertion points).
    freq: Option<&'f dyn Fn(Block) -> u64>,
    /// Per-query fuel allowance (see [`DemandProver`]).
    query_fuel: u64,
    /// Step count at which the current query's fuel runs out.
    fuel_stop: u64,
    /// Budget tripped in the current query (see [`DemandProver`]).
    exhausted_in_query: bool,
    /// Arithmetic overflow in the current query (see [`DemandProver`]).
    overflow_in_query: bool,
    /// Invocations of `prove`.
    pub steps: u64,
    /// Queries answered from the memo table.
    pub memo_hits: u64,
    /// Queries that had to traverse.
    pub memo_misses: u64,
    /// Queries that tripped their fuel budget.
    pub exhausted_queries: u64,
    /// Traversal recorder (see [`DemandProver`]): `None` keeps the hot
    /// path allocation-free.
    trace: Option<Vec<ProveEvent>>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
struct Res {
    lat: Lattice,
    /// Meaningful when `lat == False`: insertion points that would flip the
    /// result to proven.
    ins: Option<Vec<InsertionPoint>>,
}

impl Res {
    fn proven(lat: Lattice) -> Res {
        Res { lat, ins: None }
    }
}

/// Reusable tables for [`PreProver`] — pooled across functions so the PRE
/// worklists reuse map capacity. (The PRE path returns owned
/// [`InsertionPoint`] sets by design and is therefore outside the
/// zero-allocation gate; pooling still removes the per-function churn.)
#[derive(Debug, Default)]
pub struct PreScratch {
    /// Exact-match memo (subsumption is unsound for insertion sets).
    memo: HashMap<(VertexId, i64), Res>,
    /// Active DFS vertices: entry slack and stack depth.
    active: HashMap<VertexId, (i64, u32)>,
}

impl PreScratch {
    fn attach(&mut self) {
        self.memo.clear();
        self.active.clear();
    }
}

impl<'g, 'f> PreProver<'g, 'f> {
    /// Creates a PRE-collecting prover.
    pub fn new(
        graph: &'g InequalityGraph,
        source: Vertex,
        freq: Option<&'f dyn Fn(Block) -> u64>,
    ) -> Self {
        Self::with_scratch(graph, source, freq, PreScratch::default())
    }

    /// Like [`PreProver::new`], reusing donated (capacity-warm) tables.
    pub fn with_scratch(
        graph: &'g InequalityGraph,
        source: Vertex,
        freq: Option<&'f dyn Fn(Block) -> u64>,
        mut scratch: PreScratch,
    ) -> Self {
        scratch.attach();
        PreProver {
            graph,
            source: graph.lookup(source),
            scratch,
            freq,
            query_fuel: u64::MAX,
            fuel_stop: u64::MAX,
            exhausted_in_query: false,
            overflow_in_query: false,
            steps: 0,
            memo_hits: 0,
            memo_misses: 0,
            exhausted_queries: 0,
            trace: None,
        }
    }

    /// Retires the prover, handing its tables back for reuse.
    pub fn into_scratch(self) -> PreScratch {
        self.scratch
    }

    /// Budgets every subsequent query, re-armed per query
    /// (see [`DemandProver::set_query_fuel`]).
    pub fn set_query_fuel(&mut self, fuel: u64) {
        self.query_fuel = fuel;
        self.fuel_stop = self.steps.saturating_add(fuel);
    }

    /// Did the most recent `demand_prove` trip its fuel budget?
    pub fn last_query_exhausted(&self) -> bool {
        self.exhausted_in_query
    }

    /// Did the most recent `demand_prove` answer conservatively because a
    /// path-weight accumulation overflowed `i64`?
    pub fn last_query_overflowed(&self) -> bool {
        self.overflow_in_query
    }

    /// Arms the traversal recorder (see [`DemandProver::enable_trace`]).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drains the recorded events (see [`DemandProver::take_trace`]).
    pub fn take_trace(&mut self) -> Vec<ProveEvent> {
        match &mut self.trace {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    fn cost(&self, points: &[InsertionPoint]) -> u64 {
        match self.freq {
            Some(f) => points.iter().map(|p| f(p.pred)).sum(),
            None => points.len() as u64,
        }
    }

    /// Runs the query; see [`PreOutcome`].
    pub fn demand_prove(&mut self, target: Vertex, c: i64) -> PreOutcome {
        self.exhausted_in_query = false;
        self.overflow_in_query = false;
        self.fuel_stop = self.steps.saturating_add(self.query_fuel);
        let Some(t) = self.graph.lookup(target) else {
            return PreOutcome::Failed;
        };
        self.scratch.active.clear();
        let (res, _) = self.prove(t, c, 0);
        if self.exhausted_in_query {
            self.exhausted_queries += 1;
            return PreOutcome::Failed; // conservative: keep the check
        }
        match (res.lat, res.ins) {
            (Lattice::True | Lattice::Reduced, _) => PreOutcome::Proven,
            (Lattice::False, Some(ins)) if !ins.is_empty() => PreOutcome::ProvenWithInsertions(ins),
            _ => PreOutcome::Failed,
        }
    }

    fn prove(&mut self, v: VertexId, c: i64, depth: u32) -> (Res, u32) {
        if self.steps >= self.fuel_stop {
            self.exhausted_in_query = true;
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Fuel { d: depth });
            }
            return (
                Res {
                    lat: Lattice::False,
                    ins: None,
                },
                NO_DEP,
            );
        }
        self.steps += 1;
        let g = self.graph;
        if let Some(r) = self.scratch.memo.get(&(v, c)) {
            self.memo_hits += 1;
            let r = r.clone();
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::MemoHit {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                    verdict: r.lat.name(),
                });
            }
            return (r, NO_DEP);
        }
        if Some(v) == self.source && c >= 0 {
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Source {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                });
            }
            return (Res::proven(Lattice::True), NO_DEP);
        }
        if let (Some(pv), Some(pa)) = (
            self.graph.potential(v),
            self.source.and_then(|s| self.graph.potential(s)),
        ) {
            let r = if pv as i128 - pa as i128 <= c as i128 {
                Res::proven(Lattice::True)
            } else {
                Res {
                    lat: Lattice::False,
                    ins: None,
                }
            };
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Potential {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                    proven: r.lat == Lattice::True,
                });
            }
            return (r, NO_DEP);
        }
        let edges: &'g [crate::graph::InEdge] = self.graph.in_edges(v);
        if edges.is_empty() {
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Unconstrained {
                    v: g.vertex(v).to_string(),
                    c,
                    d: depth,
                });
            }
            return (
                Res {
                    lat: Lattice::False,
                    ins: None,
                },
                NO_DEP,
            );
        }
        if let Some(&(ac, ad)) = self.scratch.active.get(&v) {
            let r = if c < ac {
                Res {
                    lat: Lattice::False,
                    ins: None, // cycles are never salvaged by insertion
                }
            } else {
                Res::proven(Lattice::Reduced)
            };
            if let Some(buf) = &mut self.trace {
                buf.push(ProveEvent::Cycle {
                    v: g.vertex(v).to_string(),
                    c,
                    entry_c: ac,
                    amplifying: c < ac,
                    d: depth,
                });
            }
            return (r, ad);
        }
        self.memo_misses += 1;

        self.scratch.active.insert(v, (c, depth));
        if let Some(buf) = &mut self.trace {
            buf.push(ProveEvent::Visit {
                v: g.vertex(v).to_string(),
                c,
                d: depth,
            });
        }
        let (result, dep) = if self.graph.is_max(v) {
            self.prove_max(v, c, edges, depth)
        } else {
            self.prove_min(c, edges, depth)
        };
        self.scratch.active.remove(&v);
        if let Some(buf) = &mut self.trace {
            buf.push(ProveEvent::Resolved {
                v: g.vertex(v).to_string(),
                d: depth,
                verdict: result.lat.name(),
            });
        }
        if dep >= depth && !self.exhausted_in_query && !self.overflow_in_query {
            // Self-contained (see DemandProver::prove): safe to memoize.
            // Exhaustion- and overflow-tainted verdicts never enter the
            // memo.
            self.scratch.memo.insert((v, c), result.clone());
            (result, NO_DEP)
        } else {
            (result, dep)
        }
    }

    /// Max (φ) vertex: all arguments must prove; failing arguments may be
    /// compensated on their in-edge.
    fn prove_max(
        &mut self,
        v: VertexId,
        c: i64,
        edges: &[crate::graph::InEdge],
        depth: u32,
    ) -> (Res, u32) {
        let mut lat = Lattice::True;
        let mut proven_args = 0usize;
        let mut salvages: Vec<Vec<InsertionPoint>> = Vec::new();
        let mut direct_needed: Vec<(VertexId, i64)> = Vec::new();
        let mut dep = NO_DEP;

        for e in edges {
            // Overflowed slack refutes the argument and cannot be salvaged
            // by insertion (the compensating check's `c_prime` would not be
            // representable either).
            let Some(slack) = c.checked_sub(e.weight) else {
                self.overflow_in_query = true;
                return (
                    Res {
                        lat: Lattice::False,
                        ins: None,
                    },
                    dep,
                );
            };
            let (r, d) = self.prove(e.src, slack, depth + 1);
            dep = dep.min(d);
            match r.lat {
                Lattice::True | Lattice::Reduced => {
                    proven_args += 1;
                    lat = lat.meet(r.lat);
                }
                Lattice::False => {
                    if let Some(ins) = r.ins.filter(|i| !i.is_empty()) {
                        salvages.push(ins);
                    } else {
                        direct_needed.push((e.src, slack));
                    }
                }
            }
        }

        if direct_needed.is_empty() && salvages.is_empty() {
            return (Res::proven(lat), dep); // all arguments proven
        }

        // Direct insertion at this φ's in-edges is allowed only in the
        // paper's mixed case: at least one argument proven outright.
        if !direct_needed.is_empty() && proven_args == 0 {
            return (
                Res {
                    lat: Lattice::False,
                    ins: None,
                },
                dep,
            );
        }
        let mut ins: Vec<InsertionPoint> = Vec::new();
        for (arg, c_prime) in direct_needed {
            let Vertex::Value(u) = self.graph.vertex(arg) else {
                // Only value arguments can be compensated with an index
                // expression.
                return (
                    Res {
                        lat: Lattice::False,
                        ins: None,
                    },
                    dep,
                );
            };
            let preds = self.phi_pred_of(v, arg);
            if preds.is_empty() {
                return (
                    Res {
                        lat: Lattice::False,
                        ins: None,
                    },
                    dep,
                );
            }
            // The same argument value may arrive over several edges; all of
            // them must be compensated for the φ to become proven.
            for pred in preds {
                ins.push(InsertionPoint {
                    pred,
                    arg: u,
                    c_prime,
                });
            }
        }
        for s in salvages {
            ins.extend(s);
        }
        ins.sort_by_key(|p| (p.pred, p.arg, p.c_prime));
        ins.dedup();
        (
            Res {
                lat: Lattice::False,
                ins: Some(ins),
            },
            dep,
        )
    }

    /// Min vertex: any in-edge suffices; choose the cheapest salvage among
    /// failing alternatives.
    fn prove_min(&mut self, c: i64, edges: &[crate::graph::InEdge], depth: u32) -> (Res, u32) {
        let mut lat = Lattice::False;
        let mut best: Option<Vec<InsertionPoint>> = None;
        let mut dep = NO_DEP;
        for e in edges {
            // Overflowed slack: this alternative refutes (join with False
            // is a no-op); other in-edges may still prove the vertex.
            let Some(slack) = c.checked_sub(e.weight) else {
                self.overflow_in_query = true;
                continue;
            };
            let (r, d) = self.prove(e.src, slack, depth + 1);
            dep = dep.min(d);
            lat = lat.join(r.lat);
            if lat == Lattice::True {
                return (Res::proven(Lattice::True), dep);
            }
            if r.lat == Lattice::False {
                if let Some(ins) = r.ins.filter(|i| !i.is_empty()) {
                    let better = match &best {
                        None => true,
                        Some(b) => self.cost(&ins) < self.cost(b),
                    };
                    if better {
                        best = Some(ins);
                    }
                }
            }
        }
        let res = if lat == Lattice::False {
            Res { lat, ins: best }
        } else {
            Res::proven(lat)
        };
        (res, dep)
    }

    /// Which φ in-edges (predecessor blocks) contribute `arg` to max vertex
    /// `v`? Recovered from the graph's φ-argument records.
    fn phi_pred_of(&self, v: VertexId, arg: VertexId) -> Vec<Block> {
        let Vertex::Value(phi_val) = self.graph.vertex(v) else {
            return Vec::new();
        };
        let Vertex::Value(arg_val) = self.graph.vertex(arg) else {
            return Vec::new();
        };
        self.graph.phi_pred(phi_val, arg_val).collect()
    }
}

/// Which engine answers difference queries (`--prover`).
///
/// Every backend computes the same sound verdict function over the §4
/// least-fixpoint semantics — they differ only in how the work is
/// scheduled, so switching backends must never change a verdict (the
/// differential parity suite enforces this with the demand prover as the
/// oracle).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ProverBackend {
    /// Figure 5's demand-driven DFS — the oracle backend. Work is
    /// proportional to the queried region of the graph (amortized under
    /// ten steps per check in the paper's measurements).
    #[default]
    Demand,
    /// One budgeted single-source sweep per `(graph, source)` pair — the
    /// WALA-style batch mode. The sweep costs O(rounds · E); every
    /// subsequent check of the function is answered from the distance
    /// table in O(1).
    Batch,
    /// The same fixpoint via dense difference-bound-matrix relaxation:
    /// parallel edges collapse into a closure matrix and each Kleene round
    /// scans whole rows — O(V²) per round, which amortizes better than
    /// edge-list chasing on dense graphs (Miné's octagon closure applied
    /// to our one-sided difference constraints).
    Dbm,
    /// Pick per function by graph shape (see [`ProverBackend::resolve`]).
    Auto,
}

impl ProverBackend {
    /// Parses a `--prover` flag value.
    pub fn parse(s: &str) -> Option<ProverBackend> {
        match s {
            "demand" => Some(ProverBackend::Demand),
            "batch" => Some(ProverBackend::Batch),
            "dbm" => Some(ProverBackend::Dbm),
            "auto" => Some(ProverBackend::Auto),
            _ => None,
        }
    }

    /// Stable lower-case name (flag value, metrics, trace schemas).
    pub fn name(self) -> &'static str {
        match self {
            ProverBackend::Demand => "demand",
            ProverBackend::Batch => "batch",
            ProverBackend::Dbm => "dbm",
            ProverBackend::Auto => "auto",
        }
    }

    /// Dense index for per-backend accounting arrays (`Auto` resolves
    /// before any accounting happens, so it shares slot 0 harmlessly).
    pub fn index(self) -> usize {
        match self {
            ProverBackend::Demand | ProverBackend::Auto => 0,
            ProverBackend::Batch => 1,
            ProverBackend::Dbm => 2,
        }
    }

    /// Resolves `Auto` against a concrete graph's shape; concrete backends
    /// return themselves.
    ///
    /// Heuristic: dense graphs (average in-degree ≥ V/4, at least 16
    /// vertices) amortize the O(V²)-per-round matrix relaxation → `Dbm`;
    /// acyclic graphs with more edges than vertices converge in few sweep
    /// rounds and likely face many queries → `Batch`; everything else —
    /// small, sparse, or cyclic — stays with the demand DFS, whose work
    /// tracks the queried region rather than the whole graph.
    pub fn resolve(self, graph: &InequalityGraph) -> ProverBackend {
        if self != ProverBackend::Auto {
            return self;
        }
        let shape = graph.shape();
        let v = shape.vertices as u64;
        let e = shape.edges as u64;
        if v == 0 {
            ProverBackend::Demand
        } else if v >= 16 && e.saturating_mul(4) >= v.saturating_mul(v) {
            ProverBackend::Dbm
        } else if shape.cycles == 0 && e > v {
            ProverBackend::Batch
        } else {
            ProverBackend::Demand
        }
    }
}

/// The interface every query engine implements.
///
/// `demand_prove` must be sound (never claims an unprovable difference)
/// and conservative under resource pressure: fuel exhaustion and
/// arithmetic overflow both answer `false` (the check stays) and raise the
/// corresponding `last_query_*` flag for the driver's incident log.
pub trait Prover {
    /// Which engine this is (never [`ProverBackend::Auto`]).
    fn backend(&self) -> ProverBackend;
    /// Is `target − source ≤ c` implied by the constraint system?
    fn demand_prove(&mut self, target: Vertex, c: i64) -> bool;
    /// Budgets every subsequent query (per-query allowance).
    fn set_query_fuel(&mut self, fuel: u64);
    /// Did the most recent query trip its fuel budget?
    fn last_query_exhausted(&self) -> bool;
    /// Did the most recent query answer conservatively due to overflow?
    fn last_query_overflowed(&self) -> bool;
    /// Analysis steps spent so far (the paper's cost metric).
    fn steps(&self) -> u64;
    /// Queries answered from memoized/tabled state.
    fn memo_hits(&self) -> u64;
    /// Queries that had to traverse or sweep.
    fn memo_misses(&self) -> u64;
    /// Arms the traversal recorder.
    fn enable_trace(&mut self);
    /// Drains recorded events.
    fn take_trace(&mut self) -> Vec<ProveEvent>;
}

impl<'g> Prover for DemandProver<'g> {
    fn backend(&self) -> ProverBackend {
        ProverBackend::Demand
    }
    fn demand_prove(&mut self, target: Vertex, c: i64) -> bool {
        DemandProver::demand_prove(self, target, c)
    }
    fn set_query_fuel(&mut self, fuel: u64) {
        DemandProver::set_query_fuel(self, fuel)
    }
    fn last_query_exhausted(&self) -> bool {
        DemandProver::last_query_exhausted(self)
    }
    fn last_query_overflowed(&self) -> bool {
        DemandProver::last_query_overflowed(self)
    }
    fn steps(&self) -> u64 {
        self.steps
    }
    fn memo_hits(&self) -> u64 {
        self.memo_hits
    }
    fn memo_misses(&self) -> u64 {
        self.memo_misses
    }
    fn enable_trace(&mut self) {
        DemandProver::enable_trace(self)
    }
    fn take_trace(&mut self) -> Vec<ProveEvent> {
        DemandProver::take_trace(self)
    }
}

/// The sweep-based engines ([`ProverBackend::Batch`] and
/// [`ProverBackend::Dbm`]): one budgeted single-source fixpoint
/// computation, then O(1) probes per query.
///
/// Fail-open contract: a sweep that runs out of fuel is discarded — the
/// triggering query reports exhaustion (conservative `false`) and a later
/// query (possibly with a larger budget) retries the sweep. A sweep whose
/// arithmetic saturated reports *every* query as an overflow-refutation:
/// saturated distances are not trustworthy in either direction.
pub struct SweepProver<'g> {
    graph: &'g InequalityGraph,
    source: Vertex,
    kind: ProverBackend,
    relaxation: Relaxation,
    table: Option<ExhaustiveDistances>,
    scratch: SweepScratch,
    query_fuel: u64,
    exhausted_in_query: bool,
    overflow_in_query: bool,
    /// Relaxation steps (sweep) plus one per probe.
    pub steps: u64,
    /// Probes answered from an already-computed table.
    pub memo_hits: u64,
    /// Queries that had to (re)run the sweep.
    pub memo_misses: u64,
    /// Queries that tripped their fuel budget.
    pub exhausted_queries: u64,
    trace: Option<Vec<ProveEvent>>,
}

impl<'g> SweepProver<'g> {
    /// Creates a sweep prover. `kind` selects the relaxation strategy:
    /// [`ProverBackend::Dbm`] uses the dense matrix, anything else the
    /// sparse edge lists.
    pub fn new(graph: &'g InequalityGraph, source: Vertex, kind: ProverBackend) -> Self {
        Self::with_scratch(graph, source, kind, SweepScratch::default())
    }

    /// Like [`SweepProver::new`], adopting donated sweep buffers so a warm
    /// scratch makes the sweep itself allocation-free.
    pub fn with_scratch(
        graph: &'g InequalityGraph,
        source: Vertex,
        kind: ProverBackend,
        scratch: SweepScratch,
    ) -> Self {
        let relaxation = match kind {
            ProverBackend::Dbm => Relaxation::Dense,
            _ => Relaxation::Sparse,
        };
        SweepProver {
            graph,
            source,
            kind,
            relaxation,
            table: None,
            scratch,
            query_fuel: u64::MAX,
            exhausted_in_query: false,
            overflow_in_query: false,
            steps: 0,
            memo_hits: 0,
            memo_misses: 0,
            exhausted_queries: 0,
            trace: None,
        }
    }

    /// Retires the prover, returning its scratch (including the table's
    /// distance storage) for reuse by a later prover.
    pub fn into_scratch(mut self) -> SweepScratch {
        if let Some(table) = self.table.take() {
            self.scratch.adopt(table);
        }
        self.scratch
    }

    /// Retires the current table into the scratch so the next query
    /// recomputes the sweep — into the now-warm buffers.
    pub fn reset_table(&mut self) {
        if let Some(table) = self.table.take() {
            self.scratch.adopt(table);
        }
    }

    /// Budgets every subsequent query (see
    /// [`DemandProver::set_query_fuel`]). For a sweep backend the first
    /// query pays for the whole sweep, so the budget gates the sweep
    /// itself.
    pub fn set_query_fuel(&mut self, fuel: u64) {
        self.query_fuel = fuel;
    }

    /// Did the most recent query trip its fuel budget?
    pub fn last_query_exhausted(&self) -> bool {
        self.exhausted_in_query
    }

    /// Did the most recent query answer conservatively due to overflow?
    pub fn last_query_overflowed(&self) -> bool {
        self.overflow_in_query
    }

    /// Arms the traversal recorder (sweep backends record only fuel
    /// events; there is no DFS to narrate).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drains the recorded events (see [`DemandProver::take_trace`]).
    pub fn take_trace(&mut self) -> Vec<ProveEvent> {
        match &mut self.trace {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// Is `target − source ≤ c` implied? Sound and conservative exactly
    /// like [`DemandProver::demand_prove`].
    pub fn demand_prove(&mut self, target: Vertex, c: i64) -> bool {
        self.exhausted_in_query = false;
        self.overflow_in_query = false;
        if self.table.is_none() {
            self.memo_misses += 1;
            let sweep = ExhaustiveDistances::compute_with(
                self.graph,
                self.source,
                self.query_fuel,
                self.relaxation,
                &mut self.scratch,
            );
            self.steps += sweep.steps;
            if sweep.aborted() {
                // Fail-open: discard the partial table so a later query
                // (possibly refueled) can retry the sweep from scratch.
                self.exhausted_in_query = true;
                self.exhausted_queries += 1;
                if let Some(buf) = &mut self.trace {
                    buf.push(ProveEvent::Fuel { d: 0 });
                }
                self.scratch.adopt(sweep);
                return false;
            }
            self.table = Some(sweep);
        } else {
            self.memo_hits += 1;
        }
        self.steps += 1;
        let table = self.table.as_ref().expect("table computed above");
        if table.overflowed() {
            self.overflow_in_query = true;
            return false;
        }
        table.proves(self.graph, target, c)
    }
}

impl<'g> Prover for SweepProver<'g> {
    fn backend(&self) -> ProverBackend {
        self.kind
    }
    fn demand_prove(&mut self, target: Vertex, c: i64) -> bool {
        SweepProver::demand_prove(self, target, c)
    }
    fn set_query_fuel(&mut self, fuel: u64) {
        SweepProver::set_query_fuel(self, fuel)
    }
    fn last_query_exhausted(&self) -> bool {
        SweepProver::last_query_exhausted(self)
    }
    fn last_query_overflowed(&self) -> bool {
        SweepProver::last_query_overflowed(self)
    }
    fn steps(&self) -> u64 {
        self.steps
    }
    fn memo_hits(&self) -> u64 {
        self.memo_hits
    }
    fn memo_misses(&self) -> u64 {
        self.memo_misses
    }
    fn enable_trace(&mut self) {
        SweepProver::enable_trace(self)
    }
    fn take_trace(&mut self) -> Vec<ProveEvent> {
        SweepProver::take_trace(self)
    }
}

/// Enum dispatch over the concrete engines — what the driver stores per
/// `(graph, source)` pair (avoids boxing on the hot path; the [`Prover`]
/// trait remains available for generic callers).
pub enum AnyProver<'g> {
    /// Figure 5's demand-driven DFS.
    Demand(DemandProver<'g>),
    /// Batch or dbm sweep.
    Sweep(SweepProver<'g>),
}

impl<'g> AnyProver<'g> {
    /// Creates the prover selected by `backend` (resolving
    /// [`ProverBackend::Auto`] against the graph's shape).
    pub fn new(
        graph: &'g InequalityGraph,
        source: Vertex,
        backend: ProverBackend,
    ) -> AnyProver<'g> {
        match backend.resolve(graph) {
            kind @ (ProverBackend::Batch | ProverBackend::Dbm) => {
                AnyProver::Sweep(SweepProver::new(graph, source, kind))
            }
            _ => AnyProver::Demand(DemandProver::new(graph, source)),
        }
    }

    /// The resolved backend actually answering queries.
    pub fn backend(&self) -> ProverBackend {
        match self {
            AnyProver::Demand(_) => ProverBackend::Demand,
            AnyProver::Sweep(p) => p.kind,
        }
    }

    /// Forgets memoized answers while keeping every buffer's capacity:
    /// the next query re-traverses (demand) or re-sweeps (batch/dbm)
    /// into warm storage. This is what the steady-state allocation gate
    /// exercises.
    pub fn reset_warm(&mut self) {
        match self {
            AnyProver::Demand(p) => p.reset_memo(),
            AnyProver::Sweep(p) => p.reset_table(),
        }
    }

    /// See [`DemandProver::demand_prove`].
    pub fn demand_prove(&mut self, target: Vertex, c: i64) -> bool {
        match self {
            AnyProver::Demand(p) => p.demand_prove(target, c),
            AnyProver::Sweep(p) => p.demand_prove(target, c),
        }
    }

    /// See [`DemandProver::set_query_fuel`].
    pub fn set_query_fuel(&mut self, fuel: u64) {
        match self {
            AnyProver::Demand(p) => p.set_query_fuel(fuel),
            AnyProver::Sweep(p) => p.set_query_fuel(fuel),
        }
    }

    /// See [`DemandProver::last_query_exhausted`].
    pub fn last_query_exhausted(&self) -> bool {
        match self {
            AnyProver::Demand(p) => p.last_query_exhausted(),
            AnyProver::Sweep(p) => p.last_query_exhausted(),
        }
    }

    /// See [`DemandProver::last_query_overflowed`].
    pub fn last_query_overflowed(&self) -> bool {
        match self {
            AnyProver::Demand(p) => p.last_query_overflowed(),
            AnyProver::Sweep(p) => p.last_query_overflowed(),
        }
    }

    /// Analysis steps spent so far.
    pub fn steps(&self) -> u64 {
        match self {
            AnyProver::Demand(p) => p.steps,
            AnyProver::Sweep(p) => p.steps,
        }
    }

    /// Queries answered from memoized/tabled state.
    pub fn memo_hits(&self) -> u64 {
        match self {
            AnyProver::Demand(p) => p.memo_hits,
            AnyProver::Sweep(p) => p.memo_hits,
        }
    }

    /// Queries that had to traverse or sweep.
    pub fn memo_misses(&self) -> u64 {
        match self {
            AnyProver::Demand(p) => p.memo_misses,
            AnyProver::Sweep(p) => p.memo_misses,
        }
    }

    /// See [`DemandProver::enable_trace`].
    pub fn enable_trace(&mut self) {
        match self {
            AnyProver::Demand(p) => p.enable_trace(),
            AnyProver::Sweep(p) => p.enable_trace(),
        }
    }

    /// See [`DemandProver::take_trace`].
    pub fn take_trace(&mut self) -> Vec<ProveEvent> {
        match self {
            AnyProver::Demand(p) => p.take_trace(),
            AnyProver::Sweep(p) => p.take_trace(),
        }
    }
}

impl<'g> Prover for AnyProver<'g> {
    fn backend(&self) -> ProverBackend {
        AnyProver::backend(self)
    }
    fn demand_prove(&mut self, target: Vertex, c: i64) -> bool {
        AnyProver::demand_prove(self, target, c)
    }
    fn set_query_fuel(&mut self, fuel: u64) {
        AnyProver::set_query_fuel(self, fuel)
    }
    fn last_query_exhausted(&self) -> bool {
        AnyProver::last_query_exhausted(self)
    }
    fn last_query_overflowed(&self) -> bool {
        AnyProver::last_query_overflowed(self)
    }
    fn steps(&self) -> u64 {
        AnyProver::steps(self)
    }
    fn memo_hits(&self) -> u64 {
        AnyProver::memo_hits(self)
    }
    fn memo_misses(&self) -> u64 {
        AnyProver::memo_misses(self)
    }
    fn enable_trace(&mut self) {
        AnyProver::enable_trace(self)
    }
    fn take_trace(&mut self) -> Vec<ProveEvent> {
        AnyProver::take_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Problem;
    use abcd_frontend::compile;
    use abcd_ir::{CheckKind, Function, InstKind};
    use abcd_ssa::module_to_essa;

    fn essa(src: &str) -> Function {
        let mut m = compile(src).unwrap();
        module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        m.function(id).clone()
    }

    /// All upper-bound checks of `f` with (array, index) values.
    fn upper_checks(f: &Function) -> Vec<(abcd_ir::Value, abcd_ir::Value)> {
        let mut out = Vec::new();
        for b in f.blocks() {
            for &id in f.block(b).insts() {
                if let InstKind::BoundsCheck {
                    array,
                    index,
                    kind: CheckKind::Upper,
                    ..
                } = f.inst(id).kind
                {
                    out.push((array, index));
                }
            }
        }
        out
    }

    #[test]
    fn loop_bounded_by_length_proves() {
        // for (i = 0; i < a.length; i++) a[i] — the canonical case.
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let checks = upper_checks(&f);
        assert_eq!(checks.len(), 1);
        let (a, i) = checks[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(p.demand_prove(Vertex::Value(i), -1), "{f}");
        assert!(p.steps > 0);

        // Lower bound too: i starts at 0 and increments.
        let gl = InequalityGraph::build(&f, Problem::Lower, None);
        let mut pl = DemandProver::new(&gl, Vertex::Const(0));
        assert!(pl.demand_prove(Vertex::Value(i), 0), "{f}");
    }

    #[test]
    fn unbounded_index_does_not_prove() {
        let f = essa("fn f(a: int[], i: int) -> int { return a[i]; }");
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(!p.demand_prove(Vertex::Value(i), -1));
    }

    #[test]
    fn guarded_index_proves() {
        let f = essa(
            "fn f(a: int[], i: int) -> int {
                if (i < a.length) { if (i >= 0) { return a[i]; } }
                return 0;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(p.demand_prove(Vertex::Value(i), -1), "{f}");
        let gl = InequalityGraph::build(&f, Problem::Lower, None);
        let mut pl = DemandProver::new(&gl, Vertex::Const(0));
        assert!(pl.demand_prove(Vertex::Value(i), 0), "{f}");
    }

    #[test]
    fn reversed_guard_also_proves() {
        // `a.length > i` is the swapped form.
        let f = essa(
            "fn f(a: int[], i: int) -> int {
                if (a.length > i) { if (0 <= i) { return a[i]; } }
                return 0;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(p.demand_prove(Vertex::Value(i), -1), "{f}");
        let gl = InequalityGraph::build(&f, Problem::Lower, None);
        let mut pl = DemandProver::new(&gl, Vertex::Const(0));
        assert!(pl.demand_prove(Vertex::Value(i), 0), "{f}");
    }

    #[test]
    fn amplifying_cycle_without_bound_fails() {
        // i grows without a length test: cannot prove.
        let f = essa(
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(!p.demand_prove(Vertex::Value(i), -1));
        // ... but the lower bound still proves (starts at 0, increments).
        let gl = InequalityGraph::build(&f, Problem::Lower, None);
        let mut pl = DemandProver::new(&gl, Vertex::Const(0));
        assert!(pl.demand_prove(Vertex::Value(i), 0));
    }

    #[test]
    fn check_subsumption_within_block() {
        // a[i] then a[i-1]: second upper check subsumed by the first;
        // (and first lower check subsumes the second's dual — see §7.2).
        let f = essa(
            "fn f(a: int[], i: int) -> int {
                let x: int = a[i];
                let y: int = a[i - 1];
                return x + y;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let checks = upper_checks(&f);
        assert_eq!(checks.len(), 2);
        let (a, second) = checks[1];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(
            p.demand_prove(Vertex::Value(second), -1),
            "a[i-1] after a[i] must prove:\n{f}"
        );
        // The first one is NOT redundant.
        let (_, first) = checks[0];
        assert!(!p.demand_prove(Vertex::Value(first), -1));
    }

    #[test]
    fn constant_index_against_allocation_proves() {
        let f = essa(
            "fn f() -> int {
                let a: int[] = new int[10];
                return a[9] + a[0];
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let checks = upper_checks(&f);
        let (a, i9) = checks[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(
            p.demand_prove(Vertex::Value(i9), -1),
            "a[9] of new int[10]:\n{f}"
        );
    }

    #[test]
    fn constant_index_too_large_fails() {
        let f = essa(
            "fn f() -> int {
                let a: int[] = new int[10];
                return a[10];
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(!p.demand_prove(Vertex::Value(i), -1));
    }

    #[test]
    fn memo_reduces_steps_on_repeated_queries() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) {
                    s = s + a[i] + a[i] + a[i];
                }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let checks = upper_checks(&f);
        assert_eq!(checks.len(), 3);
        let (a, _) = checks[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        for (_, i) in &checks {
            assert!(p.demand_prove(Vertex::Value(*i), -1));
        }
        let total = p.steps;
        // The paper reports < 10 steps per check on average; with memoization
        // across a function's checks we stay well under that here.
        assert!(total < 10 * checks.len() as u64, "steps = {total}");
    }

    #[test]
    fn lattice_algebra() {
        use Lattice::*;
        assert_eq!(True.meet(Reduced), Reduced);
        assert_eq!(True.meet(False), False);
        assert_eq!(Reduced.meet(False), False);
        assert_eq!(True.join(False), True);
        assert_eq!(Reduced.join(False), Reduced);
        assert!(False < Reduced && Reduced < True);
    }

    #[test]
    fn lattice_meet_join_laws() {
        use Lattice::*;
        let all = [False, Reduced, True];
        for a in all {
            // Idempotence and identity/absorbing elements.
            assert_eq!(a.meet(a), a);
            assert_eq!(a.join(a), a);
            assert_eq!(a.meet(True), a);
            assert_eq!(a.join(False), a);
            assert_eq!(a.meet(False), False);
            assert_eq!(a.join(True), True);
            for b in all {
                // Commutativity and absorption.
                assert_eq!(a.meet(b), b.meet(a));
                assert_eq!(a.join(b), b.join(a));
                assert_eq!(a.meet(a.join(b)), a);
                assert_eq!(a.join(a.meet(b)), a);
                for c in all {
                    // Associativity.
                    assert_eq!(a.meet(b).meet(c), a.meet(b.meet(c)));
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    /// Regression: verdicts derived while an ancestor vertex is still on
    /// the active stack must not be memoized.
    ///
    /// System (all edge weights 0, upper problem):
    ///
    /// ```text
    ///   u (max/φ)  in-edges: [m, i]     (cycle arg first)
    ///   m (min)    in-edges: [u, x]     (cycle edge first)
    ///   i, x       no in-edges (unbounded)
    /// ```
    ///
    /// Query 1, `prove(u)`: exploring `m` hits active `u` → harmless cycle
    /// → `Reduced`; joined with `x`'s `False` that makes `m = Reduced`.
    /// Back at `u`, the `i` argument refutes, so `u = False` — correct.
    /// But the old solver also memoized `m = Reduced`, a verdict valid
    /// only under the hypothesis that `u` proves (it does not). Query 2,
    /// `prove(m)`, then answered `Reduced` from the memo and the driver
    /// would have removed a check on `m` even though nothing bounds it.
    #[test]
    fn stale_cycle_verdicts_are_not_memoized() {
        use abcd_ir::Value;
        // Start from a trivial function's (essentially empty) graph and
        // hand-craft the cyclic system with synthetic values.
        let f = essa("fn f() -> int { return 0; }");
        let mut g = InequalityGraph::build(&f, Problem::Upper, None);
        let (src, u, m, i, x) = (
            Vertex::Value(Value::new(100)),
            Vertex::Value(Value::new(101)),
            Vertex::Value(Value::new(102)),
            Vertex::Value(Value::new(103)),
            Vertex::Value(Value::new(104)),
        );
        // In-edge insertion order is query exploration order.
        g.assume_fact(m, u, 0); // u ≤ m (cycle arg, explored first)
        g.assume_fact(i, u, 0); // u ≤ i (refuting arg, explored second)
        g.assume_fact(u, m, 0); // m ≤ u (closes the cycle)
        g.assume_fact(x, m, 0); // m ≤ x (unbounded alternative)
        g.mark_max(u);

        let mut p = DemandProver::new(&g, src);
        // Query 1: u is unprovable (the i argument is unbounded).
        assert!(!p.demand_prove(u, 0));
        // Query 2: m is just as unprovable — no path reaches the source.
        // With unconditional memoization this returned true via the stale
        // `Reduced` cached for m during query 1.
        assert!(
            !p.demand_prove(m, 0),
            "stale cycle verdict reused from memo"
        );

        // Same shape through the PRE prover (exact-match memo, same bug).
        let mut pp = PreProver::new(&g, src, None);
        assert_eq!(pp.demand_prove(u, 0), PreOutcome::Failed);
        assert_eq!(
            pp.demand_prove(m, 0),
            PreOutcome::Failed,
            "stale cycle verdict reused from PRE memo"
        );
    }

    /// Self-contained cycle verdicts (the cycle bottoms out at the queried
    /// vertex itself) are still memoized — query 2 must be answered from
    /// the memo without re-traversal.
    #[test]
    fn self_contained_verdicts_still_memoized() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(p.demand_prove(Vertex::Value(i), -1));
        let steps_first = p.steps;
        assert!(p.demand_prove(Vertex::Value(i), -1));
        assert_eq!(
            p.steps,
            steps_first + 1,
            "second identical query must be a single memo hit"
        );
        assert!(p.memo_hits >= 1);
    }

    /// The subsumption memo must give the same answers regardless of query
    /// order: probing a vertex with decreasing then increasing bounds (and
    /// the reverse) agrees pointwise with a fresh prover per query.
    #[test]
    fn memo_subsumption_is_order_insensitive() {
        let f = essa(
            "fn f(a: int[], i: int) -> int {
                if (i < a.length) { if (i >= 0) { return a[i]; } }
                return 0;
            }",
        );
        for problem in [Problem::Upper, Problem::Lower] {
            let g = InequalityGraph::build(&f, problem, None);
            let (a, idx) = upper_checks(&f)[0];
            let source = match problem {
                Problem::Upper => Vertex::ArrayLen(a),
                Problem::Lower => Vertex::Const(0),
            };
            let range: Vec<i64> = (-4..=4).collect();
            let fresh: Vec<bool> = range
                .iter()
                .map(|&c| DemandProver::new(&g, source).demand_prove(Vertex::Value(idx), c))
                .collect();
            // Monotonicity: a weaker bound can only become easier to prove.
            for w in fresh.windows(2) {
                assert!(
                    w[1] || !w[0],
                    "provability must be monotone in c: {fresh:?}"
                );
            }
            let mut decreasing = DemandProver::new(&g, source);
            // Evaluate eagerly from the largest c down, then restore order.
            let mut dec: Vec<bool> = range
                .iter()
                .rev()
                .map(|&c| decreasing.demand_prove(Vertex::Value(idx), c))
                .collect();
            dec.reverse();
            let mut increasing = DemandProver::new(&g, source);
            let inc: Vec<bool> = range
                .iter()
                .map(|&c| increasing.demand_prove(Vertex::Value(idx), c))
                .collect();
            assert_eq!(
                fresh, dec,
                "{problem:?}: decreasing-c order changed answers"
            );
            assert_eq!(
                fresh, inc,
                "{problem:?}: increasing-c order changed answers"
            );
        }
    }

    /// Constant-vs-constant queries in both problems: the Lower encoding
    /// negates potentials (`x ↦ −x`), so `demand_prove(t, c)` asks
    /// `t ≥ source − c`. Exercises both the graph-interned potential fast
    /// path and the `trivial` fallback for un-interned vertices.
    #[test]
    fn constant_vs_constant_sign_mapping() {
        // x := 3 and y := 5 intern Const(3) and Const(5) in the graph.
        let f = essa(
            "fn f() -> int {
                let x: int = 3;
                let y: int = 5;
                return x + y;
            }",
        );
        for (interned, label) in [(true, "interned"), (false, "trivial")] {
            let (t3, s5) = if interned {
                (Vertex::Const(3), Vertex::Const(5))
            } else {
                // Constants absent from the graph take the `trivial` path.
                (Vertex::Const(30), Vertex::Const(50))
            };
            let (tv, sv) = if interned { (3i64, 5i64) } else { (30, 50) };

            // Upper: t − s ≤ c.
            let gu = InequalityGraph::build(&f, Problem::Upper, None);
            if interned {
                assert!(gu.lookup(t3).is_some(), "Const({tv}) should be interned");
            }
            let mut pu = DemandProver::new(&gu, s5);
            assert!(pu.demand_prove(t3, tv - sv), "{label}: t − s ≤ t−s");
            assert!(pu.demand_prove(t3, tv - sv + 1));
            assert!(!pu.demand_prove(t3, tv - sv - 1), "{label}: bound is tight");

            // Lower: t ≥ s − c, i.e. (−t) − (−s) ≤ c.
            let gl = InequalityGraph::build(&f, Problem::Lower, None);
            let mut pl = DemandProver::new(&gl, s5);
            assert!(pl.demand_prove(t3, sv - tv), "{label}: t ≥ s − (s−t)");
            assert!(pl.demand_prove(t3, sv - tv + 1));
            assert!(!pl.demand_prove(t3, sv - tv - 1), "{label}: bound is tight");
            // And with the roles swapped the signs flip: s ≥ t − c holds
            // already at c = t − s (negative slack needed is none).
            let mut pl2 = DemandProver::new(&gl, t3);
            assert!(pl2.demand_prove(s5, 0), "{label}: 5 ≥ 3 needs no slack");
            assert!(!pl2.demand_prove(s5, tv - sv - 1));
        }
    }

    #[test]
    fn pre_prover_finds_paper_section6_insertion() {
        // §6 of the paper: the running example (Figure 3) with the
        // `limit := a.length` assignment replaced by an unknown initial
        // value. The check `a[j]` becomes partially redundant: the φ for
        // `limit` at the while-head has a proven argument (the decremented
        // loop-carried `limit3`, via a harmless negative cycle) and a
        // failing one (`limit0` from the entry edge), so ABCD inserts a
        // compensating check on the entry edge.
        let f = essa(
            "fn f(a: int[], n: int) -> int {
                let limit: int = n;
                let st: int = 0 - 1;
                let s: int = 0;
                while (st < limit) {
                    st = st + 1;
                    limit = limit - 1;
                    for (let j: int = st; j < limit; j = j + 1) {
                        s = s + a[j];
                    }
                }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, j) = upper_checks(&f)[0];
        // Fully redundant? No (limit's origin is unknown).
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        assert!(!p.demand_prove(Vertex::Value(j), -1));
        // Partially redundant: one insertion point, on the φ in-edge
        // carrying the initial limit.
        let mut pp = PreProver::new(&g, Vertex::ArrayLen(a), None);
        match pp.demand_prove(Vertex::Value(j), -1) {
            PreOutcome::ProvenWithInsertions(ins) => {
                assert_eq!(ins.len(), 1, "{ins:?}\n{f}");
                // The paper's compensating check is `check a[limit0 − 2]`
                // (distance from limit0 to j2 is −2), i.e. the remaining
                // query at limit0 is c′ = +1: limit0 − a.length ≤ 1.
                assert_eq!(ins[0].c_prime, 1, "{ins:?}\n{f}");
            }
            other => panic!("expected insertions, got {other:?}\n{f}"),
        }
    }

    #[test]
    fn pre_prover_reports_failed_when_unsalvageable() {
        let f = essa("fn f(a: int[], i: int) -> int { return a[i]; }");
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut pp = PreProver::new(&g, Vertex::ArrayLen(a), None);
        assert_eq!(pp.demand_prove(Vertex::Value(i), -1), PreOutcome::Failed);
    }

    /// A zero-fuel query must fail conservatively (check stays) and flag
    /// exhaustion — and a refueled retry of the *same* query must succeed,
    /// proving the memo was not poisoned by the cut-off traversal.
    #[test]
    fn fuel_exhaustion_is_conservative_and_memo_clean() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        p.set_query_fuel(0);
        assert!(
            !p.demand_prove(Vertex::Value(i), -1),
            "no fuel → not proven"
        );
        assert!(p.last_query_exhausted());
        assert_eq!(p.exhausted_queries, 1);
        // Refuel: the genuine verdict must come back (nothing False was
        // memoized during the starved attempt).
        p.set_query_fuel(u64::MAX - p.steps);
        assert!(
            p.demand_prove(Vertex::Value(i), -1),
            "refueled query proves"
        );
        assert!(!p.last_query_exhausted());

        // Same contract for the PRE prover.
        let mut pp = PreProver::new(&g, Vertex::ArrayLen(a), None);
        pp.set_query_fuel(0);
        assert_eq!(pp.demand_prove(Vertex::Value(i), -1), PreOutcome::Failed);
        assert!(pp.last_query_exhausted());
        pp.set_query_fuel(u64::MAX - pp.steps);
        assert_eq!(pp.demand_prove(Vertex::Value(i), -1), PreOutcome::Proven);
    }

    /// A partially-starved traversal (fuel > 0 but below the query's need)
    /// must also stay conservative and leave later queries untainted.
    #[test]
    fn partial_fuel_starvation_does_not_taint_memo() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) {
                    s = s + a[i] + a[i + 0];
                }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let checks = upper_checks(&f);
        let (a, i) = checks[0];
        // How much does an unbudgeted proof cost?
        let full_steps = {
            let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
            assert!(p.demand_prove(Vertex::Value(i), -1));
            p.steps
        };
        // Starve every strictly-smaller budget, then refuel and re-prove.
        for fuel in 0..full_steps {
            let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
            p.set_query_fuel(fuel);
            assert!(
                !p.demand_prove(Vertex::Value(i), -1),
                "budget {fuel} < {full_steps} must not prove"
            );
            assert!(p.last_query_exhausted());
            p.set_query_fuel(u64::MAX - p.steps);
            assert!(
                p.demand_prove(Vertex::Value(i), -1),
                "refuel after budget {fuel} must prove (memo poisoned?)"
            );
        }
    }

    /// Regression (per-query fuel): the budget is an allowance for *each*
    /// query, not a shared pool — query N's spend must not starve query
    /// N+1. The old implementation armed `fuel_stop` once in
    /// `set_query_fuel`, so a budget sized for one query silently failed
    /// every query after the first.
    #[test]
    fn query_fuel_is_per_query_not_shared() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) {
                    s = s + a[i] + a[i + 0];
                }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let checks = upper_checks(&f);
        assert_eq!(checks.len(), 2);
        let a = checks[0].0;
        // Cost of each query on its own (fresh prover, no memo reuse).
        let solo_cost = |idx: abcd_ir::Value| {
            let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
            assert!(p.demand_prove(Vertex::Value(idx), -1));
            p.steps
        };
        let max_cost = solo_cost(checks[0].1).max(solo_cost(checks[1].1));

        // One shared prover, the budget set ONCE, sized for a single
        // query: both queries must still prove (each gets its own
        // allowance).
        let mut p = DemandProver::new(&g, Vertex::ArrayLen(a));
        p.set_query_fuel(max_cost);
        for &(_, idx) in &checks {
            assert!(
                p.demand_prove(Vertex::Value(idx), -1),
                "a later query was starved by an earlier query's spend"
            );
            assert!(!p.last_query_exhausted());
        }

        // Same contract for the PRE prover.
        let mut pp = PreProver::new(&g, Vertex::ArrayLen(a), None);
        pp.set_query_fuel(max_cost.max(64));
        for &(_, idx) in &checks {
            assert_eq!(
                pp.demand_prove(Vertex::Value(idx), -1),
                PreOutcome::Proven,
                "PRE query starved by an earlier query's spend"
            );
        }
    }

    /// Regression (overflow audit): near-`i64::MAX` constants in the
    /// constraint system must not wrap during path-weight accumulation —
    /// the prover answers conservatively (check stays) and raises the
    /// overflow flag instead.
    #[test]
    fn near_i64_max_constants_fail_conservatively() {
        use abcd_ir::Value;
        let f = essa("fn f() -> int { return 0; }");
        let mut g = InequalityGraph::build(&f, Problem::Upper, None);
        let (src, t, u) = (
            Vertex::Value(Value::new(200)),
            Vertex::Value(Value::new(201)),
            Vertex::Value(Value::new(202)),
        );
        // Two chained edges whose weights sum far outside i64: slack
        // adjustment t → u → src would compute c − MAX−… twice.
        g.assume_fact(u, t, i64::MAX - 1); // t ≤ u + (MAX−1)
        g.assume_fact(src, u, i64::MAX - 1); // u ≤ src + (MAX−1)
        let mut p = DemandProver::new(&g, src);
        assert!(
            !p.demand_prove(t, -2),
            "overflowing derivation must refute conservatively"
        );
        assert!(p.last_query_overflowed());
        // A follow-up benign query is unaffected (no tainted memo): the
        // direct one-edge derivation still proves.
        assert!(p.demand_prove(u, i64::MAX - 1));
        assert!(!p.last_query_overflowed());

        // PreProver: same conservative contract.
        let mut pp = PreProver::new(&g, src, None);
        assert_eq!(pp.demand_prove(t, -2), PreOutcome::Failed);
        assert!(pp.last_query_overflowed());
    }

    #[test]
    fn backend_parse_and_names_roundtrip() {
        for b in [
            ProverBackend::Demand,
            ProverBackend::Batch,
            ProverBackend::Dbm,
            ProverBackend::Auto,
        ] {
            assert_eq!(ProverBackend::parse(b.name()), Some(b));
        }
        assert_eq!(ProverBackend::parse("octagon"), None);
        assert!(ProverBackend::Demand.index() != ProverBackend::Batch.index());
        assert!(ProverBackend::Batch.index() != ProverBackend::Dbm.index());
    }

    /// All three engines agree check-by-check on the canonical shapes, and
    /// `auto` resolves to a concrete backend.
    #[test]
    fn backends_agree_on_suite_shapes() {
        let sources = [
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f(a: int[], i: int) -> int {
                if (0 <= i) { if (i < a.length) { return a[i]; } }
                return 0;
            }",
            "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
                return s;
            }",
            "fn f() -> int { let a: int[] = new int[10]; return a[9] + a[0]; }",
        ];
        for src in sources {
            let f = essa(src);
            for problem in [Problem::Upper, Problem::Lower] {
                let g = InequalityGraph::build(&f, problem, None);
                for (a, idx) in upper_checks(&f) {
                    let source = match problem {
                        Problem::Upper => Vertex::ArrayLen(a),
                        Problem::Lower => Vertex::Const(0),
                    };
                    let c = match problem {
                        Problem::Upper => -1,
                        Problem::Lower => 0,
                    };
                    let oracle = DemandProver::new(&g, source).demand_prove(Vertex::Value(idx), c);
                    for backend in [
                        ProverBackend::Demand,
                        ProverBackend::Batch,
                        ProverBackend::Dbm,
                        ProverBackend::Auto,
                    ] {
                        let mut p = AnyProver::new(&g, source, backend);
                        assert_ne!(p.backend(), ProverBackend::Auto);
                        assert_eq!(
                            p.demand_prove(Vertex::Value(idx), c),
                            oracle,
                            "{backend:?} diverged from demand on {idx} ({problem:?})\n{src}"
                        );
                    }
                }
            }
        }
    }

    /// Sweep backends honour the per-query fuel contract: a starved sweep
    /// fails conservatively and a refueled retry succeeds.
    #[test]
    fn sweep_backend_fuel_exhaustion_is_conservative() {
        let f = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let (a, i) = upper_checks(&f)[0];
        for kind in [ProverBackend::Batch, ProverBackend::Dbm] {
            let mut p = SweepProver::new(&g, Vertex::ArrayLen(a), kind);
            p.set_query_fuel(0);
            assert!(!p.demand_prove(Vertex::Value(i), -1), "{kind:?}");
            assert!(p.last_query_exhausted(), "{kind:?}");
            assert_eq!(p.exhausted_queries, 1);
            p.set_query_fuel(u64::MAX);
            assert!(p.demand_prove(Vertex::Value(i), -1), "{kind:?} refueled");
            assert!(!p.last_query_exhausted());
            // Second probe hits the table.
            assert!(p.demand_prove(Vertex::Value(i), -1));
            assert!(p.memo_hits >= 1, "{kind:?} table probe not counted");
        }
    }
}
