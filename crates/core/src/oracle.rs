//! VM-differential oracle: the ground truth behind translation validation.
//!
//! Runs a module's entry point on the interpreter and compares a candidate
//! (optimized, possibly sabotaged) module against a reference (unoptimized)
//! one. The comparison is exact on results and printed output, and
//! *site-insensitive* on traps: `merge_remaining_checks` legitimately
//! reassigns a merged check to the upper check's site, so two modules that
//! trap on the same index/length with the same trap variant agree even if
//! the recorded [`CheckSite`](abcd_ir::CheckSite) labels differ. Trap
//! variant mismatches — in particular a candidate raising
//! [`TrapKind::UncheckedAccessOutOfBounds`] where the reference raised
//! [`TrapKind::BoundsCheckFailed`] — are exactly the miscompilations the
//! oracle exists to expose.

use abcd_ir::Module;
use abcd_vm::{RtVal, Trap, TrapKind, Vm};
use std::fmt;

/// What one run of an entry point produced.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RunOutcome {
    /// The return value, or the trap that stopped execution.
    pub result: Result<Option<RtVal>, Trap>,
    /// Everything the program printed.
    pub output: Vec<i64>,
}

/// Runs `entry` (no arguments) on a fresh VM.
pub fn run_entry(module: &Module, entry: &str) -> RunOutcome {
    let mut vm = Vm::new(module);
    let result = vm.call_by_name(entry, &[]);
    RunOutcome {
        output: vm.output().to_vec(),
        result,
    }
}

/// A divergence found by [`differential`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Divergence {
    /// Return values (or trap/return status) differ.
    Result {
        /// What the reference produced.
        reference: Box<RunOutcome>,
        /// What the candidate produced.
        candidate: Box<RunOutcome>,
    },
    /// Printed output differs.
    Output {
        /// What the reference printed.
        reference: Vec<i64>,
        /// What the candidate printed.
        candidate: Vec<i64>,
    },
    /// The candidate module made the interpreter panic — IR malformed
    /// enough to violate the VM's own invariants (e.g. a use of a value the
    /// executed path never defined). Always a miscompilation: the reference
    /// interpreter never panics on frontend-produced modules.
    CandidatePanicked,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Result {
                reference,
                candidate,
            } => write!(
                f,
                "result diverged: reference {:?}, candidate {:?}",
                reference.result, candidate.result
            ),
            Divergence::Output {
                reference,
                candidate,
            } => write!(
                f,
                "output diverged: reference printed {} values, candidate {} \
                 (first mismatch at {:?})",
                reference.len(),
                candidate.len(),
                reference
                    .iter()
                    .zip(candidate.iter())
                    .position(|(a, b)| a != b)
            ),
            Divergence::CandidatePanicked => {
                write!(f, "candidate module made the interpreter panic")
            }
        }
    }
}

/// Compares `candidate` against `reference` on `entry`, returning the first
/// divergence (or `None` when they agree).
///
/// Traps are compared by [`traps_equivalent`]; results and output must be
/// identical.
pub fn differential(reference: &Module, candidate: &Module, entry: &str) -> Option<Divergence> {
    let want = run_entry(reference, entry);
    // The candidate may be arbitrarily damaged (the fault-injection suite
    // feeds sabotaged modules through here), so contain even an interpreter
    // panic and report it as the miscompilation it is.
    let got = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_entry(candidate, entry)
    })) {
        Ok(outcome) => outcome,
        Err(_) => return Some(Divergence::CandidatePanicked),
    };
    let results_agree = match (&want.result, &got.result) {
        (Ok(a), Ok(b)) => a == b,
        (Err(a), Err(b)) => traps_equivalent(a, b),
        _ => false,
    };
    if !results_agree {
        return Some(Divergence::Result {
            reference: Box::new(want),
            candidate: Box::new(got),
        });
    }
    if want.output != got.output {
        return Some(Divergence::Output {
            reference: want.output,
            candidate: got.output,
        });
    }
    None
}

/// Site-insensitive trap equivalence: same function, same variant, same
/// observable data (index/length where applicable), ignoring [`CheckSite`]
/// labels that `merge_remaining_checks` may have reassigned.
///
/// [`CheckSite`]: abcd_ir::CheckSite
pub fn traps_equivalent(a: &Trap, b: &Trap) -> bool {
    if a.func != b.func {
        return false;
    }
    match (&a.kind, &b.kind) {
        (
            TrapKind::BoundsCheckFailed {
                index: i1, len: l1, ..
            },
            TrapKind::BoundsCheckFailed {
                index: i2, len: l2, ..
            },
        ) => i1 == i2 && l1 == l2,
        (k1, k2) => k1 == k2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_ir::{CheckSite, FuncId};

    fn trap(kind: TrapKind) -> Trap {
        Trap {
            kind,
            func: FuncId::new(0),
        }
    }

    #[test]
    fn traps_compare_site_insensitively() {
        let a = trap(TrapKind::BoundsCheckFailed {
            site: CheckSite::new(1),
            index: 7,
            len: 5,
        });
        let b = trap(TrapKind::BoundsCheckFailed {
            site: CheckSite::new(9),
            index: 7,
            len: 5,
        });
        assert!(traps_equivalent(&a, &b));
    }

    #[test]
    fn traps_distinguish_data_and_variant() {
        let a = trap(TrapKind::BoundsCheckFailed {
            site: CheckSite::new(1),
            index: 7,
            len: 5,
        });
        let wrong_index = trap(TrapKind::BoundsCheckFailed {
            site: CheckSite::new(1),
            index: 8,
            len: 5,
        });
        let unchecked = trap(TrapKind::UncheckedAccessOutOfBounds { index: 7, len: 5 });
        assert!(!traps_equivalent(&a, &wrong_index));
        assert!(!traps_equivalent(&a, &unchecked));
    }

    #[test]
    fn differential_is_clean_on_identity() {
        let module =
            abcd_frontend::compile("fn main() -> int { let a: int[] = new int[3]; return a[1]; }")
                .unwrap();
        assert!(differential(&module, &module, "main").is_none());
    }

    #[test]
    fn differential_detects_divergent_results() {
        let reference = abcd_frontend::compile("fn main() -> int { return 1; }").unwrap();
        let candidate = abcd_frontend::compile("fn main() -> int { return 2; }").unwrap();
        assert!(differential(&reference, &candidate, "main").is_some());
    }
}
