//! The inequality graph (§4 of the paper).
//!
//! Vertices are e-SSA values, symbolic array lengths, and integer constants.
//! A directed edge `u → v` with weight `c` encodes the difference constraint
//! `v ≤ u + c`. φ-defined vertices are **max** vertices (a value merged from
//! several control-flow paths is bounded by the *weakest* incoming
//! constraint); all other vertices are **min** vertices (along one path the
//! *strongest* constraint applies). This max/min split is what turns the
//! graph into a hypergraph and the distance computation into the generalized
//! shortest path of §4.
//!
//! **Upper and lower problems.** The paper derives the lower-bound problem
//! as the dual (§7.2). We reuse one solver by the standard negation trick:
//! the lower system `v ≥ u + c` maps through `x ↦ −x` onto `(−v) ≤ (−u) − c`,
//! so [`Problem::Lower`] graphs store edge weights already negated, constant
//! vertices carry potential `−k`, and the source vertex of a lower-bound
//! query is the constant `0` (§7.2: "the source vertex … is the lower bound,
//! which in Java is the constant 0").

use abcd_ir::{
    Block, CheckKind, CheckSite, CmpOp, Function, InstId, InstKind, PiGuard, Terminator, Type,
    Value, ValueDef,
};
use std::fmt;

/// Which bounds-check problem a graph encodes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Problem {
    /// `index ≤ A.length − 1` (§2–§6 of the paper).
    Upper,
    /// `index ≥ 0`, encoded in negated form (§7.2).
    Lower,
}

/// A vertex of the inequality graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vertex {
    /// An (integer-typed) e-SSA value.
    Value(Value),
    /// The symbolic length of the array held in an (array-typed) value.
    ArrayLen(Value),
    /// An integer constant.
    Const(i64),
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vertex::Value(v) => write!(f, "{v}"),
            Vertex::ArrayLen(v) => write!(f, "len({v})"),
            Vertex::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Dense vertex id inside one graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VertexId(pub(crate) u32);

impl VertexId {
    /// Creates a vertex id from a raw index (must be `< vertex_count()`).
    pub fn from_index(index: usize) -> VertexId {
        VertexId(u32::try_from(index).expect("vertex index overflow"))
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An in-edge: constraint `target ≤ src + weight` (in solver domain).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InEdge {
    /// Source vertex (the constraining one).
    pub src: VertexId,
    /// Weight in solver domain.
    pub weight: i64,
}

/// Vertex/edge/cycle summary of one graph — what `--prover auto` consults
/// to pick a backend per function (see
/// [`ProverBackend::resolve`](crate::ProverBackend::resolve)).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct GraphShape {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Back edges found by one DFS over the in-edge direction — a cheap
    /// proxy for the number of independent cycles.
    pub cycles: usize,
}

/// FxHash-style mix of one vertex — cheap, and good enough for the
/// open-addressed vertex table (distinct vertices differ in low bits).
fn vertex_hash(v: Vertex) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let (tag, payload) = match v {
        Vertex::Value(x) => (1u64, x.index() as u64),
        Vertex::ArrayLen(x) => (2, x.index() as u64),
        Vertex::Const(c) => (3, c as u64),
    };
    (payload ^ tag.rotate_left(32)).wrapping_mul(K)
}

/// Open-addressed `Vertex → VertexId` lookup: a power-of-two slot array of
/// vertex indices probed linearly, with the vertex arena itself as the key
/// store. Replaces the old `HashMap<Vertex, VertexId>` (SipHash, per-entry
/// boxes) with two cache lines of work per lookup and zero steady-state
/// allocation once capacity is reserved.
#[derive(Clone, Debug, Default)]
struct VertexTable {
    /// Slot values are vertex indices; `EMPTY` marks a free slot.
    slots: Vec<u32>,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl VertexTable {
    /// Finds `v`'s id, or the slot where it should be inserted.
    fn probe(&self, v: Vertex, vertices: &[Vertex]) -> Result<VertexId, usize> {
        debug_assert!(!self.slots.is_empty());
        let mask = self.slots.len() - 1;
        let mut i = vertex_hash(v) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY_SLOT {
                return Err(i);
            }
            if vertices[s as usize] == v {
                return Ok(VertexId(s));
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts `id` (for a vertex just pushed to `vertices`), growing and
    /// rehashing at 7/8 load.
    fn insert(&mut self, slot: usize, id: u32, vertices: &[Vertex]) {
        self.slots[slot] = id;
        let len = vertices.len();
        if len * 8 >= self.slots.len() * 7 {
            self.grow(vertices);
        }
    }

    /// Doubles capacity and rehashes every live vertex.
    fn grow(&mut self, vertices: &[Vertex]) {
        let cap = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(cap, EMPTY_SLOT);
        let mask = cap - 1;
        for (idx, &v) in vertices.iter().enumerate() {
            let mut i = vertex_hash(v) as usize & mask;
            while self.slots[i] != EMPTY_SLOT {
                i = (i + 1) & mask;
            }
            self.slots[i] = idx as u32;
        }
    }

    fn reset(&mut self) {
        if self.slots.is_empty() {
            self.slots.resize(16, EMPTY_SLOT);
        } else {
            self.slots.fill(EMPTY_SLOT);
        }
    }
}

/// The sparse, program-point-independent constraint system of one function.
///
/// # Memory layout
///
/// The graph is stored struct-of-arrays: per-vertex attributes live in
/// dense `VertexId`-indexed vectors, the vertex lookup is an
/// open-addressed [`VertexTable`], and edges are kept twice — an
/// insertion-ordered flat log (`building`, the source of truth every
/// mutation appends to) and CSR-packed in/out adjacency derived from it by
/// [`refresh`](Self::refresh). All prover backends read the CSR slices;
/// nothing on the prove path chases per-vertex `Vec`s or hashes a key.
#[derive(Clone, Debug)]
pub struct InequalityGraph {
    problem: Problem,
    vertices: Vec<Vertex>,
    table: VertexTable,
    /// Flat `(dst, edge)` log in canonical (vertex-major, insertion-stable)
    /// order. Appends from `assume_fact` trigger a CSR refresh.
    building: Vec<(u32, InEdge)>,
    /// CSR in-edge offsets (`vertex_count() + 1` entries once finalized).
    csr_off: Vec<u32>,
    /// CSR-packed in-edges, vertex-major.
    csr: Vec<InEdge>,
    /// CSR out-neighbor offsets (same indexing).
    out_off: Vec<u32>,
    /// CSR-packed out-neighbors (destination vertex ids), source-major —
    /// what the sweep backend's reachability pass walks.
    out_dst: Vec<u32>,
    /// Whether the CSR views are current with `building`.
    finalized: bool,
    is_max: Vec<bool>,
    /// Solver-domain potential of constant vertices.
    potential: Vec<Option<i64>>,
    /// Defining block of each vertex (for the local/global split of Fig. 6);
    /// `None` for constants and parameters.
    def_block: Vec<Option<Block>>,
    /// `(φ result, φ argument, seq, predecessor)` rows, sorted by
    /// `(result, argument, seq)` once finalized; `seq` preserves the
    /// insertion order of duplicate pairs so lookups are deterministic.
    phi: Vec<(Value, Value, u32, Block)>,
    /// Raw (unsigned-by-problem) exact constant values, dense by value
    /// index: constant-defined values and constant-length allocations.
    raw_value: Vec<Option<i64>>,
    raw_len: Vec<Option<i64>>,
    /// Check sites whose C5 edges are suppressed during construction.
    /// Translation validation builds graphs this way: an eliminated check's
    /// own π guard must not participate in re-justifying the elimination.
    excluded_sites: Vec<CheckSite>,
    /// Counting-sort scratch for the CSR derivations, reused across
    /// refreshes (and across functions when the graph shell is pooled).
    counts: Vec<u32>,
}

impl InequalityGraph {
    /// Builds the inequality graph of an e-SSA-form function.
    ///
    /// When `only_block` is given, only constraints generated by instructions
    /// of that block are added — used to classify a removal as *local*
    /// (provable inside one basic block) for the Figure 6 split.
    pub fn build(func: &Function, problem: Problem, only_block: Option<Block>) -> Self {
        Self::build_excluding(func, problem, only_block, Vec::new())
    }

    /// Like [`InequalityGraph::build`], but suppresses the C5 edges of the
    /// given check sites. Translation validation uses this to re-prove an
    /// eliminated check *without* assuming the very fact that check (or any
    /// other still-unvalidated elimination) would have established — the
    /// removed checks' π guards survive in the IR and would otherwise make
    /// every elimination circularly self-justifying.
    pub fn build_excluding(
        func: &Function,
        problem: Problem,
        only_block: Option<Block>,
        excluded_sites: Vec<CheckSite>,
    ) -> Self {
        let mut g = InequalityGraph::empty(problem);
        g.rebuild_excluding(func, problem, only_block, &excluded_sites);
        g
    }

    /// An empty graph shell. Storage is reserved lazily; pool shells with
    /// [`rebuild_excluding`](Self::rebuild_excluding) to reuse capacity
    /// across functions.
    pub(crate) fn empty(problem: Problem) -> Self {
        InequalityGraph {
            problem,
            vertices: Vec::new(),
            table: VertexTable::default(),
            building: Vec::new(),
            csr_off: Vec::new(),
            csr: Vec::new(),
            out_off: Vec::new(),
            out_dst: Vec::new(),
            finalized: false,
            is_max: Vec::new(),
            potential: Vec::new(),
            def_block: Vec::new(),
            phi: Vec::new(),
            raw_value: Vec::new(),
            raw_len: Vec::new(),
            excluded_sites: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Rebuilds this graph in place for a new function, reusing every
    /// buffer's capacity (the pooled-shell path of the driver's scratch
    /// arena). Equivalent to [`build_excluding`](Self::build_excluding).
    pub(crate) fn rebuild_excluding(
        &mut self,
        func: &Function,
        problem: Problem,
        only_block: Option<Block>,
        excluded_sites: &[CheckSite],
    ) {
        self.problem = problem;
        self.vertices.clear();
        self.table.reset();
        self.building.clear();
        self.csr_off.clear();
        self.csr.clear();
        self.out_off.clear();
        self.out_dst.clear();
        self.finalized = false;
        self.is_max.clear();
        self.potential.clear();
        self.def_block.clear();
        self.phi.clear();
        self.excluded_sites.clear();
        self.excluded_sites.extend_from_slice(excluded_sites);
        // Prepass: exact potentials, dense by value index. A vertex whose
        // runtime value is a known constant k gets potential k (upper) /
        // −k (lower); the solver compares two known potentials
        // numerically, which is how `new int[10]` proves `a[9]` without
        // equality edges.
        self.raw_value.clear();
        self.raw_len.clear();
        self.raw_value.resize(func.value_count(), None);
        self.raw_len.resize(func.value_count(), None);
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                let inst = func.inst(id);
                if let InstKind::Const(c) = &inst.kind {
                    if let Some(r) = inst.result {
                        self.raw_value[r.index()] = Some(*c);
                    }
                }
            }
        }
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                let inst = func.inst(id);
                if let InstKind::NewArray { len, .. } = &inst.kind {
                    if let (Some(r), Some(k)) = (inst.result, self.raw_value[len.index()]) {
                        self.raw_len[r.index()] = Some(k);
                    }
                }
            }
        }
        let locations = func.inst_locations();
        for b in func.blocks() {
            if let Some(ob) = only_block {
                if b != ob {
                    continue;
                }
            }
            for &id in func.block(b).insts() {
                self.add_constraints_for(func, b, id, &locations);
            }
        }
        self.refresh();
    }

    /// (Re)derives the CSR in/out views and the sorted φ table from the
    /// edge log, and rewrites the log itself into canonical (vertex-major,
    /// insertion-stable) order so indices into the log and the CSR agree.
    /// O(V + E), allocation-free once capacities are warm.
    fn refresh(&mut self) {
        let n = self.vertices.len();
        // In-edges: stable counting sort of the log by destination.
        self.counts.clear();
        self.counts.resize(n, 0);
        for &(dst, _) in &self.building {
            self.counts[dst as usize] += 1;
        }
        self.csr_off.clear();
        let mut acc = 0u32;
        for i in 0..n {
            self.csr_off.push(acc);
            acc += self.counts[i];
        }
        self.csr_off.push(acc);
        self.csr.clear();
        self.csr.resize(
            self.building.len(),
            InEdge {
                src: VertexId(0),
                weight: 0,
            },
        );
        // Reuse `counts` as the scatter cursor.
        self.counts.copy_from_slice(&self.csr_off[..n]);
        for &(dst, edge) in &self.building {
            let pos = self.counts[dst as usize];
            self.counts[dst as usize] = pos + 1;
            self.csr[pos as usize] = edge;
        }
        // Canonicalize the log to CSR order so flat indices agree between
        // the two views (what lets fault perturbation mutate both in
        // lockstep). Per-vertex insertion order is preserved: the counting
        // sort is stable.
        self.building.clear();
        for v in 0..n {
            let (lo, hi) = (self.csr_off[v] as usize, self.csr_off[v + 1] as usize);
            for i in lo..hi {
                self.building.push((v as u32, self.csr[i]));
            }
        }
        // Out-neighbors: counting sort of the canonical log by source.
        self.counts.clear();
        self.counts.resize(n, 0);
        for &(_, edge) in &self.building {
            self.counts[edge.src.index()] += 1;
        }
        self.out_off.clear();
        let mut acc = 0u32;
        for i in 0..n {
            self.out_off.push(acc);
            acc += self.counts[i];
        }
        self.out_off.push(acc);
        self.out_dst.clear();
        self.out_dst.resize(self.building.len(), 0);
        self.counts.copy_from_slice(&self.out_off[..n]);
        for &(dst, edge) in &self.building {
            let pos = self.counts[edge.src.index()];
            self.counts[edge.src.index()] = pos + 1;
            self.out_dst[pos as usize] = dst;
        }
        // φ rows sort by (result, argument, seq): deterministic, duplicate
        // pairs keep their insertion order, lookups binary-search a range.
        self.phi.sort_unstable_by_key(|&(x, a, seq, _)| (x, a, seq));
        self.finalized = true;
    }

    /// The problem this graph encodes.
    pub fn problem(&self) -> Problem {
        self.problem
    }

    /// The vertex id for `v`, if it occurs in any constraint.
    pub fn lookup(&self, v: Vertex) -> Option<VertexId> {
        if self.vertices.is_empty() {
            return None;
        }
        self.table.probe(v, &self.vertices).ok()
    }

    /// The vertex behind an id.
    pub fn vertex(&self, id: VertexId) -> Vertex {
        self.vertices[id.0 as usize]
    }

    /// In-edges of `v` (constraints bounding `v`), as a CSR slice.
    pub fn in_edges(&self, v: VertexId) -> &[InEdge] {
        debug_assert!(self.finalized, "graph read before CSR refresh");
        let lo = self.csr_off[v.0 as usize] as usize;
        let hi = self.csr_off[v.0 as usize + 1] as usize;
        &self.csr[lo..hi]
    }

    /// Out-neighbors of `v` (vertices `v` constrains), as a CSR slice of
    /// destination ids — the adjacency the sweep backend's reachability
    /// pass walks without rebuilding per-vertex vectors.
    pub fn out_neighbors(&self, v: VertexId) -> &[u32] {
        debug_assert!(self.finalized, "graph read before CSR refresh");
        let lo = self.out_off[v.0 as usize] as usize;
        let hi = self.out_off[v.0 as usize + 1] as usize;
        &self.out_dst[lo..hi]
    }

    /// Is `v` a max (φ) vertex?
    pub fn is_max(&self, v: VertexId) -> bool {
        self.is_max[v.0 as usize]
    }

    /// Solver-domain potential of `v` (known only for constants).
    pub fn potential(&self, v: VertexId) -> Option<i64> {
        self.potential[v.0 as usize]
    }

    /// The block whose instruction defined `v` (None for constants/params).
    pub fn def_block(&self, v: VertexId) -> Option<Block> {
        self.def_block[v.0 as usize]
    }

    /// The predecessor blocks whose φ in-edges carry `arg` into `phi`
    /// (empty if `phi` is not a φ result or `arg` not one of its
    /// arguments), in φ-argument order. Binary search over the sorted flat
    /// φ table — no per-pair `Vec`s, no hashing.
    pub fn phi_pred(&self, phi: Value, arg: Value) -> impl Iterator<Item = Block> + '_ {
        debug_assert!(self.finalized, "graph read before CSR refresh");
        let lo = self
            .phi
            .partition_point(|&(x, a, _, _)| (x, a) < (phi, arg));
        let hi = self
            .phi
            .partition_point(|&(x, a, _, _)| (x, a) <= (phi, arg));
        self.phi[lo..hi].iter().map(|&(_, _, _, b)| b)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.building.len()
    }

    /// Computes the [`GraphShape`] summary (O(V + E): one DFS counting
    /// back edges).
    pub fn shape(&self) -> GraphShape {
        let n = self.vertex_count();
        let mut color = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut cycles = 0;
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for root in 0..n {
            if color[root] != 0 {
                continue;
            }
            color[root] = 1;
            stack.push((root, 0));
            while let Some((v, ei)) = stack.last().copied() {
                let edges = self.in_edges(VertexId::from_index(v));
                if ei < edges.len() {
                    stack.last_mut().expect("stack nonempty").1 += 1;
                    let u = edges[ei].src.index();
                    match color[u] {
                        0 => {
                            color[u] = 1;
                            stack.push((u, 0));
                        }
                        1 => cycles += 1, // back edge closes a cycle
                        _ => {}
                    }
                } else {
                    color[v] = 2;
                    stack.pop();
                }
            }
        }
        GraphShape {
            vertices: n,
            edges: self.edge_count(),
            cycles,
        }
    }

    /// Adds an *assumed* fact `v ≤ u + c` (upper graph) / `v ≥ u + c`
    /// (lower graph) to the system — used by the interprocedural extension
    /// to inject verified parameter facts (see [`crate::interproc`]).
    ///
    /// The caller is responsible for the fact's validity; like every edge,
    /// it must not create a φ-free cycle (facts about parameters cannot:
    /// parameter vertices have no out-edges leading back to array lengths
    /// or constants).
    pub fn assume_fact(&mut self, u: Vertex, v: Vertex, c: i64) {
        // `−i64::MIN` does not exist; dropping the edge is conservative
        // (fewer facts, fewer proofs — edges into max vertices are always
        // the weight-0 φ identities, so a dropped edge can only make
        // proofs harder, never easier).
        let weight = match self.problem {
            Problem::Upper => c,
            Problem::Lower => match c.checked_neg() {
                Some(w) => w,
                None => return,
            },
        };
        if u == v {
            return;
        }
        let us = self.intern(u);
        let vs = self.intern(v);
        self.building.push((vs.0, InEdge { src: us, weight }));
        // Facts arrive after construction, so keep the CSR views current.
        self.refresh();
    }

    /// Fault injection: deterministically strengthens one edge by
    /// `1..=max_delta` (solver domain). Strengthening fabricates an
    /// unjustified fact, the *dangerous* direction — proofs get easier, so
    /// a wrong elimination becomes possible and translation validation must
    /// catch it. No-op on an edgeless graph.
    pub(crate) fn perturb_random_edge(&mut self, rng: &mut crate::faults::Lcg, max_delta: i64) {
        let total = self.edge_count();
        if total == 0 {
            return;
        }
        let pick = (rng.next() % total as u64) as usize;
        let delta = 1 + (rng.next() % max_delta.max(1) as u64) as i64;
        // The canonical log and the CSR share flat indices (vertex-major
        // order); mutate both so later refreshes keep the perturbation.
        self.csr[pick].weight -= delta;
        self.building[pick].1.weight -= delta;
    }

    // ---- construction --------------------------------------------------

    fn intern(&mut self, v: Vertex) -> VertexId {
        if self.table.slots.is_empty() {
            self.table.reset();
        }
        let slot = match self.table.probe(v, &self.vertices) {
            Ok(id) => return id,
            Err(slot) => slot,
        };
        // `from_index` rejects indices past u32::MAX with a clean panic
        // instead of the old silent `as u32` truncation, which would have
        // aliased distinct vertices (the driver's panic isolation converts
        // this into a fail-open PassPanic incident).
        let id = VertexId::from_index(self.vertices.len());
        self.vertices.push(v);
        self.table.insert(slot, id.0, &self.vertices);
        self.is_max.push(false);
        // Raw exact values come from the dense prepass tables; synthetic
        // vertices interned after a build (solver tests, assumed facts) sit
        // past the prepass range and simply have no known value.
        let raw = match v {
            Vertex::Const(k) => Some(k),
            Vertex::Value(x) => self.raw_value.get(x.index()).copied().flatten(),
            Vertex::ArrayLen(x) => self.raw_len.get(x.index()).copied().flatten(),
        };
        // A constant whose negation does not exist gets no potential at
        // all (conservative: potential-less vertices prove nothing).
        self.potential.push(raw.and_then(|k| match self.problem {
            Problem::Upper => Some(k),
            Problem::Lower => k.checked_neg(),
        }));
        self.def_block.push(None);
        // Every array length is non-negative; in the lower problem this is
        // the edge form of "array length ≥ 0" the paper mentions in §4.
        if let (Vertex::ArrayLen(_), Problem::Lower) = (v, self.problem) {
            let zero = self.intern(Vertex::Const(0));
            self.building.push((
                id.0,
                InEdge {
                    src: zero,
                    weight: 0,
                },
            ));
        }
        id
    }

    /// Adds the solver-domain edge for the *fact* `v ≤ u + c` (Upper) or
    /// `v ≥ u + c` (Lower).
    ///
    /// Self-edges are dropped: `v ≤ v + c` is either vacuous (`c ≥ 0`) or
    /// marks an infeasible path (`c < 0` from a never-true comparison like
    /// `x < x`), and either way it would form a φ-free cycle, violating the
    /// §4 consistency invariant the solver's `Reduced` handling relies on.
    fn add_fact(&mut self, u: Vertex, v: Vertex, c: i64, def_block: Option<Block>) {
        if u == v {
            return;
        }
        // See `assume_fact` for why a non-negatable weight drops the edge.
        let weight = match self.problem {
            Problem::Upper => c,
            Problem::Lower => match c.checked_neg() {
                Some(w) => w,
                None => return,
            },
        };
        let us = self.intern(u);
        let vs = self.intern(v);
        self.building.push((vs.0, InEdge { src: us, weight }));
        if self.def_block[vs.0 as usize].is_none() {
            self.def_block[vs.0 as usize] = def_block;
        }
    }

    /// Marks `v` as a max (φ) vertex. Crate-visible so solver tests can
    /// hand-craft cyclic systems without running the full frontend.
    pub(crate) fn mark_max(&mut self, v: Vertex) {
        let was_finalized = self.finalized;
        let before = self.vertices.len();
        let id = self.intern(v);
        self.is_max[id.0 as usize] = true;
        // Interning after a build may add vertices (tests hand-crafting
        // systems); re-derive the CSR views so their offsets cover them.
        if was_finalized && self.vertices.len() != before {
            self.refresh();
        }
    }

    fn add_constraints_for(
        &mut self,
        func: &Function,
        block: Block,
        id: InstId,
        locations: &[Option<(Block, usize)>],
    ) {
        let inst = func.inst(id);
        let result = inst.result;
        let db = Some(block);
        match &inst.kind {
            // C2: x := c  ⇒  x ≤ c (upper) / x ≥ c (lower). Exactness is
            // captured by the vertex potential, not a reverse edge: a
            // reverse edge would form a φ-free cycle, violating the §4
            // consistency invariant (every cycle is broken by a max vertex).
            InstKind::Const(c) => {
                let x = Vertex::Value(result.expect("const has result"));
                self.add_fact(Vertex::Const(*c), x, 0, db);
            }
            // C1: x := A.length ⇒ x ≤ A.length (upper) / x ≥ A.length ≥ 0.
            InstKind::ArrayLen { array } => {
                let x = Vertex::Value(result.expect("arraylen has result"));
                self.add_fact(Vertex::ArrayLen(*array), x, 0, db);
            }
            // C3: x := y ± c.
            InstKind::Binary { op, lhs, rhs } => {
                let x = Vertex::Value(result.expect("binary has result"));
                let konst = |v: Value| -> Option<i64> {
                    match func.value_def(v) {
                        ValueDef::Inst(i) => match func.inst(i).kind {
                            InstKind::Const(c) => Some(c),
                            _ => None,
                        },
                        ValueDef::Param(_) => None,
                    }
                };
                match op {
                    abcd_ir::BinOp::Add => {
                        if let Some(c) = konst(*rhs) {
                            self.add_fact(Vertex::Value(*lhs), x, c, db);
                        } else if let Some(c) = konst(*lhs) {
                            self.add_fact(Vertex::Value(*rhs), x, c, db);
                        }
                    }
                    abcd_ir::BinOp::Sub => {
                        // `x := y − i64::MIN` yields no (representable)
                        // constraint; skip it rather than wrap.
                        if let Some(nc) = konst(*rhs).and_then(i64::checked_neg) {
                            self.add_fact(Vertex::Value(*lhs), x, nc, db);
                        }
                    }
                    _ => {} // other operators generate no constraints
                }
            }
            // Copies are equalities; each graph keeps its direction.
            InstKind::Copy { arg } => {
                let x = result.expect("copy has result");
                if func.value_type(x) == &Type::Int {
                    self.add_fact(Vertex::Value(*arg), Vertex::Value(x), 0, db);
                } else if func.value_type(x).is_array() {
                    // Copying an array reference copies its length.
                    self.add_fact(Vertex::ArrayLen(*arg), Vertex::ArrayLen(x), 0, db);
                }
            }
            // Allocation bounds the length expression by the array length:
            // L ≤ len(x) (upper) / L ≥ len(x) (lower) — the direction that
            // lets `i < n` guards prove checks on `new int[n]`. (The reverse
            // direction would create a φ-free cycle; exact constant lengths
            // are handled via vertex potentials instead.)
            InstKind::NewArray { len, .. } => {
                let x = result.expect("newarray has result");
                self.add_fact(Vertex::ArrayLen(x), Vertex::Value(*len), 0, db);
            }
            // Control-flow merge: x ≤ max(args) (upper) / x ≥ min(args).
            InstKind::Phi { args } => {
                let x = result.expect("phi has result");
                if func.value_type(x) == &Type::Int {
                    for (pred, v) in args {
                        self.add_fact(Vertex::Value(*v), Vertex::Value(x), 0, db);
                        let seq = u32::try_from(self.phi.len()).expect("phi table overflow");
                        self.phi.push((x, *v, seq, *pred));
                    }
                    self.mark_max(Vertex::Value(x));
                } else if func.value_type(x).is_array() {
                    // len(φ(a,b)) is bounded by the weakest of len(a), len(b).
                    for (_, v) in args {
                        self.add_fact(Vertex::ArrayLen(*v), Vertex::ArrayLen(x), 0, db);
                    }
                    self.mark_max(Vertex::ArrayLen(x));
                }
            }
            // C4 and C5 constraints attach to π results.
            InstKind::Pi { input, guard } => {
                let x = result.expect("pi has result");
                // Identity: the π is a copy of its input.
                self.add_fact(Vertex::Value(*input), Vertex::Value(x), 0, db);
                match guard {
                    PiGuard::Check { array, kind, site } => match (kind, self.problem) {
                        _ if self.excluded_sites.contains(site) => {}
                        (CheckKind::Upper | CheckKind::Both, Problem::Upper) => {
                            // x ≤ A.length − 1
                            self.add_fact(Vertex::ArrayLen(*array), Vertex::Value(x), -1, db);
                        }
                        (CheckKind::Lower | CheckKind::Both, Problem::Lower) => {
                            // x ≥ 0
                            self.add_fact(Vertex::Const(0), Vertex::Value(x), 0, db);
                        }
                        _ => {}
                    },
                    PiGuard::Branch { block: from, taken } => {
                        self.add_branch_constraint(func, *from, *taken, *input, x, db, locations);
                    }
                }
            }
            _ => {}
        }
    }

    /// Emits the C4 constraint for a branch-guarded π: the comparison of the
    /// branch, oriented by the taken edge, relates the π results of its two
    /// operands (Table 1).
    #[allow(clippy::too_many_arguments)]
    fn add_branch_constraint(
        &mut self,
        func: &Function,
        from: Block,
        taken: bool,
        input: Value,
        result: Value,
        db: Option<Block>,
        locations: &[Option<(Block, usize)>],
    ) {
        let Some(Terminator::Branch { cond, .. }) = func.block(from).terminator_opt() else {
            return;
        };
        let ValueDef::Inst(cid) = func.value_def(*cond) else {
            return;
        };
        let InstKind::Compare { op, lhs, rhs } = func.inst(cid).kind else {
            return;
        };
        // Orient: the relation that holds on this edge.
        let op = if taken { op } else { op.negated() };
        let (my_side_is_lhs, other) = if input == lhs {
            (true, rhs)
        } else if input == rhs {
            (false, lhs)
        } else {
            return; // π of an unrelated value: no constraint
        };
        // The partner vertex: the other operand's π on the same edge, or the
        // raw operand if it has none (e.g. it is constant-defined).
        let my_block = locations
            .get(match func.value_def(result) {
                ValueDef::Inst(i) => i.index(),
                ValueDef::Param(_) => return,
            })
            .copied()
            .flatten()
            .map(|(b, _)| b);
        let partner = my_block
            .and_then(|b| find_partner_pi(func, b, from, taken, other))
            .map(Vertex::Value)
            .unwrap_or(Vertex::Value(other));
        let me = Vertex::Value(result);

        // The fact on this edge is `lhs' op rhs'` where lhs'/rhs' are the
        // edge-renamed (π) versions of the operands. Each π emits only the
        // constraints that bound *itself* (its partner's π emits the rest),
        // so the pair of πs materializes the full Table 1 row without
        // duplicate edges.
        if my_side_is_lhs {
            // fact: me op partner
            match (op, self.problem) {
                (CmpOp::Lt, Problem::Upper) => self.add_fact(partner, me, -1, db), // me ≤ p − 1
                (CmpOp::Le, Problem::Upper) => self.add_fact(partner, me, 0, db),  // me ≤ p
                (CmpOp::Gt, Problem::Lower) => self.add_fact(partner, me, 1, db),  // me ≥ p + 1
                (CmpOp::Ge, Problem::Lower) => self.add_fact(partner, me, 0, db),  // me ≥ p
                // Equality would need edges in *both* directions between the
                // two πs — a φ-free 2-cycle the solver must never see (§4
                // consistency). Bounding each π by the *other side's raw
                // operand* keeps both directions acyclic: raw operands are
                // defined before the branch, so no edge can lead back.
                (CmpOp::Eq, _) => self.add_fact(Vertex::Value(other), me, 0, db),
                _ => {}
            }
        } else {
            // fact: partner op me
            match (op, self.problem) {
                (CmpOp::Gt, Problem::Upper) => self.add_fact(partner, me, -1, db), // me ≤ p − 1
                (CmpOp::Ge, Problem::Upper) => self.add_fact(partner, me, 0, db),  // me ≤ p
                (CmpOp::Lt, Problem::Lower) => self.add_fact(partner, me, 1, db),  // me ≥ p + 1
                (CmpOp::Le, Problem::Lower) => self.add_fact(partner, me, 0, db),  // me ≥ p
                (CmpOp::Eq, _) => self.add_fact(Vertex::Value(other), me, 0, db),
                _ => {}
            }
        }
    }
}

/// Finds the π in `block` guarded by the same branch edge that renames
/// `operand`.
fn find_partner_pi(
    func: &Function,
    block: Block,
    from: Block,
    taken: bool,
    operand: Value,
) -> Option<Value> {
    for &id in func.block(block).insts() {
        if let InstKind::Pi {
            input,
            guard: PiGuard::Branch { block: b, taken: t },
        } = &func.inst(id).kind
        {
            if *b == from && *t == taken && *input == operand {
                return func.inst(id).result;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_frontend::compile;
    use abcd_ssa::module_to_essa;

    fn essa(src: &str) -> Function {
        let mut m = compile(src).unwrap();
        module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        m.function(id).clone()
    }

    #[test]
    fn const_assignment_creates_edge_from_constant() {
        let f = essa("fn f() -> int { let x: int = 7; return x; }");
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let c7 = g.lookup(Vertex::Const(7)).expect("const vertex");
        // some value vertex has an in-edge from Const(7) with weight 0
        let found = (0..g.vertex_count())
            .map(VertexId::from_index)
            .any(|v| g.in_edges(v).iter().any(|e| e.src == c7 && e.weight == 0));
        assert!(found);
        assert_eq!(g.potential(c7), Some(7));
    }

    #[test]
    fn lower_graph_negates_potentials() {
        let f = essa("fn f() -> int { let x: int = 7; return x; }");
        let g = InequalityGraph::build(&f, Problem::Lower, None);
        let c7 = g.lookup(Vertex::Const(7)).expect("const vertex");
        assert_eq!(g.potential(c7), Some(-7));
    }

    #[test]
    fn phi_vertices_are_max() {
        let f = essa(
            "fn f(n: int) -> int {
                let i: int = 0;
                while (i < n) { i = i + 1; }
                return i;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        let max_count = (0..g.vertex_count())
            .map(VertexId::from_index)
            .filter(|v| g.is_max(*v))
            .count();
        assert!(max_count >= 1, "loop φ must be a max vertex");
    }

    #[test]
    fn check_pi_gets_minus_one_edge_from_array_len() {
        let f = essa("fn f(a: int[], i: int) -> int { return a[i]; }");
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        // Find an edge with weight −1 from an ArrayLen vertex.
        let mut found = false;
        for v in (0..g.vertex_count()).map(VertexId::from_index) {
            for e in g.in_edges(v) {
                if e.weight == -1 {
                    if let Vertex::ArrayLen(_) = g.vertex(e.src) {
                        found = true;
                    }
                }
            }
        }
        assert!(found, "C5 edge missing");
    }

    #[test]
    fn branch_pi_constraint_relates_both_pis() {
        // if (i < n) { ... } gives π(i) ≤ π(n) − 1 on the taken edge.
        let f = essa(
            "fn f(a: int[], i: int) -> int {
                if (i < a.length) { return a[i]; }
                return 0;
            }",
        );
        let g = InequalityGraph::build(&f, Problem::Upper, None);
        // Expect at least one −1-weight edge between two Value vertices
        // (π(n) → π(i)).
        let mut found = false;
        for v in (0..g.vertex_count()).map(VertexId::from_index) {
            for e in g.in_edges(v) {
                if e.weight == -1
                    && matches!(g.vertex(e.src), Vertex::Value(_))
                    && matches!(g.vertex(v), Vertex::Value(_))
                {
                    found = true;
                }
            }
        }
        assert!(found, "C4 edge missing:\n{f}");
    }

    #[test]
    fn lower_graph_gives_array_len_nonnegativity() {
        let f = essa("fn f(a: int[]) -> int { return a.length; }");
        let g = InequalityGraph::build(&f, Problem::Lower, None);
        let zero = g.lookup(Vertex::Const(0)).expect("const 0");
        let mut found = false;
        for v in (0..g.vertex_count()).map(VertexId::from_index) {
            if let Vertex::ArrayLen(_) = g.vertex(v) {
                if g.in_edges(v).iter().any(|e| e.src == zero) {
                    found = true;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn block_filter_restricts_constraints() {
        let f = essa(
            "fn f(a: int[], i: int) -> int {
                if (i < a.length) { return a[i]; }
                return 0;
            }",
        );
        let full = InequalityGraph::build(&f, Problem::Upper, None);
        let entry_only = InequalityGraph::build(&f, Problem::Upper, Some(f.entry()));
        assert!(entry_only.edge_count() < full.edge_count());
    }

    /// Satellite guard: vertex indexes past u32::MAX must be rejected
    /// cleanly (a descriptive panic the driver's isolation catches), never
    /// silently truncated into an aliased id.
    #[test]
    #[should_panic(expected = "vertex index overflow")]
    fn vertex_index_overflow_is_rejected() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn vertex_index_boundary_is_accepted() {
        assert_eq!(
            VertexId::from_index(u32::MAX as usize).index(),
            u32::MAX as usize
        );
    }

    /// Non-negatable constants (−i64::MIN) drop their edge/potential
    /// instead of wrapping.
    #[test]
    fn lower_graph_drops_non_negatable_facts() {
        let f = essa("fn f() -> int { return 0; }");
        let mut g = InequalityGraph::build(&f, Problem::Lower, None);
        let edges_before = g.edge_count();
        g.assume_fact(
            Vertex::Value(Value::new(900)),
            Vertex::Value(Value::new(901)),
            i64::MIN,
        );
        assert_eq!(g.edge_count(), edges_before, "edge must be dropped");
        // Interning Const(i64::MIN) itself (weight 0 is fine) must yield a
        // vertex without a potential — `−i64::MIN` does not exist.
        g.assume_fact(Vertex::Const(i64::MIN), Vertex::Value(Value::new(902)), 0);
        let c = g.lookup(Vertex::Const(i64::MIN)).expect("interned");
        assert_eq!(g.potential(c), None, "potential must be dropped");
    }

    /// Satellite guard: φ-edge ordering is deterministic. The φ table is a
    /// sorted flat vec rebuilt per function; rebuilding the same function
    /// must reproduce the same `(result, arg) → predecessors` sequences,
    /// and a value arriving over several edges keeps insertion order.
    #[test]
    fn phi_edge_ordering_is_deterministic() {
        let src = "fn f(a: int[], n: int) -> int {
                let s: int = 0;
                let i: int = 0;
                while (i < n) {
                    if (i < a.length) { s = s + a[i]; }
                    i = i + 1;
                }
                return s;
            }";
        let f = essa(src);
        let g1 = InequalityGraph::build(&f, Problem::Upper, None);
        let g2 = InequalityGraph::build(&essa(src), Problem::Upper, None);
        // Enumerate every φ pair through the public accessor and compare
        // the predecessor sequences order-sensitively.
        let mut phis: Vec<Value> = Vec::new();
        let mut values: Vec<Value> = Vec::new();
        for v in (0..g1.vertex_count()).map(VertexId::from_index) {
            if let Vertex::Value(x) = g1.vertex(v) {
                values.push(x);
                if g1.is_max(v) {
                    phis.push(x);
                }
            }
        }
        let mut pairs: Vec<(Value, Value)> = Vec::new();
        for &x in &phis {
            for &a in &values {
                pairs.push((x, a));
            }
        }
        let mut nonempty = 0;
        for (x, a) in pairs {
            let p1: Vec<Block> = g1.phi_pred(x, a).collect();
            let p2: Vec<Block> = g2.phi_pred(x, a).collect();
            assert_eq!(p1, p2, "φ predecessors differ across rebuilds");
            nonempty += usize::from(!p1.is_empty());
        }
        assert!(nonempty >= 2, "loop φs must have recorded predecessors");
    }

    #[test]
    fn shape_reports_cycles_for_loops_only() {
        let straight = essa(
            "fn f(a: int[], i: int) -> int {
                if (i < a.length) { if (i >= 0) { return a[i]; } }
                return 0;
            }",
        );
        let g = InequalityGraph::build(&straight, Problem::Upper, None);
        let s = g.shape();
        assert_eq!(s.vertices, g.vertex_count());
        assert_eq!(s.edges, g.edge_count());
        assert_eq!(s.cycles, 0, "branch-only code has an acyclic graph");

        let looped = essa(
            "fn f(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        let gl = InequalityGraph::build(&looped, Problem::Upper, None);
        assert!(gl.shape().cycles >= 1, "loop φ must close a cycle");
    }
}
