//! Deterministic, seeded fault injection for the fail-open pipeline.
//!
//! A [`FaultPlan`] names failures to force on demand — a pass panic, solver
//! budget exhaustion, or an inequality-graph edge perturbation — so the test
//! suite (and `mjc --fault-plan`) can prove that every single-fault scenario
//! degrades to "keep the bounds check" instead of crashing or miscompiling.
//!
//! Everything is keyed by *function name*, never by thread or wall clock, so
//! an injected fault fires identically under `--jobs N` and sequentially:
//! the parallel driver stays byte-identical to the sequential one even while
//! being sabotaged.
//!
//! # Plan syntax
//!
//! A plan is a comma- or semicolon-separated list of faults:
//!
//! ```text
//! panic:FUNC:PASS    panic at the start of pipeline pass PASS in FUNC
//! fuel:FUNC          force solver budget exhaustion for every check in FUNC
//! edge:FUNC:SEED     deterministically perturb one inequality-graph edge
//! ```
//!
//! `FUNC` may be `*` to match every function. Pass names are the stage
//! labels the driver publishes (`split_critical_edges`, `promote_locals`,
//! `cleanup`, `insert_pi`, `graph_build`, `solve`, `pre`, `transform`).

use crate::graph::InequalityGraph;
use std::cell::Cell;
use std::fmt;

/// One injected fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Panic when the named pipeline pass starts on a matching function.
    PassPanic {
        /// Function name, or `*` for all functions.
        function: String,
        /// Pipeline pass label.
        pass: String,
    },
    /// Treat every solver query of a matching function as budget-exhausted:
    /// the driver keeps all of its checks and records incidents.
    ExhaustFuel {
        /// Function name, or `*` for all functions.
        function: String,
    },
    /// Deterministically perturb one edge weight of the matching function's
    /// inequality graphs — simulating a constraint-system corruption the
    /// translation-validation pass must catch.
    PerturbEdge {
        /// Function name, or `*` for all functions.
        function: String,
        /// Seed for the deterministic edge choice.
        seed: u64,
    },
}

impl Fault {
    fn matches(target: &str, function: &str) -> bool {
        target == "*" || target == function
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PassPanic { function, pass } => write!(f, "panic:{function}:{pass}"),
            Fault::ExhaustFuel { function } => write!(f, "fuel:{function}"),
            Fault::PerturbEdge { function, seed } => write!(f, "edge:{function}:{seed}"),
        }
    }
}

/// A deterministic fault-injection plan, threaded into the driver via
/// [`Optimizer::with_fault_plan`](crate::Optimizer::with_fault_plan).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses the CLI plan syntax (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for part in spec
            .split([',', ';'])
            .map(str::trim)
            .filter(|p| !p.is_empty())
        {
            let mut fields = part.split(':');
            let kind = fields.next().unwrap_or("");
            let function = fields
                .next()
                .ok_or_else(|| format!("`{part}`: missing function (use `*` for all)"))?
                .to_string();
            match kind {
                "panic" => {
                    let pass = fields
                        .next()
                        .ok_or_else(|| format!("`{part}`: panic fault needs a pass name"))?
                        .to_string();
                    faults.push(Fault::PassPanic { function, pass });
                }
                "fuel" => faults.push(Fault::ExhaustFuel { function }),
                "edge" => {
                    let seed = fields
                        .next()
                        .ok_or_else(|| format!("`{part}`: edge fault needs a seed"))?
                        .parse()
                        .map_err(|_| format!("`{part}`: edge seed must be an integer"))?;
                    faults.push(Fault::PerturbEdge { function, seed });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (expected panic|fuel|edge)"
                    ))
                }
            }
            if fields.next().is_some() {
                return Err(format!("`{part}`: trailing fields"));
            }
        }
        Ok(FaultPlan { faults })
    }

    /// Panics if the plan demands a pass panic for `(function, pass)`.
    /// Called by the driver at every stage boundary; the panic is caught by
    /// the per-function isolation layer.
    pub(crate) fn maybe_panic(&self, function: &str, pass: &str) {
        for f in &self.faults {
            if let Fault::PassPanic {
                function: target,
                pass: p,
            } = f
            {
                if Fault::matches(target, function) && p == pass {
                    panic!("injected fault: pass `{pass}` in `{function}`");
                }
            }
        }
    }

    /// Does the plan force budget exhaustion for `function`?
    pub(crate) fn exhausts_fuel(&self, function: &str) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::ExhaustFuel { function: target } if Fault::matches(target, function))
        })
    }

    /// Applies any matching edge perturbation to `function`'s graphs.
    /// Deterministic: the perturbed edge depends only on the seed, the
    /// function name, and the graph shape.
    pub(crate) fn perturb_graphs(
        &self,
        function: &str,
        upper: &mut InequalityGraph,
        lower: &mut InequalityGraph,
    ) {
        for f in &self.faults {
            if let Fault::PerturbEdge {
                function: target,
                seed,
            } = f
            {
                if Fault::matches(target, function) {
                    let mut rng = Lcg::new(*seed ^ fnv1a(function));
                    // Perturb whichever graph the draw lands on; the edge is
                    // strengthened (see `perturb_random_edge`), which is the
                    // dangerous direction — proofs get easier, so a wrong
                    // elimination becomes possible and the validation layer
                    // must catch it.
                    let g = if rng.next().is_multiple_of(2) {
                        &mut *upper
                    } else {
                        &mut *lower
                    };
                    g.perturb_random_edge(&mut rng, 8);
                }
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// A tiny deterministic generator (SplitMix64) for fault-site selection.
/// Not for cryptography — for reproducible sabotage.
#[derive(Clone, Debug)]
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the function name, so `edge:*:S` picks a different edge per
/// function but always the same one for a given name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

thread_local! {
    /// The pipeline pass currently running on this worker thread, read by
    /// the isolation layer when a pass panics. Thread-local because each
    /// scoped worker owns exactly one function at a time.
    static CURRENT_PASS: Cell<&'static str> = const { Cell::new("") };
}

/// Publishes the pass now running (driver stage boundaries).
pub(crate) fn set_current_pass(name: &'static str) {
    CURRENT_PASS.with(|c| c.set(name));
}

/// The pass that was running when a panic unwound (same thread).
pub(crate) fn current_pass() -> &'static str {
    CURRENT_PASS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        let plan = FaultPlan::parse("panic:f:cleanup, fuel:* ; edge:g:42").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.to_string(), "panic:f:cleanup,fuel:*,edge:g:42");
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("panic:f").is_err());
        assert!(FaultPlan::parse("edge:f:notanumber").is_err());
        assert!(FaultPlan::parse("meteor:f").is_err());
        assert!(FaultPlan::parse("fuel:f:extra").is_err());
        assert!(FaultPlan::parse("").unwrap().faults.is_empty());
    }

    #[test]
    fn matching_honors_wildcard() {
        let plan = FaultPlan::parse("fuel:*").unwrap();
        assert!(plan.exhausts_fuel("anything"));
        let plan = FaultPlan::parse("fuel:f").unwrap();
        assert!(plan.exhausts_fuel("f"));
        assert!(!plan.exhausts_fuel("g"));
    }

    #[test]
    fn injected_panic_fires_only_on_match() {
        let plan = FaultPlan::parse("panic:f:cleanup").unwrap();
        plan.maybe_panic("f", "transform"); // no panic
        plan.maybe_panic("g", "cleanup"); // no panic
        let err = std::panic::catch_unwind(|| plan.maybe_panic("f", "cleanup"));
        assert!(err.is_err());
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..8 {
            assert_eq!(a.next(), b.next());
        }
        assert_ne!(Lcg::new(1).next(), Lcg::new(2).next());
    }
}
