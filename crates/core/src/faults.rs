//! Deterministic, seeded fault injection for the fail-open pipeline.
//!
//! A [`FaultPlan`] names failures to force on demand — a pass panic, solver
//! budget exhaustion, or an inequality-graph edge perturbation — so the test
//! suite (and `mjc --fault-plan`) can prove that every single-fault scenario
//! degrades to "keep the bounds check" instead of crashing or miscompiling.
//!
//! Everything is keyed by *function name*, never by thread or wall clock, so
//! an injected fault fires identically under `--jobs N` and sequentially:
//! the parallel driver stays byte-identical to the sequential one even while
//! being sabotaged.
//!
//! # Plan syntax
//!
//! A plan is a comma- or semicolon-separated list of faults:
//!
//! ```text
//! panic:FUNC:PASS    panic at the start of pipeline pass PASS in FUNC
//! fuel:FUNC          force solver budget exhaustion for every check in FUNC
//! edge:FUNC:SEED     deterministically perturb one inequality-graph edge
//! ```
//!
//! `FUNC` may be `*` to match every function. Pass names are the stage
//! labels the driver publishes (`split_critical_edges`, `promote_locals`,
//! `cleanup`, `insert_pi`, `graph_build`, `solve`, `pre`, `transform`).
//!
//! # Service-layer chaos
//!
//! A [`ChaosPlan`] extends the same philosophy — seeded, name-keyed,
//! deterministic — from the compiler into the `abcdd` service layer: worker
//! panics, disk-cache I/O failures (short write, corrupt-on-write, ENOSPC),
//! partial/slow response frames, and mid-request disconnects. Each injection
//! site draws from SplitMix64 keyed by `seed ^ fnv1a(site) ^ sequence`, so a
//! given (plan, site, nth-visit) triple always makes the same call — chaos
//! schedules replay exactly, which is what lets the soak test assert
//! byte-level differential correctness *under* the storm.
//!
//! # Chaos plan syntax
//!
//! A comma- or semicolon-separated list of `key:value` fields. `seed:N`
//! seeds the schedule; every other key names an injection site with a
//! per-mille firing rate (0..=1000):
//!
//! ```text
//! seed:42,worker_panic:50,disk_short:30,disk_corrupt:30,disk_full:20,
//! frame_truncate:40,frame_slow:40,disconnect:50
//! ```

use crate::graph::InequalityGraph;
use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// One injected fault.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Panic when the named pipeline pass starts on a matching function.
    PassPanic {
        /// Function name, or `*` for all functions.
        function: String,
        /// Pipeline pass label.
        pass: String,
    },
    /// Treat every solver query of a matching function as budget-exhausted:
    /// the driver keeps all of its checks and records incidents.
    ExhaustFuel {
        /// Function name, or `*` for all functions.
        function: String,
    },
    /// Deterministically perturb one edge weight of the matching function's
    /// inequality graphs — simulating a constraint-system corruption the
    /// translation-validation pass must catch.
    PerturbEdge {
        /// Function name, or `*` for all functions.
        function: String,
        /// Seed for the deterministic edge choice.
        seed: u64,
    },
}

impl Fault {
    fn matches(target: &str, function: &str) -> bool {
        target == "*" || target == function
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::PassPanic { function, pass } => write!(f, "panic:{function}:{pass}"),
            Fault::ExhaustFuel { function } => write!(f, "fuel:{function}"),
            Fault::PerturbEdge { function, seed } => write!(f, "edge:{function}:{seed}"),
        }
    }
}

/// A deterministic fault-injection plan, threaded into the driver via
/// [`Optimizer::with_fault_plan`](crate::Optimizer::with_fault_plan).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultPlan {
    /// The faults to inject.
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses the CLI plan syntax (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed specs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for part in spec
            .split([',', ';'])
            .map(str::trim)
            .filter(|p| !p.is_empty())
        {
            let mut fields = part.split(':');
            let kind = fields.next().unwrap_or("");
            let function = fields
                .next()
                .ok_or_else(|| format!("`{part}`: missing function (use `*` for all)"))?
                .to_string();
            match kind {
                "panic" => {
                    let pass = fields
                        .next()
                        .ok_or_else(|| format!("`{part}`: panic fault needs a pass name"))?
                        .to_string();
                    faults.push(Fault::PassPanic { function, pass });
                }
                "fuel" => faults.push(Fault::ExhaustFuel { function }),
                "edge" => {
                    let seed = fields
                        .next()
                        .ok_or_else(|| format!("`{part}`: edge fault needs a seed"))?
                        .parse()
                        .map_err(|_| format!("`{part}`: edge seed must be an integer"))?;
                    faults.push(Fault::PerturbEdge { function, seed });
                }
                other => {
                    return Err(format!(
                        "unknown fault kind `{other}` (expected panic|fuel|edge)"
                    ))
                }
            }
            if fields.next().is_some() {
                return Err(format!("`{part}`: trailing fields"));
            }
        }
        Ok(FaultPlan { faults })
    }

    /// Panics if the plan demands a pass panic for `(function, pass)`.
    /// Called by the driver at every stage boundary; the panic is caught by
    /// the per-function isolation layer.
    pub(crate) fn maybe_panic(&self, function: &str, pass: &str) {
        for f in &self.faults {
            if let Fault::PassPanic {
                function: target,
                pass: p,
            } = f
            {
                if Fault::matches(target, function) && p == pass {
                    panic!("injected fault: pass `{pass}` in `{function}`");
                }
            }
        }
    }

    /// Does the plan force budget exhaustion for `function`?
    pub(crate) fn exhausts_fuel(&self, function: &str) -> bool {
        self.faults.iter().any(|f| {
            matches!(f, Fault::ExhaustFuel { function: target } if Fault::matches(target, function))
        })
    }

    /// Applies any matching edge perturbation to `function`'s graphs.
    /// Deterministic: the perturbed edge depends only on the seed, the
    /// function name, and the graph shape.
    pub(crate) fn perturb_graphs(
        &self,
        function: &str,
        upper: &mut InequalityGraph,
        lower: &mut InequalityGraph,
    ) {
        for f in &self.faults {
            if let Fault::PerturbEdge {
                function: target,
                seed,
            } = f
            {
                if Fault::matches(target, function) {
                    let mut rng = Lcg::new(*seed ^ fnv1a(function));
                    // Perturb whichever graph the draw lands on; the edge is
                    // strengthened (see `perturb_random_edge`), which is the
                    // dangerous direction — proofs get easier, so a wrong
                    // elimination becomes possible and the validation layer
                    // must catch it.
                    let g = if rng.next().is_multiple_of(2) {
                        &mut *upper
                    } else {
                        &mut *lower
                    };
                    g.perturb_random_edge(&mut rng, 8);
                }
            }
        }
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                f.write_str(",")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

/// One service-layer chaos injection site. Sites are identified by stable
/// snake_case names (the plan-syntax keys), which also key the per-site
/// random streams — adding a site never re-shuffles the others' schedules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaosSite {
    /// Panic inside a worker thread while it holds a request.
    WorkerPanic,
    /// Persist a truncated disk-cache temp file and skip the rename —
    /// exactly the on-disk state a `kill -9` mid-write leaves behind.
    DiskShortWrite,
    /// Flip a byte of a disk-cache entry after it is published, so the
    /// checksum quarantine path must catch it on the next lookup.
    DiskCorrupt,
    /// Fail the disk-cache store as if the volume were full (ENOSPC).
    DiskFull,
    /// Send a truncated response frame (header + partial payload), then
    /// close the connection.
    FrameTruncate,
    /// Dribble the response frame out in small chunks with delays.
    FrameSlow,
    /// Drop the client connection before reading its request.
    Disconnect,
}

/// All chaos sites, in plan-syntax order (stats and expositions iterate
/// this to render per-site injection counters deterministically).
pub const CHAOS_SITES: [ChaosSite; 7] = [
    ChaosSite::WorkerPanic,
    ChaosSite::DiskShortWrite,
    ChaosSite::DiskCorrupt,
    ChaosSite::DiskFull,
    ChaosSite::FrameTruncate,
    ChaosSite::FrameSlow,
    ChaosSite::Disconnect,
];

impl ChaosSite {
    /// The stable plan-syntax key (also the RNG stream key).
    pub fn name(self) -> &'static str {
        match self {
            ChaosSite::WorkerPanic => "worker_panic",
            ChaosSite::DiskShortWrite => "disk_short",
            ChaosSite::DiskCorrupt => "disk_corrupt",
            ChaosSite::DiskFull => "disk_full",
            ChaosSite::FrameTruncate => "frame_truncate",
            ChaosSite::FrameSlow => "frame_slow",
            ChaosSite::Disconnect => "disconnect",
        }
    }

    fn index(self) -> usize {
        CHAOS_SITES.iter().position(|s| *s == self).unwrap()
    }

    fn parse(key: &str) -> Option<ChaosSite> {
        CHAOS_SITES.iter().copied().find(|s| s.name() == key)
    }
}

/// A seeded service-layer chaos schedule for `abcdd`.
///
/// Deterministic in the same sense as [`FaultPlan`]: whether the nth visit
/// to a site injects depends only on `(seed, site, n)`, never on threads or
/// wall clock. Visit order across *sites* can vary with scheduling, but each
/// site's own decision stream is fixed, so aggregate behavior (roughly
/// `rate`‰ of visits fire) and any single-threaded replay are exact.
///
/// The plan is shared (`Arc`) between the server's workers and the cache's
/// disk tier; interior atomics carry the per-site sequence numbers and
/// injection counters.
#[derive(Debug, Default)]
pub struct ChaosPlan {
    seed: u64,
    /// Per-site firing rate in per-mille (0..=1000).
    rates: [u16; CHAOS_SITES.len()],
    /// Per-site visit sequence numbers (the RNG stream position).
    seqs: [AtomicU64; CHAOS_SITES.len()],
    /// Per-site count of injections actually fired.
    injected: [AtomicU64; CHAOS_SITES.len()],
}

impl ChaosPlan {
    /// Parses the chaos plan syntax (see the module docs).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown sites, out-of-range
    /// rates, or malformed fields.
    pub fn parse(spec: &str) -> Result<ChaosPlan, String> {
        let mut plan = ChaosPlan::default();
        for part in spec
            .split([',', ';'])
            .map(str::trim)
            .filter(|p| !p.is_empty())
        {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("`{part}`: expected key:value"))?;
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("`{part}`: value must be an integer"))?;
            match key.trim() {
                "seed" => plan.seed = value,
                key => {
                    let site = ChaosSite::parse(key).ok_or_else(|| {
                        format!(
                            "unknown chaos site `{key}` (expected seed|{})",
                            CHAOS_SITES.map(ChaosSite::name).join("|")
                        )
                    })?;
                    if value > 1000 {
                        return Err(format!("`{part}`: rate is per-mille, max 1000"));
                    }
                    plan.rates[site.index()] = value as u16;
                }
            }
        }
        Ok(plan)
    }

    /// Does any site have a nonzero rate? (An unarmed plan is a no-op and
    /// lets callers skip the atomics entirely.)
    pub fn is_armed(&self) -> bool {
        self.rates.iter().any(|&r| r > 0)
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws the next decision for `site`: `true` means inject. Advances
    /// the site's sequence number and, on injection, its fired counter.
    pub fn decide(&self, site: ChaosSite) -> bool {
        let i = site.index();
        let rate = self.rates[i];
        if rate == 0 {
            return false;
        }
        let seq = self.seqs[i].fetch_add(1, Ordering::Relaxed);
        let draw = Lcg::new(self.seed ^ fnv1a(site.name()) ^ seq).next();
        let fire = draw % 1000 < u64::from(rate);
        if fire {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
        }
        fire
    }

    /// Like [`decide`](Self::decide), but also returns a per-injection seed
    /// derived from the same draw position — for sites that need further
    /// deterministic choices (which byte to corrupt, chunk sizes, ...).
    pub fn decide_seeded(&self, site: ChaosSite) -> Option<u64> {
        let i = site.index();
        let rate = self.rates[i];
        if rate == 0 {
            return None;
        }
        let seq = self.seqs[i].fetch_add(1, Ordering::Relaxed);
        let mut rng = Lcg::new(self.seed ^ fnv1a(site.name()) ^ seq);
        if rng.next() % 1000 < u64::from(rate) {
            self.injected[i].fetch_add(1, Ordering::Relaxed);
            Some(rng.next())
        } else {
            None
        }
    }

    /// How many times `site` has actually injected so far.
    pub fn injected(&self, site: ChaosSite) -> u64 {
        self.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Total injections across all sites.
    pub fn total_injected(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed:{}", self.seed)?;
        for site in CHAOS_SITES {
            let rate = self.rates[site.index()];
            if rate > 0 {
                write!(f, ",{}:{rate}", site.name())?;
            }
        }
        Ok(())
    }
}

/// A tiny deterministic generator (SplitMix64) for fault-site selection.
/// Not for cryptography — for reproducible sabotage.
#[derive(Clone, Debug)]
pub(crate) struct Lcg(u64);

impl Lcg {
    pub(crate) fn new(seed: u64) -> Lcg {
        Lcg(seed)
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the function name, so `edge:*:S` picks a different edge per
/// function but always the same one for a given name.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

thread_local! {
    /// The pipeline pass currently running on this worker thread, read by
    /// the isolation layer when a pass panics. Thread-local because each
    /// scoped worker owns exactly one function at a time.
    static CURRENT_PASS: Cell<&'static str> = const { Cell::new("") };
}

/// Publishes the pass now running (driver stage boundaries).
pub(crate) fn set_current_pass(name: &'static str) {
    CURRENT_PASS.with(|c| c.set(name));
}

/// The pass that was running when a panic unwound (same thread).
pub(crate) fn current_pass() -> &'static str {
    CURRENT_PASS.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        let plan = FaultPlan::parse("panic:f:cleanup, fuel:* ; edge:g:42").unwrap();
        assert_eq!(plan.faults.len(), 3);
        assert_eq!(plan.to_string(), "panic:f:cleanup,fuel:*,edge:g:42");
        assert_eq!(FaultPlan::parse(&plan.to_string()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FaultPlan::parse("panic:f").is_err());
        assert!(FaultPlan::parse("edge:f:notanumber").is_err());
        assert!(FaultPlan::parse("meteor:f").is_err());
        assert!(FaultPlan::parse("fuel:f:extra").is_err());
        assert!(FaultPlan::parse("").unwrap().faults.is_empty());
    }

    #[test]
    fn matching_honors_wildcard() {
        let plan = FaultPlan::parse("fuel:*").unwrap();
        assert!(plan.exhausts_fuel("anything"));
        let plan = FaultPlan::parse("fuel:f").unwrap();
        assert!(plan.exhausts_fuel("f"));
        assert!(!plan.exhausts_fuel("g"));
    }

    #[test]
    fn injected_panic_fires_only_on_match() {
        let plan = FaultPlan::parse("panic:f:cleanup").unwrap();
        plan.maybe_panic("f", "transform"); // no panic
        plan.maybe_panic("g", "cleanup"); // no panic
        let err = std::panic::catch_unwind(|| plan.maybe_panic("f", "cleanup"));
        assert!(err.is_err());
    }

    #[test]
    fn chaos_parse_roundtrips() {
        let plan =
            ChaosPlan::parse("seed:42, worker_panic:50; disk_short:30,disconnect:1000").unwrap();
        assert_eq!(plan.seed(), 42);
        assert!(plan.is_armed());
        assert_eq!(
            plan.to_string(),
            "seed:42,worker_panic:50,disk_short:30,disconnect:1000"
        );
        let reparsed = ChaosPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(reparsed.to_string(), plan.to_string());
    }

    #[test]
    fn chaos_parse_rejects_malformed() {
        assert!(ChaosPlan::parse("meteor:5").is_err());
        assert!(ChaosPlan::parse("worker_panic").is_err());
        assert!(ChaosPlan::parse("worker_panic:x").is_err());
        assert!(ChaosPlan::parse("worker_panic:1001").is_err());
        assert!(!ChaosPlan::parse("").unwrap().is_armed());
        assert!(!ChaosPlan::parse("seed:9").unwrap().is_armed());
    }

    #[test]
    fn chaos_decisions_are_deterministic_per_site_sequence() {
        let a = ChaosPlan::parse("seed:7,worker_panic:500,disconnect:500").unwrap();
        let b = ChaosPlan::parse("seed:7,worker_panic:500,disconnect:500").unwrap();
        let draws_a: Vec<bool> = (0..64).map(|_| a.decide(ChaosSite::WorkerPanic)).collect();
        let draws_b: Vec<bool> = (0..64).map(|_| b.decide(ChaosSite::WorkerPanic)).collect();
        assert_eq!(draws_a, draws_b);
        // Streams are keyed by site name: a different site at the same
        // sequence positions draws a different schedule.
        let other: Vec<bool> = (0..64).map(|_| b.decide(ChaosSite::Disconnect)).collect();
        assert_ne!(draws_b, other);
        // Injection counters track fired decisions exactly.
        let fired = draws_a.iter().filter(|f| **f).count() as u64;
        assert_eq!(a.injected(ChaosSite::WorkerPanic), fired);
        assert!(fired > 0, "500‰ over 64 draws should fire at least once");
    }

    #[test]
    fn chaos_zero_rate_site_never_fires_or_counts() {
        let plan = ChaosPlan::parse("seed:3,worker_panic:1000").unwrap();
        for _ in 0..32 {
            assert!(!plan.decide(ChaosSite::DiskFull));
            assert!(plan.decide(ChaosSite::WorkerPanic));
        }
        assert_eq!(plan.injected(ChaosSite::DiskFull), 0);
        assert_eq!(plan.injected(ChaosSite::WorkerPanic), 32);
        assert_eq!(plan.total_injected(), 32);
    }

    #[test]
    fn chaos_seeded_decisions_carry_stable_payload_seeds() {
        let a = ChaosPlan::parse("seed:11,disk_corrupt:1000").unwrap();
        let b = ChaosPlan::parse("seed:11,disk_corrupt:1000").unwrap();
        let sa: Vec<Option<u64>> = (0..8)
            .map(|_| a.decide_seeded(ChaosSite::DiskCorrupt))
            .collect();
        let sb: Vec<Option<u64>> = (0..8)
            .map(|_| b.decide_seeded(ChaosSite::DiskCorrupt))
            .collect();
        assert_eq!(sa, sb);
        assert!(sa.iter().all(|s| s.is_some()));
    }

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..8 {
            assert_eq!(a.next(), b.next());
        }
        assert_ne!(Lcg::new(1).next(), Lcg::new(2).next());
    }
}
