//! The partial-redundancy transformation (§6.2 of the paper).
//!
//! Once the PRE-collecting prover finds insertion points, the transformation
//! applies the paper's compare/trap split:
//!
//! * a **compensating check** `spec_check A[u + δ]` is inserted at the end
//!   of each insertion edge's block; instead of trapping, a failure sets a
//!   per-activation flag for the original site (the insertion may be
//!   control-speculative, so it must not raise an exception early);
//! * the original check is **demoted** to `trap_if_flagged`, which preserves
//!   the precise exception point: when the flag is set it re-validates the
//!   original index — failing genuinely traps exactly where the original
//!   program would, while a spurious speculative failure just continues.
//!
//! The compensating index is `u + δ` where `u` is the failing φ argument and
//! `δ` derives from the remaining difference query `c′` recorded by the
//! prover: a successful upper check on `u + δ` yields `u + δ ≤ A.length − 1`
//! and we need `u ≤ A.length + c′`, so `δ = −1 − c′`; dually a lower check
//! yields `u + δ ≥ 0` and we need (in solver domain) `−u ≤ c′`, so `δ = c′`.

use crate::graph::Problem;
use crate::solver::InsertionPoint;
use abcd_ir::{CheckKind, CheckSite, Function, InstId, InstKind, Type, Value};

/// The index offset δ a compensating check applies on top of the failing
/// φ argument, derived from the prover's remaining difference query `c′`
/// (see the module docs): `δ = −1 − c′` for upper checks, `δ = c′` for
/// lower checks. Shared between the transformation and the trace layer so
/// certificates report exactly what [`apply_insertions`] will do.
pub fn compensation_delta(problem: Problem, c_prime: i64) -> i64 {
    match problem {
        Problem::Upper => -1 - c_prime,
        Problem::Lower => c_prime,
    }
}

/// Applies the §6.2 transformation for one partially redundant check.
///
/// `check_block`/`check_inst` locate the original `bounds_check`; `points`
/// come from [`PreProver`](crate::PreProver). Returns the number of
/// compensating checks inserted.
///
/// # Panics
///
/// Panics if `check_inst` is not a `bounds_check` (driver invariant).
pub fn apply_insertions(
    func: &mut Function,
    check_block: abcd_ir::Block,
    check_inst: InstId,
    points: &[InsertionPoint],
    problem: Problem,
) -> usize {
    let InstKind::BoundsCheck {
        site,
        array,
        index,
        kind,
    } = func.inst(check_inst).kind
    else {
        panic!("apply_insertions on a non-check instruction");
    };

    for p in points {
        let delta = compensation_delta(problem, p.c_prime);
        insert_spec_check(func, p.pred, site, array, p.arg, delta, kind);
    }

    // Demote the original check: the trap point stays, the compare is gone.
    func.inst_mut(check_inst).kind = InstKind::TrapIfFlagged {
        site,
        array,
        index,
        kind,
    };
    let _ = check_block;
    points.len()
}

/// Appends `spec_check kind array[base + delta]` at the end of `block`
/// (before its terminator).
fn insert_spec_check(
    func: &mut Function,
    block: abcd_ir::Block,
    site: CheckSite,
    array: Value,
    base: Value,
    delta: i64,
    kind: CheckKind,
) {
    let index = if delta == 0 {
        base
    } else {
        let c = func.create_inst(InstKind::Const(delta), Some(Type::Int));
        let pos = func.block(block).insts().len();
        func.insert_inst(block, pos, c);
        let cv = func.inst(c).result.expect("const has result");
        let add = func.create_inst(
            InstKind::Binary {
                op: abcd_ir::BinOp::Add,
                lhs: base,
                rhs: cv,
            },
            Some(Type::Int),
        );
        let pos = func.block(block).insts().len();
        func.insert_inst(block, pos, add);
        func.inst(add).result.expect("add has result")
    };
    let check = func.create_inst(
        InstKind::SpecCheck {
            site,
            array,
            index,
            kind,
        },
        None,
    );
    let pos = func.block(block).insts().len();
    func.insert_inst(block, pos, check);
}

/// Merges adjacent `lower` + `upper` check pairs on the same index family
/// into a single unsigned check (§7.2's "trick that can merge an upper- and
/// a lower-bound check into a single check instruction").
///
/// A pair qualifies when both checks survive in the same block, test the
/// same array, and the upper check's index is the lower check's index seen
/// through π/copy renames. The merged `both` check sits at the upper check's
/// position (still before the guarded access) and keeps its site.
pub fn merge_remaining_checks(func: &mut Function) -> usize {
    let mut merged = 0;
    for b in func.blocks().collect::<Vec<_>>() {
        let ids: Vec<InstId> = func.block(b).insts().to_vec();
        // (array, index root) → lower-check inst awaiting its partner.
        let mut pending: Vec<(Value, Value, InstId)> = Vec::new();
        for id in ids {
            match func.inst(id).kind {
                InstKind::BoundsCheck {
                    array,
                    index,
                    kind: CheckKind::Lower,
                    ..
                } => {
                    pending.push((array, root_of(func, index), id));
                }
                InstKind::BoundsCheck {
                    array,
                    index,
                    kind: CheckKind::Upper,
                    site,
                } => {
                    let iroot = root_of(func, index);
                    if let Some(pos) = pending
                        .iter()
                        .position(|(a, r, _)| *a == array && *r == iroot)
                    {
                        let (_, _, lower_id) = pending.remove(pos);
                        func.remove_inst(b, lower_id);
                        func.inst_mut(id).kind = InstKind::BoundsCheck {
                            site,
                            array,
                            index,
                            kind: CheckKind::Both,
                        };
                        merged += 1;
                    }
                }
                ref kind if !kind.is_pure() => {
                    // Merging moves the lower check down to the upper check's
                    // position; that must not cross a side-effecting
                    // instruction, or a trap could be observed out of order.
                    pending.clear();
                }
                _ => {}
            }
        }
    }
    merged
}

/// Strips π/copy renames to the underlying value.
fn root_of(func: &Function, v: Value) -> Value {
    let mut cur = v;
    loop {
        let abcd_ir::ValueDef::Inst(id) = func.value_def(cur) else {
            return cur;
        };
        match &func.inst(id).kind {
            InstKind::Pi { input, .. } => cur = *input,
            InstKind::Copy { arg } => cur = *arg,
            _ => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_frontend::compile;
    use abcd_ssa::module_to_essa;
    use abcd_vm::{RtVal, Vm};

    #[test]
    fn merge_pairs_lower_with_upper_through_pi() {
        let mut m = compile("fn f(a: int[], i: int) -> int { return a[i]; }").unwrap();
        module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        let f = m.function_mut(id);
        assert_eq!(f.count_checks(), (2, 0, 0));
        assert_eq!(merge_remaining_checks(f), 1);
        assert_eq!(f.count_checks(), (1, 0, 0));
        // the surviving check is a Both check
        let mut kinds = Vec::new();
        for b in f.blocks() {
            for &iid in f.block(b).insts() {
                if let InstKind::BoundsCheck { kind, .. } = f.inst(iid).kind {
                    kinds.push(kind);
                }
            }
        }
        assert_eq!(kinds, vec![CheckKind::Both]);

        // Semantics preserved: in-bounds loads work, OOB still traps.
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[5, 6]);
        assert_eq!(
            vm.call_by_name("f", &[arr, RtVal::Int(1)]).unwrap(),
            Some(RtVal::Int(6))
        );
        assert_eq!(vm.stats().checks, [0, 0, 1]);
        let mut vm = Vm::new(&m);
        let arr = vm.alloc_int_array(&[5, 6]);
        assert!(vm.call_by_name("f", &[arr, RtVal::Int(-1)]).is_err());
    }

    #[test]
    fn merge_skips_mismatched_arrays() {
        let mut m =
            compile("fn f(a: int[], b: int[], i: int) -> int { return a[i] + b[i]; }").unwrap();
        module_to_essa(&mut m).unwrap();
        let id = m.functions().next().unwrap().0;
        let f = m.function_mut(id);
        // two pairs, each merges with its own array only
        assert_eq!(merge_remaining_checks(f), 2);
        assert_eq!(f.count_checks(), (2, 0, 0));
    }
}
