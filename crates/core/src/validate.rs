//! Translation validation of the ABCD transformation.
//!
//! After the driver has rewritten a function, this pass independently
//! re-justifies every change it made, from scratch, against constraint
//! graphs rebuilt from the **final** e-SSA form:
//!
//! * every fully-eliminated check must re-prove with a fresh prover;
//! * every PRE-hoisted check's insertion points must re-derive (or the
//!   recomputed requirement must be covered by what was actually inserted).
//!
//! Anything that fails re-justification is **reinstated** — the bounds
//! check goes back in (or the demoted residual trap is un-demoted) and a
//! [`Incident::ValidationReinstated`] is recorded. The pass never trusts
//! the optimizer's own graphs, so a corrupted constraint system (e.g. the
//! fault harness's edge perturbation) is caught here instead of shipping a
//! wrongly-unchecked memory access.
//!
//! # Breaking the circularity
//!
//! Removed checks leave their π guards behind, and a π guard regenerates
//! the very C5 edge (`index ≤ len − 1` / `index ≥ 0`) the eliminated check
//! used to enforce — naive revalidation would find every elimination
//! self-justifying. The pass therefore excludes the C5 edges of **all**
//! still-unvalidated sites and runs to a fixpoint: a check that proves
//! without any suspect edge is validated and its site's edges return to
//! the pool, which can unlock checks that legitimately chained on it
//! (e.g. `a[i]` guarding `a[i-1]`). Mutually-dependent "proofs" — two
//! eliminations each justified only by the other's unenforced guard —
//! never validate, which is exactly the unsound shape the fixpoint is
//! designed to reject.

use crate::graph::{InequalityGraph, Problem, Vertex};
use crate::report::{FunctionReport, Incident};
use crate::solver::{DemandProver, PreOutcome, PreProver};
use abcd_ir::{CheckKind, CheckSite, Function, InstKind, PiGuard};
use abcd_ssa::DomTree;

/// Re-justifies every elimination and hoist recorded in `report`,
/// reinstating whatever cannot be independently re-proven.
pub(crate) fn validate_function(
    func: &mut Function,
    report: &mut FunctionReport,
    facts: &[crate::interproc::ParamFact],
    gvn: &abcd_analysis::GvnResult,
    dt: &DomTree,
    gvn_hook: bool,
) {
    let mut pending_elim = report.eliminated.clone();
    let mut pending_hoist = report.hoisted_checks.clone();
    if pending_elim.is_empty() && pending_hoist.is_empty() {
        return;
    }

    loop {
        let excluded: Vec<CheckSite> = pending_elim
            .iter()
            .map(|e| e.site)
            .chain(pending_hoist.iter().map(|h| h.site))
            .collect();
        let mut upper =
            InequalityGraph::build_excluding(func, Problem::Upper, None, excluded.clone());
        let mut lower = InequalityGraph::build_excluding(func, Problem::Lower, None, excluded);
        crate::interproc::apply_facts(facts, func, &mut upper);
        crate::interproc::apply_facts(facts, func, &mut lower);

        let mut progress = false;
        pending_elim.retain(|e| {
            let ok = match e.kind {
                CheckKind::Upper => {
                    prove_upper_clean(func, &upper, gvn, dt, gvn_hook, e.array, e.index, e.block)
                }
                CheckKind::Lower => prove_lower_clean(&lower, e.index),
                CheckKind::Both => {
                    prove_upper_clean(func, &upper, gvn, dt, gvn_hook, e.array, e.index, e.block)
                        && prove_lower_clean(&lower, e.index)
                }
            };
            if ok {
                report.checks_validated += 1;
                progress = true;
            }
            !ok
        });
        pending_hoist.retain(|h| {
            let (graph, source, c) = match h.kind {
                CheckKind::Upper | CheckKind::Both => (&upper, Vertex::ArrayLen(h.array), -1i64),
                CheckKind::Lower => (&lower, Vertex::Const(0), 0),
            };
            let mut prover = PreProver::new(graph, source, None);
            let ok = match prover.demand_prove(Vertex::Value(h.index), c) {
                // Fully redundant on the clean graph: the residual trap can
                // only fire spuriously (it re-validates before trapping).
                PreOutcome::Proven => true,
                // Partially redundant: safe iff every point the clean graph
                // requires actually received a compensating check.
                PreOutcome::ProvenWithInsertions(req) => req.iter().all(|p| h.points.contains(p)),
                PreOutcome::Failed => false,
            };
            if ok {
                report.checks_validated += 1;
                progress = true;
            }
            !ok
        });
        if !progress {
            break;
        }
        if pending_elim.is_empty() && pending_hoist.is_empty() {
            break;
        }
    }

    // Whatever is left could not be re-justified: put the checks back.
    for e in pending_elim {
        reinstate_eliminated(func, &e);
        report.mark_reinstated(e.site, e.kind);
        report.checks_reinstated += 1;
        report.incidents.push(Incident::ValidationReinstated {
            function: func.name_symbol(),
            site: e.site,
            kind: e.kind,
        });
    }
    for h in pending_hoist {
        // Un-demote the residual trap back into a full bounds check, and
        // remove the compensating checks that were inserted for this site:
        // with the hoist rejected they only set a flag nobody consults, and
        // insertion points derived from a corrupted graph may not even be
        // dominated by their operands.
        func.inst_mut(h.inst).kind = InstKind::BoundsCheck {
            site: h.site,
            array: h.array,
            index: h.index,
            kind: h.kind,
        };
        let stale: Vec<_> = func
            .blocks()
            .flat_map(|b| {
                func.block(b)
                    .insts()
                    .iter()
                    .filter(|&&id| {
                        matches!(func.inst(id).kind,
                                 InstKind::SpecCheck { site, .. } if site == h.site)
                    })
                    .map(move |&id| (b, id))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (b, id) in stale {
            func.remove_inst(b, id);
        }
        report.mark_reinstated(h.site, h.kind);
        report.checks_reinstated += 1;
        report.incidents.push(Incident::ValidationReinstated {
            function: func.name_symbol(),
            site: h.site,
            kind: h.kind,
        });
    }
}

/// Upper-bound query on the clean graph, with the same §7.1 congruence
/// fallback the driver used (a removal proven via a congruent array must be
/// re-provable the same way).
#[allow(clippy::too_many_arguments)]
fn prove_upper_clean(
    func: &Function,
    graph: &InequalityGraph,
    gvn: &abcd_analysis::GvnResult,
    dt: &DomTree,
    gvn_hook: bool,
    array: abcd_ir::Value,
    index: abcd_ir::Value,
    block: abcd_ir::Block,
) -> bool {
    let mut p = DemandProver::new(graph, Vertex::ArrayLen(array));
    if p.demand_prove(Vertex::Value(index), -1) {
        return true;
    }
    if gvn_hook {
        for other in abcd_analysis::congruent_arrays(func, gvn, dt, array, block) {
            let mut p = DemandProver::new(graph, Vertex::ArrayLen(other));
            if p.demand_prove(Vertex::Value(index), -1) {
                return true;
            }
        }
    }
    false
}

fn prove_lower_clean(graph: &InequalityGraph, index: abcd_ir::Value) -> bool {
    let mut p = DemandProver::new(graph, Vertex::Const(0));
    p.demand_prove(Vertex::Value(index), 0)
}

/// Re-inserts an eliminated bounds check at its original program point:
/// immediately before the π guard that still carries its site (e-SSA keeps
/// check πs right after the check they rename for), falling back to the
/// first non-φ position of the block.
fn reinstate_eliminated(func: &mut Function, e: &crate::report::EliminatedCheck) {
    let insts = func.block(e.block).insts();
    let mut pos = None;
    let mut first_non_phi = 0usize;
    for (i, &id) in insts.iter().enumerate() {
        match &func.inst(id).kind {
            InstKind::Pi {
                guard: PiGuard::Check { site, .. },
                ..
            } if *site == e.site => {
                pos = Some(i);
                break;
            }
            InstKind::Phi { .. } => first_non_phi = i + 1,
            _ => {}
        }
    }
    let check = func.create_inst(
        InstKind::BoundsCheck {
            site: e.site,
            array: e.array,
            index: e.index,
            kind: e.kind,
        },
        None,
    );
    func.insert_inst(e.block, pos.unwrap_or(first_non_phi), check);
}
