//! Observability for the optimization pipeline: per-pass wall time, solver
//! effort, memo effectiveness, and constraint-graph sizes, with a
//! dependency-free JSON emitter.
//!
//! The driver fills a [`FunctionMetrics`] per function (stored on its
//! [`FunctionReport`](crate::report::FunctionReport)); [`module_metrics_json`]
//! renders the whole run — including the worker-thread count and measured
//! wall-clock time — in the stable `abcd-metrics/6` schema consumed by the
//! `mjc` CLI, the `abcdd` server, and the bench binaries.
//!
//! # Schema (`abcd-metrics/6`)
//!
//! ```json
//! {
//!   "schema": "abcd-metrics/6",
//!   "threads": 2,
//!   "wall_time_us": 1234,
//!   "deterministic": false,
//!   "totals": {
//!     "functions": 3, "checks_total": 10, "removed_fully": 6,
//!     "hoisted": 1, "reinstated": 0, "steps": 57, "pre_steps": 12,
//!     "fuel_spent": 69, "checks_validated": 7, "checks_reinstated": 0,
//!     "incidents": 0, "degraded_incidents": 0,
//!     "functions_from_cache": 1,
//!     "memo_hits": 20, "memo_misses": 37, "memo_hit_rate": 0.3508,
//!     "prepare_us": 10, "graph_build_us": 5, "solve_us": 3,
//!     "pre_us": 2, "transform_us": 1,
//!     "backend_steps": { "demand": 57, "batch": 0, "dbm": 0 },
//!     "backend_times_us": { "demand": 3, "batch": 0, "dbm": 0 }
//!   },
//!   "cache": { "hits": 1, "misses": 2, "stores": 2, "evictions": 0,
//!              "corrupt": 0, "recovered": 0, "write_errors": 0,
//!              "disk_hits": 0, "entries": 2,
//!              "bytes": 4096, "budget_bytes": 67108864 },
//!   "server": { "queue_depth": 0, "request_latency_us": 412 },
//!   "incidents": [
//!     { "kind": "budget_exhausted", "function": "f", "site": "ck3",
//!       "check": "upper", "fuel": 64 }
//!   ],
//!   "functions": [ { "name": "f", ..., "from_cache": false,
//!                    "fuel_spent": 57, "fuel_limit": 64,
//!                    "provenance": { "removed_local": 2, "removed_global": 4,
//!                                    "removed_congruent": 0, "hoisted": 1,
//!                                    "kept": 3, "kept_exhausted": 0,
//!                                    "skipped": 0, "reinstated": 0 },
//!                    "incidents": [...], "graph": {...},
//!                    "backend": { "upper": "demand", "lower": "demand",
//!                                 "steps": { "demand": 57, "batch": 0, "dbm": 0 },
//!                                 "times_us": { "demand": 3, "batch": 0, "dbm": 0 } },
//!                    "times_us": {...} } ]
//! }
//! ```
//!
//! Relative to `abcd-metrics/5`, version 6 adds the service-hardening
//! surface: the non-degraded `deadline_exceeded` incident kind (a request
//! blew its deadline and the module was served *unoptimized* — every check
//! kept, correctness intact), and two crash-safety counters on the `cache`
//! object — `recovered` (partial temp files quarantined by the startup
//! recovery sweep after an unclean shutdown) and `write_errors` (disk
//! persists that failed and were rolled back; the entry stays in-memory
//! only). Both are operational signals, never correctness ones.
//!
//! Relative to `abcd-metrics/4`, version 5 adds per-backend solver
//! accounting for the pluggable prover engines (`--prover
//! demand|batch|dbm|auto`): the per-function `backend` object names the
//! resolved engine per problem (empty strings on cache replays — no solver
//! ran) and splits steps and query wall time by engine, and the totals
//! gain the module-wide `backend_steps` / `backend_times_us` sums. The
//! `solver_overflow` incident kind (non-degraded: the check was kept
//! conservatively after path-weight arithmetic saturated) is also new.
//!
//! Relative to `abcd-metrics/3`, version 4 adds the per-function
//! `provenance` object summarizing *why* each verdict happened (the
//! Figure 6 accounting: local vs. global vs. congruence-only removals,
//! hoists, kept checks split by fuel exhaustion, skips and validation
//! reinstatements) — the aggregate companion to the full derivation
//! traces recorded by [`crate::trace`].
//!
//! Relative to `abcd-metrics/2`, version 3 added the serving + caching
//! observability: the `cache` object (hit/miss/store/eviction/corruption
//! counters and byte budget — `null` when no cache is attached), the
//! `server` object (admission-queue depth at dequeue and per-request
//! latency — `null` for batch runs), the per-function `from_cache` flag
//! with its `functions_from_cache` total, the `cache_corrupt` incident
//! kind, and the `deterministic` flag: when set, every duration field is
//! emitted as `0` so two runs over the same input produce byte-identical
//! JSON (the property the warm-vs-cold and served-vs-batch differential
//! tests compare). All non-time fields are deterministic by construction:
//! functions are emitted in module order, outcomes and incidents in the
//! order the driver recorded them.
//!
//! All durations are integer microseconds; `memo_hit_rate` is
//! `hits / (hits + misses)` (0 when no queries ran).

use crate::cache::CacheStats;
use crate::report::{Incident, ModuleReport};
use abcd_ir::CheckKind;
use std::fmt::Write as _;
use std::time::Duration;

/// Pipeline observability for one function, recorded by the driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct FunctionMetrics {
    /// Stages 1–3: SSA construction, cleanup, e-SSA π insertion.
    pub prepare_time: Duration,
    /// Stage 4: building the upper and lower inequality graphs.
    pub graph_build_time: Duration,
    /// Stage 5a: `demandProve` queries (including §7.1 congruence retries
    /// and the local/global classification probes).
    pub solve_time: Duration,
    /// Stage 5b: the PRE-collecting pass over failed checks (§6).
    pub pre_time: Duration,
    /// Stage 5c: applying removals, insertions, and check merging.
    pub transform_time: Duration,
    /// Upper-problem graph size.
    pub upper_vertices: usize,
    /// Upper-problem edge count.
    pub upper_edges: usize,
    /// Lower-problem graph size.
    pub lower_vertices: usize,
    /// Lower-problem edge count.
    pub lower_edges: usize,
    /// Memo-table hits across the function's demand provers.
    pub memo_hits: u64,
    /// Memo-table misses (traversals) across the function's demand provers.
    pub memo_misses: u64,
    /// Memo hits of the PRE provers.
    pub pre_memo_hits: u64,
    /// Memo misses of the PRE provers.
    pub pre_memo_misses: u64,
    /// Resolved backend that answered this function's upper-bound queries
    /// (`""` on cache replays and fail-open reports — no solver ran).
    pub upper_backend: &'static str,
    /// Resolved backend that answered the lower-bound queries.
    pub lower_backend: &'static str,
    /// Solver steps spent per backend, indexed by
    /// [`crate::ProverBackend::index`] (demand, batch, dbm).
    pub backend_steps: [u64; 3],
    /// Query wall time per backend, same indexing.
    pub backend_time: [Duration; 3],
}

impl FunctionMetrics {
    /// Total pipeline time for this function.
    pub fn total_time(&self) -> Duration {
        self.prepare_time
            + self.graph_build_time
            + self.solve_time
            + self.pre_time
            + self.transform_time
    }

    /// Memo hit rate of the demand provers (0 when no queries ran).
    pub fn memo_hit_rate(&self) -> f64 {
        hit_rate(self.memo_hits, self.memo_misses)
    }
}

fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Run-level facts the report itself does not know: how the module was
/// driven, how long the whole optimization took end to end, and — when a
/// cache or the `abcdd` server is involved — their counters.
#[derive(Clone, Copy, Debug)]
pub struct RunInfo {
    /// Worker threads the driver used.
    pub threads: usize,
    /// End-to-end wall-clock time of `optimize_module` as measured by the
    /// caller (covers scheduling overhead the per-pass times do not).
    pub wall_time: Duration,
    /// Emit every duration as 0 so identical runs produce byte-identical
    /// JSON (used by the differential tests and `--deterministic-metrics`).
    pub deterministic: bool,
    /// Analysis-cache counters, when a cache was attached.
    pub cache: Option<CacheStats>,
    /// Admission-queue depth observed when this request was dequeued
    /// (server runs only).
    pub queue_depth: Option<usize>,
    /// End-to-end request latency as measured by the server (admission to
    /// response), server runs only.
    pub request_latency: Option<Duration>,
}

impl RunInfo {
    /// Run info for a plain batch run (no cache, no server).
    pub fn new(threads: usize, wall_time: Duration) -> RunInfo {
        RunInfo {
            threads,
            wall_time,
            deterministic: false,
            cache: None,
            queue_depth: None,
            request_latency: None,
        }
    }

    /// Attaches cache counters.
    pub fn with_cache(mut self, stats: CacheStats) -> RunInfo {
        self.cache = Some(stats);
        self
    }

    /// Zeroes all emitted durations for byte-comparable output.
    pub fn deterministic(mut self) -> RunInfo {
        self.deterministic = true;
        self
    }
}

// ---- JSON emission (no dependencies) -----------------------------------

/// Escapes `s` as a JSON string literal body (the shared workspace
/// helper, re-exported here for local use).
fn escape(s: &str) -> String {
    crate::trace::json_escape(s)
}

fn us(d: Duration) -> u128 {
    d.as_micros()
}

/// Renders a finite float with enough precision for a rate; JSON has no
/// NaN/Inf, so non-finite values degrade to 0.
fn rate(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "0".to_string()
    }
}

fn kind_str(kind: CheckKind) -> &'static str {
    match kind {
        CheckKind::Upper => "upper",
        CheckKind::Lower => "lower",
        CheckKind::Both => "both",
    }
}

/// Renders one incident as a typed JSON object.
fn incident_json(incident: &Incident, out: &mut String) {
    let _ = write!(out, "{{\"kind\":\"{}\"", incident.kind_name());
    match incident {
        Incident::BudgetExhausted {
            function,
            site,
            kind,
            fuel,
        } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"site\":\"{site}\",\"check\":\"{}\",\"fuel\":{fuel}",
                escape(function.as_str()),
                kind_str(*kind),
            );
        }
        Incident::PassPanic {
            function,
            pass,
            payload,
        } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"pass\":\"{}\",\"payload\":\"{}\"",
                escape(function.as_str()),
                escape(pass),
                escape(payload),
            );
        }
        Incident::VerifyFailed {
            function,
            pass,
            error,
        } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"pass\":\"{}\",\"error\":\"{}\"",
                escape(function.as_str()),
                escape(pass),
                escape(error),
            );
        }
        Incident::ValidationReinstated {
            function,
            site,
            kind,
        } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"site\":\"{site}\",\"check\":\"{}\"",
                escape(function.as_str()),
                kind_str(*kind),
            );
        }
        Incident::CacheCorrupt { function, detail } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"detail\":\"{}\"",
                escape(function.as_str()),
                escape(detail),
            );
        }
        Incident::SolverOverflow {
            function,
            site,
            kind,
        } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"site\":\"{site}\",\"check\":\"{}\"",
                escape(function.as_str()),
                kind_str(*kind),
            );
        }
        Incident::DeadlineExceeded {
            function,
            deadline_ms,
            elapsed_ms,
        } => {
            let _ = write!(
                out,
                ",\"function\":\"{}\",\"deadline_ms\":{deadline_ms},\"elapsed_ms\":{elapsed_ms}",
                escape(function.as_str()),
            );
        }
    }
    out.push('}');
}

fn incidents_json<'a>(incidents: impl Iterator<Item = &'a Incident>, out: &mut String) {
    out.push('[');
    for (i, incident) in incidents.enumerate() {
        if i > 0 {
            out.push(',');
        }
        incident_json(incident, out);
    }
    out.push(']');
}

/// Renders the schema-4 verdict-provenance object: the Figure 6
/// accounting of *why* each check ended where it did.
fn provenance_json(report: &crate::report::FunctionReport, out: &mut String) {
    use crate::report::CheckOutcome;
    let mut removed_local = 0usize;
    let mut removed_global = 0usize;
    let mut removed_congruent = 0usize;
    let mut hoisted = 0usize;
    let mut kept = 0usize;
    let mut skipped = 0usize;
    let mut reinstated = 0usize;
    for (_, _, o) in &report.outcomes {
        match o {
            CheckOutcome::RemovedFully {
                local,
                via_congruence,
            } => {
                if *local {
                    removed_local += 1;
                } else {
                    removed_global += 1;
                }
                if *via_congruence {
                    removed_congruent += 1;
                }
            }
            CheckOutcome::Hoisted { .. } => hoisted += 1,
            CheckOutcome::Kept => kept += 1,
            CheckOutcome::Skipped => skipped += 1,
            CheckOutcome::Reinstated => reinstated += 1,
        }
    }
    let kept_exhausted = report
        .incidents
        .iter()
        .filter(|i| matches!(i, Incident::BudgetExhausted { .. }))
        .count();
    let _ = write!(
        out,
        ",\"provenance\":{{\"removed_local\":{removed_local},\
         \"removed_global\":{removed_global},\
         \"removed_congruent\":{removed_congruent},\"hoisted\":{hoisted},\
         \"kept\":{kept},\"kept_exhausted\":{kept_exhausted},\
         \"skipped\":{skipped},\"reinstated\":{reinstated}}}"
    );
}

/// Renders one function's metrics object. `det` zeroes the durations.
fn function_json(report: &crate::report::FunctionReport, det: bool, out: &mut String) {
    let m = &report.metrics;
    let us = |d: Duration| if det { 0 } else { us(d) };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"checks_total\":{},\"removed_fully\":{},\"hoisted\":{},\
         \"reinstated\":{},\"steps\":{},\"pre_steps\":{},\
         \"fuel_spent\":{},\"fuel_limit\":{},\
         \"checks_validated\":{},\"checks_reinstated\":{},\"from_cache\":{},\
         \"memo_hits\":{},\"memo_misses\":{},\"memo_hit_rate\":{},\
         \"pre_memo_hits\":{},\"pre_memo_misses\":{}",
        escape(report.name.as_str()),
        report.checks_total,
        report.removed_fully(),
        report.hoisted(),
        report.reinstated(),
        report.steps,
        report.pre_steps,
        report.fuel_spent,
        report
            .fuel_limit
            .map_or_else(|| "null".to_string(), |f| f.to_string()),
        report.checks_validated,
        report.checks_reinstated,
        report.from_cache,
        m.memo_hits,
        m.memo_misses,
        rate(m.memo_hit_rate()),
        m.pre_memo_hits,
        m.pre_memo_misses,
    );
    provenance_json(report, out);
    out.push_str(",\"incidents\":");
    incidents_json(report.incidents.iter(), out);
    let _ = write!(
        out,
        ",\"graph\":{{\"upper_vertices\":{},\"upper_edges\":{},\
         \"lower_vertices\":{},\"lower_edges\":{}}},\
         \"backend\":{{\"upper\":\"{}\",\"lower\":\"{}\",\
         \"steps\":{{\"demand\":{},\"batch\":{},\"dbm\":{}}},\
         \"times_us\":{{\"demand\":{},\"batch\":{},\"dbm\":{}}}}},\
         \"times_us\":{{\"prepare\":{},\"graph_build\":{},\"solve\":{},\
         \"pre\":{},\"transform\":{},\"total\":{}}}}}",
        m.upper_vertices,
        m.upper_edges,
        m.lower_vertices,
        m.lower_edges,
        m.upper_backend,
        m.lower_backend,
        m.backend_steps[0],
        m.backend_steps[1],
        m.backend_steps[2],
        us(m.backend_time[0]),
        us(m.backend_time[1]),
        us(m.backend_time[2]),
        us(m.prepare_time),
        us(m.graph_build_time),
        us(m.solve_time),
        us(m.pre_time),
        us(m.transform_time),
        us(m.total_time()),
    );
}

/// Renders the `abcd-metrics/6` JSON document for one optimized module.
pub fn module_metrics_json(report: &ModuleReport, run: RunInfo) -> String {
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut prepare = Duration::ZERO;
    let mut graph_build = Duration::ZERO;
    let mut solve = Duration::ZERO;
    let mut pre = Duration::ZERO;
    let mut transform = Duration::ZERO;
    let mut backend_steps = [0u64; 3];
    let mut backend_time = [Duration::ZERO; 3];
    for f in &report.functions {
        hits += f.metrics.memo_hits + f.metrics.pre_memo_hits;
        misses += f.metrics.memo_misses + f.metrics.pre_memo_misses;
        prepare += f.metrics.prepare_time;
        graph_build += f.metrics.graph_build_time;
        solve += f.metrics.solve_time;
        pre += f.metrics.pre_time;
        transform += f.metrics.transform_time;
        for slot in 0..3 {
            backend_steps[slot] += f.metrics.backend_steps[slot];
            backend_time[slot] += f.metrics.backend_time[slot];
        }
    }
    let det = run.deterministic;
    let us = |d: Duration| if det { 0 } else { us(d) };
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"abcd-metrics/6\",\"threads\":{},\"wall_time_us\":{},\
         \"deterministic\":{},\
         \"totals\":{{\"functions\":{},\"checks_total\":{},\"removed_fully\":{},\
         \"hoisted\":{},\"reinstated\":{},\"steps\":{},\"pre_steps\":{},\
         \"fuel_spent\":{},\"checks_validated\":{},\"checks_reinstated\":{},\
         \"incidents\":{},\"degraded_incidents\":{},\"functions_from_cache\":{},\
         \"memo_hits\":{},\"memo_misses\":{},\"memo_hit_rate\":{},\
         \"prepare_us\":{},\"graph_build_us\":{},\"solve_us\":{},\
         \"pre_us\":{},\"transform_us\":{},\
         \"backend_steps\":{{\"demand\":{},\"batch\":{},\"dbm\":{}}},\
         \"backend_times_us\":{{\"demand\":{},\"batch\":{},\"dbm\":{}}}}},\"cache\":",
        run.threads,
        us(run.wall_time),
        det,
        report.functions.len(),
        report.checks_total(),
        report.checks_removed_fully(),
        report.checks_hoisted(),
        report
            .functions
            .iter()
            .map(|f| f.reinstated())
            .sum::<usize>(),
        report.steps(),
        report.pre_steps(),
        report.fuel_spent(),
        report.checks_validated(),
        report.checks_reinstated(),
        report.incident_count(),
        report.degraded_incident_count(),
        report.functions_from_cache(),
        hits,
        misses,
        rate(hit_rate(hits, misses)),
        us(prepare),
        us(graph_build),
        us(solve),
        us(pre),
        us(transform),
        backend_steps[0],
        backend_steps[1],
        backend_steps[2],
        us(backend_time[0]),
        us(backend_time[1]),
        us(backend_time[2]),
    );
    match run.cache {
        None => out.push_str("null"),
        Some(c) => {
            let _ = write!(
                out,
                "{{\"hits\":{},\"misses\":{},\"stores\":{},\"evictions\":{},\
                 \"corrupt\":{},\"recovered\":{},\"write_errors\":{},\
                 \"disk_hits\":{},\"entries\":{},\"bytes\":{},\
                 \"budget_bytes\":{}}}",
                c.hits,
                c.misses,
                c.stores,
                c.evictions,
                c.corrupt,
                c.recovered,
                c.write_errors,
                c.disk_hits,
                c.entries,
                c.bytes,
                c.budget_bytes,
            );
        }
    }
    out.push_str(",\"server\":");
    match (run.queue_depth, run.request_latency) {
        (None, None) => out.push_str("null"),
        (depth, latency) => {
            let _ = write!(
                out,
                "{{\"queue_depth\":{},\"request_latency_us\":{}}}",
                depth.map_or_else(|| "null".to_string(), |d| d.to_string()),
                latency.map_or_else(|| "null".to_string(), |l| us(l).to_string()),
            );
        }
    }
    out.push_str(",\"incidents\":");
    incidents_json(report.incidents(), &mut out);
    out.push_str(",\"functions\":[");
    for (i, f) in report.functions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        function_json(f, det, &mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny"), "x\\ny");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn hit_rate_is_safe_on_zero() {
        assert_eq!(hit_rate(0, 0), 0.0);
        assert_eq!(hit_rate(1, 1), 0.5);
        assert_eq!(rate(f64::NAN), "0");
    }

    #[test]
    fn module_json_has_schema_and_balances() {
        let mut report = ModuleReport::default();
        let mut f = crate::report::FunctionReport::new("f\"1");
        f.checks_total = 2;
        f.metrics.memo_hits = 3;
        f.metrics.memo_misses = 1;
        report.functions.push(f);
        let json = module_metrics_json(&report, RunInfo::new(2, Duration::from_micros(7)));
        assert!(json.starts_with("{\"schema\":\"abcd-metrics/6\""));
        assert!(json.contains("\"provenance\":{\"removed_local\":0"));
        assert!(json.contains("\"backend_steps\":{\"demand\":0,\"batch\":0,\"dbm\":0}"));
        assert!(json.contains("\"backend\":{\"upper\":\"\",\"lower\":\"\""));
        assert!(json.contains("\"threads\":2"));
        assert!(json.contains("\"wall_time_us\":7"));
        assert!(json.contains("\"deterministic\":false"));
        assert!(json.contains("\"cache\":null"));
        assert!(json.contains("\"server\":null"));
        assert!(json.contains("\"from_cache\":false"));
        assert!(json.contains("\"functions_from_cache\":0"));
        assert!(json.contains("\"name\":\"f\\\"1\""));
        assert!(json.contains("\"memo_hit_rate\":0.7500"));
        // Zero-incident runs record the empty array explicitly.
        assert!(json.contains("\"incidents\":0,\"degraded_incidents\":0"));
        assert!(json.contains("\"incidents\":[]"));
        assert!(json.contains("\"fuel_limit\":null"));
        // Balanced braces/brackets and no raw control characters.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.chars().all(|c| (c as u32) >= 0x20));
    }

    #[test]
    fn incidents_render_as_typed_objects() {
        use abcd_ir::CheckSite;
        let mut report = ModuleReport::default();
        let mut f = crate::report::FunctionReport::new("f");
        f.fuel_limit = Some(64);
        f.incidents.push(Incident::BudgetExhausted {
            function: "f".into(),
            site: CheckSite::new(3),
            kind: CheckKind::Upper,
            fuel: 64,
        });
        f.incidents.push(Incident::PassPanic {
            function: "f".into(),
            pass: "cleanup".to_string(),
            payload: "injected \"quote\"".to_string(),
        });
        report.functions.push(f);
        let json = module_metrics_json(&report, RunInfo::new(1, Duration::ZERO));
        assert!(json.contains(
            "{\"kind\":\"budget_exhausted\",\"function\":\"f\",\"site\":\"ck3\",\
             \"check\":\"upper\",\"fuel\":64}"
        ));
        assert!(json.contains("\"kind\":\"pass_panic\""));
        assert!(json.contains("\"payload\":\"injected \\\"quote\\\"\""));
        assert!(json.contains("\"kept_exhausted\":1"));
        assert!(json.contains("\"incidents\":2,\"degraded_incidents\":1"));
        assert!(json.contains("\"fuel_limit\":64"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn cache_corrupt_incident_renders_and_is_not_degraded() {
        let mut report = ModuleReport::default();
        let mut f = crate::report::FunctionReport::new("f");
        f.incidents.push(Incident::CacheCorrupt {
            function: "f".into(),
            detail: "checksum mismatch".to_string(),
        });
        report.functions.push(f);
        assert_eq!(report.degraded_incident_count(), 0);
        let json = module_metrics_json(&report, RunInfo::new(1, Duration::ZERO));
        assert!(json.contains(
            "{\"kind\":\"cache_corrupt\",\"function\":\"f\",\"detail\":\"checksum mismatch\"}"
        ));
    }

    #[test]
    fn deadline_incident_renders_and_is_not_degraded() {
        let mut report = ModuleReport::default();
        let mut f = crate::report::FunctionReport::new("f");
        f.incidents.push(Incident::DeadlineExceeded {
            function: "f".into(),
            deadline_ms: 50,
            elapsed_ms: 61,
        });
        report.functions.push(f);
        assert_eq!(report.degraded_incident_count(), 0);
        let json = module_metrics_json(&report, RunInfo::new(1, Duration::ZERO));
        assert!(json.contains(
            "{\"kind\":\"deadline_exceeded\",\"function\":\"f\",\
             \"deadline_ms\":50,\"elapsed_ms\":61}"
        ));
    }

    #[test]
    fn cache_recovery_counters_render() {
        let report = ModuleReport::default();
        let stats = crate::cache::CacheStats {
            recovered: 2,
            write_errors: 3,
            ..crate::cache::CacheStats::default()
        };
        let json = module_metrics_json(&report, RunInfo::new(1, Duration::ZERO).with_cache(stats));
        assert!(
            json.contains("\"recovered\":2,\"write_errors\":3"),
            "{json}"
        );
    }

    #[test]
    fn provenance_counts_every_outcome_bucket() {
        use crate::report::CheckOutcome;
        use abcd_ir::CheckSite;
        let mut f = crate::report::FunctionReport::new("f");
        let o = |n: usize, k, oc| (CheckSite::new(n), k, oc);
        f.outcomes.push(o(
            0,
            CheckKind::Upper,
            CheckOutcome::RemovedFully {
                local: true,
                via_congruence: false,
            },
        ));
        f.outcomes.push(o(
            1,
            CheckKind::Upper,
            CheckOutcome::RemovedFully {
                local: false,
                via_congruence: true,
            },
        ));
        f.outcomes.push(o(
            2,
            CheckKind::Lower,
            CheckOutcome::Hoisted { insertions: 2 },
        ));
        f.outcomes.push(o(3, CheckKind::Upper, CheckOutcome::Kept));
        f.outcomes
            .push(o(4, CheckKind::Upper, CheckOutcome::Skipped));
        f.outcomes
            .push(o(5, CheckKind::Lower, CheckOutcome::Reinstated));
        let mut report = ModuleReport::default();
        report.functions.push(f);
        let json = module_metrics_json(&report, RunInfo::new(1, Duration::ZERO));
        assert!(
            json.contains(
                "\"provenance\":{\"removed_local\":1,\"removed_global\":1,\
                 \"removed_congruent\":1,\"hoisted\":1,\"kept\":1,\
                 \"kept_exhausted\":0,\"skipped\":1,\"reinstated\":1}"
            ),
            "{json}"
        );
    }

    #[test]
    fn deterministic_zeroes_every_duration() {
        let mut report = ModuleReport::default();
        let mut f = crate::report::FunctionReport::new("f");
        f.metrics.prepare_time = Duration::from_micros(99);
        f.metrics.solve_time = Duration::from_micros(3);
        report.functions.push(f);
        let info = RunInfo::new(1, Duration::from_micros(123456))
            .with_cache(crate::cache::CacheStats::default())
            .deterministic();
        let info = RunInfo {
            request_latency: Some(Duration::from_micros(77)),
            queue_depth: Some(4),
            ..info
        };
        let json = module_metrics_json(&report, info);
        assert!(json.contains("\"deterministic\":true"));
        assert!(json.contains("\"wall_time_us\":0"));
        assert!(json.contains("\"request_latency_us\":0"));
        assert!(json.contains("\"queue_depth\":4"));
        assert!(json.contains("\"cache\":{\"hits\":0"));
        assert!(!json.contains(":99"), "{json}");
        // Byte-identical across repeated emission.
        assert_eq!(json, module_metrics_json(&report, info));
    }
}
