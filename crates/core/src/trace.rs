//! Structured, hierarchical tracing for the whole pipeline — the recorder
//! behind `mjc --trace-out`, `mjc explain`, and the `abcdd` `trace` request.
//!
//! # Design
//!
//! Tracing is **off by default** and enabling it never changes verdicts:
//! the provers carry an `Option<Vec<ProveEvent>>` that stays `None` unless
//! [`DemandProver::enable_trace`](crate::DemandProver::enable_trace) is
//! called, so the disabled hot path is a single branch with no allocation.
//! When enabled, each `demandProve` query records its traversal tree
//! (vertex visits, memo hits, cycle detections, fuel exhaustion) as a flat
//! pre-order event list; the driver wraps queries in [`Span`]s together
//! with pass timings, graph sizes, PRE insertion decisions and cache
//! lookups, ring-buffered per function in a [`FunctionTrace`].
//!
//! Per-function traces ride the driver's deterministic function-order
//! merge (they live on the
//! [`FunctionReport`](crate::report::FunctionReport)), so a parallel run
//! emits the same trace as a sequential one.
//!
//! # Schema (`abcd-trace/3`)
//!
//! [`module_trace_jsonl`] renders one JSON object per line:
//!
//! ```json
//! {"schema":"abcd-trace/3","threads":1,"deterministic":true,"functions":1}
//! {"span":"pass","function":"f","pass":"insert_pi","dur_us":0}
//! {"span":"graph_build","function":"f","dur_us":0,"upper_vertices":9,...}
//! {"span":"prove","function":"f","site":"ck0","check":"upper",
//!  "target":"v5","source":"len(v0)","c":-1,"proven":true,
//!  "exhausted":false,"steps":7,"events":[{"e":"visit","v":"v5","c":-1,"d":0},...]}
//! {"span":"pre","function":"f","site":"ck1","check":"upper",
//!  "outcome":"hoisted","steps":9,
//!  "insertions":[{"pred":"bb2","arg":"v3","c_prime":1,"delta":-2}],"events":[...]}
//! {"span":"cache","function":"f","hit":false}
//! {"span":"incident","function":"f","kind":"pass_panic","pass":"solve","detail":"..."}
//! ```
//!
//! Span taxonomy: `pass` (one per timed pipeline stage), `graph_build`,
//! `backend` (one per inequality problem: which prover engine the
//! `--prover` request resolved to, with the graph-shape inputs the `auto`
//! heuristic consulted), `prove` (one per `demandProve` query, §5), `pre`
//! (one per PRE decision, §6), `cache` (content-addressed lookup result),
//! `incident` (always rendered last for a function), `dropped` (ring-buffer
//! overflow marker) and — appended by the `abcdd` server only — `request`
//! (queue depth at dequeue, end-to-end latency, and the deadline in force,
//! if any). With `deterministic` set, every duration renders as `0` so
//! traces are byte-comparable across runs and thread counts.
//!
//! Relative to `abcd-trace/2`, version 3 adds the `deadline_ms` field to
//! the `request` span (`null` when the request carried no deadline) and
//! the `deadline_exceeded` incident kind (attributed to the `request`
//! pass: the cut-off happened in the service layer, not a compiler stage).
//!
//! Relative to `abcd-trace/1`, version 2 added the `backend` span.

use crate::report::{FunctionReport, ModuleReport};
use abcd_ir::CheckSite;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Duration;

/// The trace schema identifier emitted in the header line.
pub const TRACE_SCHEMA: &str = "abcd-trace/3";

/// Ring capacity per function: oldest spans are dropped (and counted) once
/// a function records more than this many.
pub const SPAN_RING_CAPACITY: usize = 16_384;

/// Escapes `s` as a JSON string literal body. This is the one shared
/// escaping helper behind every hand-assembled JSON emitter in the
/// workspace (`abcd::metrics`, the trace renderer, the bench emitters, and
/// `abcd-server`'s protocol).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One step of a recorded `demandProve` traversal. Vertices are recorded
/// by their display name (`v3`, `len(v0)`, `7`) so the trace is readable
/// without the graph; `d` is the DFS recursion depth, which reconstructs
/// the traversal tree from the flat pre-order list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProveEvent {
    /// Entered `v` with remaining slack `c`; its in-edges will be explored.
    Visit {
        /// Vertex display name.
        v: String,
        /// Remaining slack at entry.
        c: i64,
        /// DFS depth.
        d: u32,
    },
    /// Answered from the memo table by subsumption.
    MemoHit {
        /// Vertex display name.
        v: String,
        /// Queried slack.
        c: i64,
        /// DFS depth.
        d: u32,
        /// The memoized verdict (`true` / `reduced` / `false`).
        verdict: &'static str,
    },
    /// The source vertex was reached with non-negative slack: the
    /// traversed path proves the difference.
    Source {
        /// Vertex display name (the source).
        v: String,
        /// Slack on arrival (≥ 0).
        c: i64,
        /// DFS depth.
        d: u32,
    },
    /// Constant-vs-constant potential comparison decided the vertex.
    Potential {
        /// Vertex display name.
        v: String,
        /// Queried slack.
        c: i64,
        /// DFS depth.
        d: u32,
        /// Whether the comparison proved the difference.
        proven: bool,
    },
    /// A vertex with no in-edges refuted the path.
    Unconstrained {
        /// Vertex display name.
        v: String,
        /// Queried slack.
        c: i64,
        /// DFS depth.
        d: u32,
    },
    /// A cycle closed at an active vertex (§5's induction-variable test):
    /// amplifying (slack shrank) refutes, harmless reduces.
    Cycle {
        /// Vertex display name.
        v: String,
        /// Slack at re-entry.
        c: i64,
        /// Slack when the vertex was first entered.
        entry_c: i64,
        /// `c < entry_c`: positive-weight cycle, refuted.
        amplifying: bool,
        /// DFS depth.
        d: u32,
    },
    /// The vertex resolved after merging its in-edges (meet at max/φ,
    /// join at min).
    Resolved {
        /// Vertex display name.
        v: String,
        /// DFS depth.
        d: u32,
        /// Merged verdict.
        verdict: &'static str,
    },
    /// The query's fuel budget ran out mid-traversal.
    Fuel {
        /// DFS depth at exhaustion.
        d: u32,
    },
}

impl ProveEvent {
    fn json(&self, out: &mut String) {
        match self {
            ProveEvent::Visit { v, c, d } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"visit\",\"v\":\"{}\",\"c\":{c},\"d\":{d}}}",
                    json_escape(v)
                );
            }
            ProveEvent::MemoHit { v, c, d, verdict } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"memo\",\"v\":\"{}\",\"c\":{c},\"d\":{d},\"verdict\":\"{verdict}\"}}",
                    json_escape(v)
                );
            }
            ProveEvent::Source { v, c, d } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"source\",\"v\":\"{}\",\"c\":{c},\"d\":{d}}}",
                    json_escape(v)
                );
            }
            ProveEvent::Potential { v, c, d, proven } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"potential\",\"v\":\"{}\",\"c\":{c},\"d\":{d},\"proven\":{proven}}}",
                    json_escape(v)
                );
            }
            ProveEvent::Unconstrained { v, c, d } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"unconstrained\",\"v\":\"{}\",\"c\":{c},\"d\":{d}}}",
                    json_escape(v)
                );
            }
            ProveEvent::Cycle {
                v,
                c,
                entry_c,
                amplifying,
                d,
            } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"cycle\",\"v\":\"{}\",\"c\":{c},\"entry_c\":{entry_c},\
                     \"amplifying\":{amplifying},\"d\":{d}}}",
                    json_escape(v)
                );
            }
            ProveEvent::Resolved { v, d, verdict } => {
                let _ = write!(
                    out,
                    "{{\"e\":\"resolved\",\"v\":\"{}\",\"d\":{d},\"verdict\":\"{verdict}\"}}",
                    json_escape(v)
                );
            }
            ProveEvent::Fuel { d } => {
                let _ = write!(out, "{{\"e\":\"fuel\",\"d\":{d}}}");
            }
        }
    }
}

/// One compensating-check insertion decision recorded for a PRE span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PreInsertionRecord {
    /// Predecessor block receiving the compensating check.
    pub pred: String,
    /// The failing φ argument used as the compensating index base.
    pub arg: String,
    /// The remaining difference query at the insertion point (solver
    /// domain; see [`crate::PreProver`]).
    pub c_prime: i64,
    /// The index offset the transformation will apply (`arg + delta`),
    /// derived from `c_prime` by [`crate::pre::compensation_delta`].
    pub delta: i64,
}

/// One recorded span. Durations are zeroed at render time in
/// deterministic mode; everything else is deterministic by construction.
#[derive(Clone, Debug)]
pub enum Span {
    /// A timed pipeline stage (`insert_pi`, `prepare`, `transform`, …).
    Pass {
        /// Pass label (the fail-open layer's pass taxonomy).
        pass: &'static str,
        /// Wall time of the stage.
        dur: Duration,
    },
    /// Inequality-graph construction with the resulting sizes.
    GraphBuild {
        /// Wall time of both builds.
        dur: Duration,
        /// Upper-problem vertex count.
        upper_vertices: usize,
        /// Upper-problem edge count.
        upper_edges: usize,
        /// Lower-problem vertex count.
        lower_vertices: usize,
        /// Lower-problem edge count.
        lower_edges: usize,
    },
    /// One `demandProve` query for a check.
    Prove {
        /// Check site being proven.
        site: CheckSite,
        /// `upper` / `lower`.
        check: &'static str,
        /// Target vertex (the checked index).
        target: String,
        /// Source vertex (array length or the constant 0).
        source: String,
        /// The queried bound (`target − source ≤ c`).
        c: i64,
        /// Whether the query proved the difference.
        proven: bool,
        /// Whether the query tripped its fuel budget.
        exhausted: bool,
        /// Solver steps this query spent.
        steps: u64,
        /// The recorded traversal tree.
        events: Vec<ProveEvent>,
    },
    /// One PRE decision for a check that was not fully redundant.
    Pre {
        /// Check site.
        site: CheckSite,
        /// `upper` / `lower`.
        check: &'static str,
        /// `hoisted` / `unprofitable` / `proven` / `exhausted` / `failed`.
        outcome: &'static str,
        /// PRE-prover steps this query spent.
        steps: u64,
        /// The insertion points (empty unless `hoisted`/`unprofitable`).
        insertions: Vec<PreInsertionRecord>,
        /// The recorded traversal tree.
        events: Vec<ProveEvent>,
    },
    /// Content-addressed cache lookup outcome for the function.
    Cache {
        /// Whether the lookup hit (the pipeline was replayed, not run).
        hit: bool,
    },
    /// Prover-backend resolution for one problem graph (`--prover`):
    /// what was requested, what `auto` (or the explicit choice) resolved
    /// to, and the graph shape the heuristic saw.
    Backend {
        /// `upper` / `lower`.
        problem: &'static str,
        /// The configured backend (may be `auto`).
        requested: &'static str,
        /// The engine actually answering queries (never `auto`).
        backend: &'static str,
        /// Graph vertex count.
        vertices: usize,
        /// Graph edge count.
        edges: usize,
        /// Back-edge count of a DFS over the graph (0 = acyclic).
        cycles: usize,
    },
}

impl Span {
    fn site(&self) -> Option<CheckSite> {
        match self {
            Span::Prove { site, .. } | Span::Pre { site, .. } => Some(*site),
            _ => None,
        }
    }

    fn json(&self, function: &str, deterministic: bool, out: &mut String) {
        let us = |d: Duration| if deterministic { 0 } else { d.as_micros() };
        let func = json_escape(function);
        match self {
            Span::Pass { pass, dur } => {
                let _ = write!(
                    out,
                    "{{\"span\":\"pass\",\"function\":\"{func}\",\"pass\":\"{pass}\",\
                     \"dur_us\":{}}}",
                    us(*dur)
                );
            }
            Span::GraphBuild {
                dur,
                upper_vertices,
                upper_edges,
                lower_vertices,
                lower_edges,
            } => {
                let _ = write!(
                    out,
                    "{{\"span\":\"graph_build\",\"function\":\"{func}\",\"dur_us\":{},\
                     \"upper_vertices\":{upper_vertices},\"upper_edges\":{upper_edges},\
                     \"lower_vertices\":{lower_vertices},\"lower_edges\":{lower_edges}}}",
                    us(*dur)
                );
            }
            Span::Prove {
                site,
                check,
                target,
                source,
                c,
                proven,
                exhausted,
                steps,
                events,
            } => {
                let _ = write!(
                    out,
                    "{{\"span\":\"prove\",\"function\":\"{func}\",\"site\":\"{site}\",\
                     \"check\":\"{check}\",\"target\":\"{}\",\"source\":\"{}\",\"c\":{c},\
                     \"proven\":{proven},\"exhausted\":{exhausted},\"steps\":{steps},\
                     \"events\":",
                    json_escape(target),
                    json_escape(source),
                );
                events_json(events, out);
                out.push('}');
            }
            Span::Pre {
                site,
                check,
                outcome,
                steps,
                insertions,
                events,
            } => {
                let _ = write!(
                    out,
                    "{{\"span\":\"pre\",\"function\":\"{func}\",\"site\":\"{site}\",\
                     \"check\":\"{check}\",\"outcome\":\"{outcome}\",\"steps\":{steps},\
                     \"insertions\":["
                );
                for (i, p) in insertions.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"pred\":\"{}\",\"arg\":\"{}\",\"c_prime\":{},\"delta\":{}}}",
                        json_escape(&p.pred),
                        json_escape(&p.arg),
                        p.c_prime,
                        p.delta,
                    );
                }
                out.push_str("],\"events\":");
                events_json(events, out);
                out.push('}');
            }
            Span::Cache { hit } => {
                let _ = write!(
                    out,
                    "{{\"span\":\"cache\",\"function\":\"{func}\",\"hit\":{hit}}}"
                );
            }
            Span::Backend {
                problem,
                requested,
                backend,
                vertices,
                edges,
                cycles,
            } => {
                let _ = write!(
                    out,
                    "{{\"span\":\"backend\",\"function\":\"{func}\",\
                     \"problem\":\"{problem}\",\"requested\":\"{requested}\",\
                     \"backend\":\"{backend}\",\"vertices\":{vertices},\
                     \"edges\":{edges},\"cycles\":{cycles}}}"
                );
            }
        }
    }
}

fn events_json(events: &[ProveEvent], out: &mut String) {
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        e.json(out);
    }
    out.push(']');
}

/// The per-function span ring buffer. Spans are recorded in pipeline
/// order; once [`SPAN_RING_CAPACITY`] is exceeded the oldest span is
/// dropped and counted, so a pathological function bounds trace memory
/// instead of growing without limit.
#[derive(Clone, Debug, Default)]
pub struct FunctionTrace {
    spans: VecDeque<Span>,
    /// Spans dropped to ring-buffer overflow.
    pub dropped: u64,
}

impl FunctionTrace {
    /// An empty trace.
    pub fn new() -> FunctionTrace {
        FunctionTrace::default()
    }

    /// Records a span, evicting the oldest on overflow.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() >= SPAN_RING_CAPACITY {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Records a span at the front (used for the cache-lookup span, which
    /// logically precedes the pipeline it short-circuits).
    pub fn push_front(&mut self, span: Span) {
        if self.spans.len() >= SPAN_RING_CAPACITY {
            self.spans.pop_back();
            self.dropped += 1;
        }
        self.spans.push_front(span);
    }

    /// The recorded spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }
}

/// Renders the `abcd-trace/3` JSONL document for one optimized module:
/// a header line, then every function's spans in module order, each
/// function's incidents last. With `deterministic` set, every duration is
/// emitted as `0` (the trace differential tests compare these bytes).
pub fn module_trace_jsonl(report: &ModuleReport, threads: usize, deterministic: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"{TRACE_SCHEMA}\",\"threads\":{},\"deterministic\":{},\"functions\":{}}}",
        threads.max(1),
        deterministic,
        report.functions.len(),
    );
    for f in &report.functions {
        if let Some(trace) = &f.trace {
            for span in trace.spans() {
                span.json(f.name.as_str(), deterministic, &mut out);
                out.push('\n');
            }
            if trace.dropped > 0 {
                let _ = writeln!(
                    out,
                    "{{\"span\":\"dropped\",\"function\":\"{}\",\"count\":{}}}",
                    json_escape(f.name.as_str()),
                    trace.dropped,
                );
            }
        }
        // Incidents render last for each function, whether or not the
        // pipeline got far enough to record spans (a panicked function
        // loses its in-flight buffer with the scratch clone — the
        // incident line is its trace).
        for incident in &f.incidents {
            let _ = writeln!(
                out,
                "{{\"span\":\"incident\",\"function\":\"{}\",\"kind\":\"{}\",\
                 \"pass\":\"{}\",\"detail\":\"{}\"}}",
                json_escape(f.name.as_str()),
                incident.kind_name(),
                json_escape(incident_pass(incident)),
                json_escape(&incident.to_string()),
            );
        }
    }
    out
}

fn incident_pass(incident: &crate::report::Incident) -> &str {
    use crate::report::Incident;
    match incident {
        Incident::PassPanic { pass, .. } | Incident::VerifyFailed { pass, .. } => pass,
        Incident::BudgetExhausted { .. } | Incident::SolverOverflow { .. } => "solve",
        Incident::ValidationReinstated { .. } => "validate",
        Incident::CacheCorrupt { .. } => "cache",
        Incident::DeadlineExceeded { .. } => "request",
    }
}

/// Renders the server's request-lifecycle span (one JSONL line, appended
/// by `abcdd` after the module's spans). `deadline_ms` is the deadline the
/// request ran under, `None` when unbounded.
pub fn request_span_jsonl(
    queue_depth: usize,
    latency: Duration,
    deadline_ms: Option<u64>,
    deterministic: bool,
) -> String {
    format!(
        "{{\"span\":\"request\",\"queue_depth\":{queue_depth},\"latency_us\":{},\
         \"deadline_ms\":{}}}\n",
        if deterministic {
            0
        } else {
            latency.as_micros()
        },
        deadline_ms.map_or_else(|| "null".to_string(), |d| d.to_string()),
    )
}

/// A witness derivation path extracted from a proven query's events: the
/// chain of `(vertex, slack)` frames from the target down to the source.
/// The hop weight between consecutive frames is `c_parent − c_child` —
/// exactly the inequality-graph edge weight the traversal followed, which
/// is what the certificate re-verification test checks.
pub fn witness_path(events: &[ProveEvent]) -> Option<Vec<(String, i64)>> {
    let mut stack: Vec<(u32, String, i64)> = Vec::new();
    for e in events {
        match e {
            ProveEvent::Visit { v, c, d } => {
                while stack.last().is_some_and(|(sd, _, _)| *sd >= *d) {
                    stack.pop();
                }
                stack.push((*d, v.clone(), *c));
            }
            ProveEvent::Source { v, c, d } => {
                while stack.last().is_some_and(|(sd, _, _)| *sd >= *d) {
                    stack.pop();
                }
                let mut path: Vec<(String, i64)> =
                    stack.iter().map(|(_, v, c)| (v.clone(), *c)).collect();
                path.push((v.clone(), *c));
                return Some(path);
            }
            _ => {}
        }
    }
    None
}

/// Renders the human-readable proof certificates for one function's
/// recorded trace — the `mjc explain` output. `check` filters to the site
/// with that index (`ckN`); `None` explains every traced check. Returns
/// `None` when the function has no recorded trace.
pub fn explain_function(report: &FunctionReport, check: Option<usize>) -> Option<String> {
    let trace = report.trace.as_ref()?;
    let mut out = String::new();
    let _ = writeln!(out, "fn {}:", report.name);
    let wanted = check.map(|n| format!("ck{n}"));
    let mut shown = 0usize;
    for span in trace.spans() {
        if let (Some(site), Some(w)) = (span.site(), &wanted) {
            if site.to_string() != *w {
                continue;
            }
        }
        match span {
            Span::Prove {
                site,
                check,
                target,
                source,
                c,
                proven,
                exhausted,
                steps,
                events,
            } => {
                shown += 1;
                let _ = writeln!(
                    out,
                    "  check {site} ({check}): {}",
                    prove_certificate(
                        check, target, source, *c, *proven, *exhausted, *steps, events
                    )
                );
            }
            Span::Pre {
                site,
                check,
                outcome,
                steps,
                insertions,
                ..
            } => {
                shown += 1;
                let _ = write!(out, "  check {site} ({check}, pre): {outcome}");
                if insertions.is_empty() {
                    let _ = writeln!(out, "; pre steps spent {steps}");
                } else {
                    let _ = writeln!(out, ":");
                    for p in insertions {
                        let delta = match p.delta {
                            d if d < 0 => format!("{} − {}", p.arg, -d),
                            0 => p.arg.clone(),
                            d => format!("{} + {}", p.arg, d),
                        };
                        let _ = writeln!(
                            out,
                            "    insert spec_check [{delta}] at end of {} (c′ = {})",
                            p.pred, p.c_prime
                        );
                    }
                }
            }
            Span::Cache { hit: true } => {
                let _ = writeln!(
                    out,
                    "  (replayed from the analysis cache — no derivations this run)"
                );
            }
            _ => {}
        }
    }
    for incident in &report.incidents {
        let _ = writeln!(out, "  incident: {incident}");
    }
    if shown == 0 && check.is_some() {
        let _ = writeln!(out, "  (no recorded derivation for {})", wanted.unwrap());
    }
    Some(out)
}

/// The one-line certificate for a single `demandProve` query.
#[allow(clippy::too_many_arguments)]
fn prove_certificate(
    check: &str,
    target: &str,
    source: &str,
    c: i64,
    proven: bool,
    exhausted: bool,
    steps: u64,
    events: &[ProveEvent],
) -> String {
    let claim = inequality(check, target, source, c);
    if proven {
        if let Some(path) = witness_path(events) {
            let mut rendered = String::new();
            let mut weight = 0i64;
            for (i, (v, slack)) in path.iter().enumerate() {
                if i > 0 {
                    let w = path[i - 1].1 - slack;
                    weight += w;
                    let _ = write!(rendered, " →({w}) ");
                }
                rendered.push_str(v);
            }
            return format!("eliminated: {claim} via path {rendered}, weight {weight}");
        }
        // Proven without reaching the source in this traversal: a memoized
        // verdict, a harmless cycle, or a potential comparison closed it.
        for e in events {
            match e {
                ProveEvent::MemoHit { v, c, verdict, .. } if *verdict != "false" => {
                    return format!(
                        "eliminated: {claim} via memoized verdict at {v} (subsumed by bound {c})"
                    );
                }
                ProveEvent::Cycle {
                    v,
                    c,
                    entry_c,
                    amplifying: false,
                    ..
                } => {
                    return format!(
                        "eliminated: {claim} via harmless cycle at {v} (slack {c} ≥ entry {entry_c})"
                    );
                }
                ProveEvent::Potential {
                    v, proven: true, ..
                } => {
                    return format!("eliminated: {claim} by potential comparison at {v}");
                }
                _ => {}
            }
        }
        return format!("eliminated: {claim}");
    }
    if exhausted {
        return format!("kept: fuel exhausted proving {claim}; fuel spent {steps}");
    }
    for e in events {
        match e {
            ProveEvent::Cycle {
                v,
                c,
                entry_c,
                amplifying: true,
                ..
            } => {
                return format!(
                    "kept: amplifying cycle at {v} (slack {c} < entry {entry_c}); fuel spent {steps}"
                );
            }
            ProveEvent::Unconstrained { v, .. } => {
                return format!(
                    "kept: {v} is unconstrained — no derivation reaches {source}; \
                     fuel spent {steps}"
                );
            }
            ProveEvent::Potential {
                v, proven: false, ..
            } => {
                return format!("kept: potential comparison refutes {claim} at {v}");
            }
            _ => {}
        }
    }
    format!("kept: {claim} refuted; fuel spent {steps}")
}

/// Renders the solver-domain query as the user-facing inequality. Upper
/// queries ask `target − source ≤ c`; lower queries run on the negated
/// problem, so `target − source ≤ c` reads `target ≥ source − c`.
fn inequality(check: &str, target: &str, source: &str, c: i64) -> String {
    if check == "lower" {
        match (source, c) {
            ("0", c) => format!("{target} ≥ {}", -c),
            (s, 0) => format!("{target} ≥ {s}"),
            (s, c) if c > 0 => format!("{target} ≥ {s} − {c}"),
            (s, c) => format!("{target} ≥ {s} + {}", -c),
        }
    } else {
        match c {
            0 => format!("{target} ≤ {source}"),
            c if c < 0 => format!("{target} ≤ {source} − {}", -c),
            c => format!("{target} ≤ {source} + {c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn visit(v: &str, c: i64, d: u32) -> ProveEvent {
        ProveEvent::Visit {
            v: v.to_string(),
            c,
            d,
        }
    }

    #[test]
    fn witness_path_follows_the_successful_branch() {
        // v5 → (dead end v9) → v3 → len(v0): the stack must discard the
        // abandoned v9 frame when the v3 branch opens at the same depth.
        let events = vec![
            visit("v5", -1, 0),
            visit("v9", -1, 1),
            ProveEvent::Unconstrained {
                v: "v9".to_string(),
                c: -1,
                d: 2,
            },
            ProveEvent::Resolved {
                v: "v9".to_string(),
                d: 1,
                verdict: "false",
            },
            visit("v3", 0, 1),
            ProveEvent::Source {
                v: "len(v0)".to_string(),
                c: 0,
                d: 2,
            },
        ];
        let path = witness_path(&events).unwrap();
        assert_eq!(
            path,
            vec![
                ("v5".to_string(), -1),
                ("v3".to_string(), 0),
                ("len(v0)".to_string(), 0)
            ]
        );
        // Hop weights: c_parent − c_child.
        assert_eq!(path[0].1 - path[1].1, -1);
        assert_eq!(path[1].1 - path[2].1, 0);
    }

    #[test]
    fn witness_path_absent_without_source() {
        let events = vec![
            visit("v5", -1, 0),
            ProveEvent::Unconstrained {
                v: "v5".to_string(),
                c: -1,
                d: 1,
            },
        ];
        assert!(witness_path(&events).is_none());
    }

    #[test]
    fn certificate_renders_path_and_weight() {
        let events = vec![
            visit("i1", -1, 0),
            visit("n", 0, 1),
            ProveEvent::Source {
                v: "len(a)".to_string(),
                c: 0,
                d: 2,
            },
        ];
        let cert = prove_certificate("upper", "i1", "len(a)", -1, true, false, 7, &events);
        assert_eq!(
            cert,
            "eliminated: i1 ≤ len(a) − 1 via path i1 →(-1) n →(0) len(a), weight -1"
        );
    }

    #[test]
    fn certificate_names_amplifying_cycle() {
        let events = vec![
            visit("v4", -1, 0),
            ProveEvent::Cycle {
                v: "v4".to_string(),
                c: -2,
                entry_c: -1,
                amplifying: true,
                d: 3,
            },
        ];
        let cert = prove_certificate("upper", "v4", "len(v0)", -1, false, false, 9, &events);
        assert!(
            cert.starts_with("kept: amplifying cycle at v4 (slack -2 < entry -1)"),
            "{cert}"
        );
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut t = FunctionTrace::new();
        for _ in 0..(SPAN_RING_CAPACITY + 3) {
            t.push(Span::Cache { hit: false });
        }
        assert_eq!(t.spans.len(), SPAN_RING_CAPACITY);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn jsonl_lines_have_schema_header_and_balance() {
        let mut report = ModuleReport::default();
        let mut f = FunctionReport::new("weird\"name");
        let mut trace = FunctionTrace::new();
        trace.push(Span::Pass {
            pass: "insert_pi",
            dur: Duration::from_micros(5),
        });
        trace.push(Span::Prove {
            site: CheckSite::new(0),
            check: "upper",
            target: "v5".to_string(),
            source: "len(v0)".to_string(),
            c: -1,
            proven: true,
            exhausted: false,
            steps: 3,
            events: vec![visit("v5", -1, 0)],
        });
        f.trace = Some(Box::new(trace));
        report.functions.push(f);
        let jsonl = module_trace_jsonl(&report, 2, false);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"schema\":\"abcd-trace/3\""));
        assert!(lines[1].contains("\"function\":\"weird\\\"name\""));
        assert!(lines[2].contains("\"span\":\"prove\""));
        for line in &lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.chars().all(|c| (c as u32) >= 0x20));
        }
        // Deterministic mode zeroes the duration and is stable.
        let det = module_trace_jsonl(&report, 2, true);
        assert!(det.contains("\"dur_us\":0"));
        assert_eq!(det, module_trace_jsonl(&report, 2, true));
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
