//! Optional interprocedural extension: parameter-fact inference.
//!
//! The paper's evaluation is purely intraprocedural and names that as its
//! main limitation ("We do not use any interprocedural summary information
//! … results should be considered a lower bound"). This module implements
//! the natural ABCD-flavored summary scheme as an opt-in extension
//! ([`OptimizerOptions::interprocedural`](crate::OptimizerOptions)):
//!
//! 1. **Candidates.** For every non-root function, guess difference facts
//!    about its parameters — `p ≥ 0`, `p ≤ A.length − 1`, and
//!    `A.length ≤ B.length` for parameter arrays — the same constraint
//!    classes ABCD already reasons about (C2/C5-shaped, Table 1).
//! 2. **Optimistic fixpoint.** Assume all candidates, then repeatedly
//!    *verify* each fact at every call site by running `demandProve` in the
//!    caller's graph (itself augmented with the caller's currently-assumed
//!    facts) on the actual arguments; drop facts that fail anywhere and
//!    repeat until stable. The set shrinks monotonically, so this
//!    terminates; by induction over the call tree (roots assume nothing),
//!    every surviving fact holds on all executions entered through a root.
//! 3. **Use.** The surviving facts become extra inequality-graph edges when
//!    the callee's own checks are analyzed.
//!
//! **Closed-world caveat**: a function is a *root* (gets no assumed facts)
//! if it is named `main` or has no call site inside the module. With the
//! extension enabled, only executions entered through roots are covered —
//! calling an assumed function directly with violating arguments is outside
//! the contract. This is why the option defaults to off, keeping the
//! paper-faithful behavior.

use crate::graph::{InequalityGraph, Problem, Vertex};
use crate::solver::DemandProver;
use abcd_ir::{FuncId, Function, InstKind, Module, Type, Value};
use std::collections::HashMap;

/// A fact about a function's parameters, indexed by parameter position.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParamFact {
    /// `param ≥ 0`
    NonNegative {
        /// Position of an integer parameter.
        param: usize,
    },
    /// `param ≤ array.length − 1` (a valid index)
    WithinBounds {
        /// Position of an integer parameter.
        param: usize,
        /// Position of an array parameter.
        array: usize,
    },
    /// `param ≤ array.length` (a valid *exclusive* bound, the common shape
    /// of loop limits: `for (i = 0; i < param; …) a[i]`)
    AtMostLen {
        /// Position of an integer parameter.
        param: usize,
        /// Position of an array parameter.
        array: usize,
    },
    /// `a.length ≤ b.length`
    LenLe {
        /// Position of the shorter array parameter.
        a: usize,
        /// Position of the longer array parameter.
        b: usize,
    },
}

/// The verified facts for every function in a module.
#[derive(Clone, Debug, Default)]
pub struct ModuleFacts {
    facts: HashMap<FuncId, Vec<ParamFact>>,
}

impl ModuleFacts {
    /// The facts verified for `func` (empty for roots).
    pub fn of(&self, func: FuncId) -> &[ParamFact] {
        self.facts.get(&func).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of verified facts.
    pub fn len(&self) -> usize {
        self.facts.values().map(Vec::len).sum()
    }

    /// Whether no facts survived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies the facts of `func_id` as extra edges to a graph built for
    /// that function (Table 1-shaped constraints on parameter vertices).
    pub fn apply(&self, func_id: FuncId, func: &Function, graph: &mut InequalityGraph) {
        apply_facts(self.of(func_id), func, graph);
    }
}

/// Applies a fact slice to a graph (Table 1-shaped constraints on
/// parameter vertices); see [`ModuleFacts::apply`].
pub fn apply_facts(facts: &[ParamFact], func: &Function, graph: &mut InequalityGraph) {
    for fact in facts {
        match (*fact, graph.problem()) {
            (ParamFact::NonNegative { param }, Problem::Lower) => {
                graph.assume_fact(Vertex::Const(0), Vertex::Value(func.param(param)), 0);
            }
            (ParamFact::WithinBounds { param, array }, Problem::Upper) => {
                graph.assume_fact(
                    Vertex::ArrayLen(func.param(array)),
                    Vertex::Value(func.param(param)),
                    -1,
                );
            }
            (ParamFact::AtMostLen { param, array }, Problem::Upper) => {
                graph.assume_fact(
                    Vertex::ArrayLen(func.param(array)),
                    Vertex::Value(func.param(param)),
                    0,
                );
            }
            (ParamFact::LenLe { a, b }, Problem::Upper) => {
                graph.assume_fact(
                    Vertex::ArrayLen(func.param(b)),
                    Vertex::ArrayLen(func.param(a)),
                    0,
                );
            }
            _ => {}
        }
    }
}

/// All candidate facts for a parameter list — the vocabulary both the
/// interprocedural fixpoint and function versioning draw from. Stronger
/// facts precede weaker ones about the same parameters, so greedy
/// minimizers keep the weakest sufficient guard.
pub fn candidate_facts(param_types: &[Type]) -> Vec<ParamFact> {
    let mut c = Vec::new();
    for (i, ti) in param_types.iter().enumerate() {
        if *ti == Type::Int {
            c.push(ParamFact::NonNegative { param: i });
            for (j, tj) in param_types.iter().enumerate() {
                if tj.is_array() {
                    c.push(ParamFact::WithinBounds { param: i, array: j });
                    c.push(ParamFact::AtMostLen { param: i, array: j });
                }
            }
        } else if ti.is_array() {
            for (j, tj) in param_types.iter().enumerate() {
                if i != j && tj.is_array() {
                    c.push(ParamFact::LenLe { a: i, b: j });
                }
            }
        }
    }
    c
}

/// Infers parameter facts for a module whose functions are already in
/// e-SSA form (the driver prepares them first).
pub fn infer_param_facts(module: &Module) -> ModuleFacts {
    // Call sites per callee: (caller, actual arguments).
    let mut call_sites: HashMap<FuncId, Vec<(FuncId, Vec<Value>)>> = HashMap::new();
    for (caller, func) in module.functions() {
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                if let InstKind::Call { func: callee, args } = &func.inst(id).kind {
                    call_sites
                        .entry(*callee)
                        .or_default()
                        .push((caller, args.clone()));
                }
            }
        }
    }

    // Optimistic candidate set for every non-root function.
    let mut facts: HashMap<FuncId, Vec<ParamFact>> = HashMap::new();
    for (id, func) in module.functions() {
        if func.name() == "main" || !call_sites.contains_key(&id) {
            continue; // root: externally callable, assume nothing
        }
        let c = candidate_facts(func.param_types());
        if !c.is_empty() {
            facts.insert(id, c);
        }
    }

    // Fixpoint: drop any fact that fails verification at some call site.
    let current = ModuleFacts { facts };
    let mut current = current;
    loop {
        let mut next = ModuleFacts::default();
        let mut dropped = false;

        // Caller graphs under the *current* assumptions, built once per
        // iteration for every caller that hosts a call site (borrowed, not
        // cloned, by the verification queries below).
        let mut caller_graphs: HashMap<(FuncId, Problem), InequalityGraph> = HashMap::new();
        for sites in call_sites.values() {
            for (caller, _) in sites {
                for problem in [Problem::Upper, Problem::Lower] {
                    caller_graphs.entry((*caller, problem)).or_insert_with(|| {
                        let f = module.function(*caller);
                        let mut g = InequalityGraph::build(f, problem, None);
                        current.apply(*caller, f, &mut g);
                        g
                    });
                }
            }
        }
        let graph_for = |caller: FuncId, problem: Problem| -> &InequalityGraph {
            &caller_graphs[&(caller, problem)]
        };

        for (callee, cand) in &current.facts {
            let sites = call_sites.get(callee).cloned().unwrap_or_default();
            let mut kept = Vec::new();
            'facts: for fact in cand {
                for (caller, args) in &sites {
                    let ok = match *fact {
                        ParamFact::NonNegative { param } => {
                            let g = graph_for(*caller, Problem::Lower);
                            let mut p = DemandProver::new(g, Vertex::Const(0));
                            p.demand_prove(Vertex::Value(args[param]), 0)
                        }
                        ParamFact::WithinBounds { param, array } => {
                            let g = graph_for(*caller, Problem::Upper);
                            let mut p = DemandProver::new(g, Vertex::ArrayLen(args[array]));
                            p.demand_prove(Vertex::Value(args[param]), -1)
                        }
                        ParamFact::AtMostLen { param, array } => {
                            let g = graph_for(*caller, Problem::Upper);
                            let mut p = DemandProver::new(g, Vertex::ArrayLen(args[array]));
                            p.demand_prove(Vertex::Value(args[param]), 0)
                        }
                        ParamFact::LenLe { a, b } => {
                            let g = graph_for(*caller, Problem::Upper);
                            let mut p = DemandProver::new(g, Vertex::ArrayLen(args[b]));
                            p.demand_prove(Vertex::ArrayLen(args[a]), 0)
                        }
                    };
                    if !ok {
                        dropped = true;
                        continue 'facts;
                    }
                }
                kept.push(*fact);
            }
            if !kept.is_empty() {
                next.facts.insert(*callee, kept);
            }
        }

        if !dropped {
            return next;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_frontend::compile;

    fn prepared(src: &str) -> Module {
        let mut m = compile(src).unwrap();
        let ids: Vec<_> = m.functions().map(|(i, _)| i).collect();
        for id in ids {
            let f = m.function_mut(id);
            abcd_ssa::split_critical_edges(f);
            abcd_ssa::promote_locals(f).unwrap();
            abcd_analysis::cleanup(f);
            abcd_ssa::insert_pi_nodes(f);
        }
        m
    }

    #[test]
    fn verified_constant_arguments_survive() {
        let m = prepared(
            "fn get(a: int[], i: int) -> int { return a[i]; }
             fn main() -> int {
                 let a: int[] = new int[8];
                 return get(a, 3) + get(a, 0);
             }",
        );
        let facts = infer_param_facts(&m);
        let get = m.function_by_name("get").unwrap();
        assert!(facts.of(get).contains(&ParamFact::NonNegative { param: 1 }));
        assert!(facts
            .of(get)
            .contains(&ParamFact::WithinBounds { param: 1, array: 0 }));
    }

    #[test]
    fn violating_call_site_kills_fact() {
        let m = prepared(
            "fn get(a: int[], i: int) -> int { return a[i]; }
             fn main(x: int) -> int {
                 let a: int[] = new int[8];
                 return get(a, x);       // x unconstrained
             }",
        );
        let facts = infer_param_facts(&m);
        let get = m.function_by_name("get").unwrap();
        assert!(facts.of(get).is_empty(), "{:?}", facts.of(get));
    }

    #[test]
    fn recursion_keeps_facts_that_recur_soundly() {
        // walk(a, i) recurses with i+1 only under i+1 < a.length, and is
        // entered with 0: both facts survive the recursive site.
        let m = prepared(
            "fn walk(a: int[], i: int) -> int {
                 let v: int = a[i];
                 if (i + 1 < a.length) { return v + walk(a, i + 1); }
                 return v;
             }
             fn main() -> int {
                 let a: int[] = new int[16];
                 if (a.length > 0) { return walk(a, 0); }
                 return 0;
             }",
        );
        let facts = infer_param_facts(&m);
        let walk = m.function_by_name("walk").unwrap();
        assert!(
            facts
                .of(walk)
                .contains(&ParamFact::WithinBounds { param: 1, array: 0 }),
            "{:?}",
            facts.of(walk)
        );
        assert!(facts
            .of(walk)
            .contains(&ParamFact::NonNegative { param: 1 }));
    }

    #[test]
    fn len_relation_between_array_params() {
        let m = prepared(
            "fn copy(dst: int[], src: int[]) {
                 for (let i: int = 0; i < src.length; i = i + 1) { dst[i] = src[i]; }
             }
             fn main() -> int {
                 let a: int[] = new int[8];
                 let b: int[] = new int[8];
                 copy(a, b);
                 return a[0];
             }",
        );
        let facts = infer_param_facts(&m);
        let copy = m.function_by_name("copy").unwrap();
        // len(src) ≤ len(dst): both are 8.
        assert!(
            facts.of(copy).contains(&ParamFact::LenLe { a: 1, b: 0 }),
            "{:?}",
            facts.of(copy)
        );
    }

    #[test]
    fn roots_get_no_facts() {
        let m = prepared(
            "fn helper(a: int[], i: int) -> int { return a[i]; }
             fn main() -> int { return 0; }",
        );
        // helper has no call sites → root-like → no facts.
        let facts = infer_param_facts(&m);
        assert!(facts.is_empty());
    }
}
