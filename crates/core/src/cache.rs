//! Content-addressed analysis cache: replay a function's optimization
//! without re-proving anything.
//!
//! ABCD is built for dynamic compilation, where analysis cost must be
//! amortized across repeated compilations of the same hot code (§1, §5 of
//! the paper). This module provides that amortization layer: a
//! function-level cache keyed by everything that determines the
//! optimizer's output —
//!
//! * the **canonicalized input IR** (via [`abcd_ir::canonicalize`], so the
//!   key is insensitive to arena numbering accidents),
//! * the **options fingerprint** (every [`OptimizerOptions`] knob),
//! * the **interprocedural fact fingerprint** (the verified parameter
//!   facts applied to this function's constraint graphs — when a caller
//!   changes, the callee's facts change and its key changes with them,
//!   which is exactly the transitive invalidation the driver needs),
//! * the **profile-bucket fingerprint** (log₂ buckets of the function's
//!   site/block counts, plus the exact hot/cold partition when a
//!   `hot_threshold` is in force).
//!
//! The cached value is the *canonical printed optimized IR* plus the
//! summary counters needed to reconstruct the [`FunctionReport`]. Replay
//! is therefore a parse, never a re-proof. Because the driver's final
//! pipeline stage canonicalizes, cached text is a `print ∘ parse`
//! fixpoint: warm and cold runs produce byte-identical modules.
//!
//! The profile fingerprint is a deliberate approximation: counts are
//! bucketed so that run-to-run jitter in a stable workload still hits,
//! at the cost of possibly replaying a PRE profitability decision made
//! for a near-identical profile. This can never miscompile — optimized
//! output is semantics-preserving for *any* profile — it only risks a
//! mildly stale cost/benefit call, which is the amortization trade the
//! paper's dynamic-compilation setting asks for.
//!
//! **Failure policy (fail-open).** The disk tier re-verifies everything
//! on load: header shape, payload checksum, key match, and that the
//! cached IR parses, re-verifies, and is a print fixpoint. Any mismatch
//! is reported as [`Incident::CacheCorrupt`](crate::Incident), the entry
//! is deleted, and the function is recompiled cold — cache corruption is
//! an incident, never a miscompile and never a crash.
//!
//! **Crash safety.** Disk persists are write-to-temp → `fsync` → atomic
//! rename (plus a best-effort directory fsync), so a published entry is
//! always complete. A crash between the temp write and the rename leaves
//! only a `*.tmp.*` file, which the startup recovery sweep moves into a
//! `quarantine/` subdirectory (counted in [`CacheStats::recovered`]) —
//! after a `kill -9` mid-write the cache is at worst cold, never wrong.
//! Failed persists roll the temp file back and count as
//! [`CacheStats::write_errors`]; the entry stays in memory only.

use crate::driver::OptimizerOptions;
use crate::faults::{ChaosPlan, ChaosSite};
use crate::interproc::ParamFact;
use crate::report::CheckOutcome;
use abcd_ir::{CheckKind, CheckSite, FuncId};
use abcd_vm::Profile;
use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Magic line prefix of the on-disk entry format.
const DISK_MAGIC: &str = "abcd-cache/1";

/// Process-wide sequence for unique temp-file names: two threads (or two
/// stores of the same key) never collide on a temp path, so one writer's
/// cleanup can never clobber another's in-flight file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

// ---- hashing ------------------------------------------------------------

/// FNV-1a 64-bit — dependency-free, stable across platforms and runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(h: u64, v: u64) -> u64 {
    // Feed the value through the same FNV stream byte by byte.
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A content-addressed cache key (see the module docs for what it hashes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey(u64);

impl CacheKey {
    /// The key as a fixed-width hex string (used for disk file names).
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.hex())
    }
}

/// Derives the cache key for one function from its four components.
pub fn cache_key(canonical_ir: &str, options_fp: u64, facts_fp: u64, profile_fp: u64) -> CacheKey {
    let h = fnv1a64(canonical_ir.as_bytes());
    CacheKey(mix(mix(mix(h, options_fp), facts_fp), profile_fp))
}

/// Fingerprints every [`OptimizerOptions`] knob. All knobs participate —
/// even ones (like `isolate_panics`) that cannot change a healthy run's
/// output — because a byte of hash is cheaper than an argument about
/// which knob is observable.
pub fn options_fingerprint(o: &OptimizerOptions) -> u64 {
    let text = format!(
        "upper={} lower={} cleanup={} pre={} gvn_hook={} merge_checks={} \
         classify_local={} hot_threshold={:?} interprocedural={} \
         fuel_per_query={:?} fuel_per_function={:?} verify_ir={} validate={} \
         isolate_panics={} prover={}",
        o.upper,
        o.lower,
        o.cleanup,
        o.pre,
        o.gvn_hook,
        o.merge_checks,
        o.classify_local,
        o.hot_threshold,
        o.interprocedural,
        o.fuel_per_query,
        o.fuel_per_function,
        o.verify_ir,
        o.validate,
        o.isolate_panics,
        o.prover.name(),
    );
    fnv1a64(text.as_bytes())
}

/// Fingerprints the interprocedural parameter facts in force for one
/// function (the facts *about its own parameters*, inferred from every
/// call site). Editing a caller that changes what can be assumed about a
/// callee's parameters changes this fingerprint and hence the callee's
/// key — transitive invalidation without a dependency graph.
pub fn facts_fingerprint(facts: &[ParamFact]) -> u64 {
    let mut lines: Vec<String> = facts.iter().map(|f| format!("{f:?}")).collect();
    lines.sort();
    fnv1a64(lines.join("\n").as_bytes())
}

/// Log₂ bucket of a dynamic count (0 stays 0, so the cold/warm boundary
/// is exact).
fn bucket(n: u64) -> u32 {
    if n == 0 {
        0
    } else {
        64 - n.leading_zeros()
    }
}

/// Fingerprints the slice of `profile` relevant to `func`: bucketed site
/// and block counts, plus — when `hot_threshold` is set — the exact
/// hot/cold partition of the function's check sites (the work-list
/// itself must never be stale).
pub fn profile_fingerprint(
    profile: Option<&Profile>,
    func: FuncId,
    hot_threshold: Option<u64>,
) -> u64 {
    let Some(p) = profile else {
        return fnv1a64(b"no-profile");
    };
    let mut sites: Vec<(usize, u32, bool)> = p
        .site_entries()
        .filter(|((f, _), _)| *f == func)
        .map(|((_, site), n)| {
            let hot = hot_threshold.is_some_and(|t| n >= t);
            (site.index(), bucket(n), hot)
        })
        .collect();
    sites.sort_unstable();
    let mut blocks: Vec<(usize, u32)> = p
        .block_entries()
        .filter(|((f, _), _)| *f == func)
        .map(|((_, b), n)| (b.index(), bucket(n)))
        .collect();
    blocks.sort_unstable();
    let mut h = fnv1a64(b"profile");
    h = mix(h, hot_threshold.map_or(u64::MAX, |t| t));
    for (s, b, hot) in sites {
        h = mix(h, s as u64);
        h = mix(h, b as u64);
        h = mix(h, hot as u64);
    }
    h = mix(h, 0xb10c);
    for (b, n) in blocks {
        h = mix(h, b as u64);
        h = mix(h, n as u64);
    }
    h
}

// ---- entries ------------------------------------------------------------

/// One cached optimization result: the canonical optimized IR plus the
/// summary counters needed to reconstruct the function's report.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Canonical printed optimized IR (a `print ∘ parse` fixpoint).
    pub ir_text: String,
    /// Static checks before optimization.
    pub checks_total: usize,
    /// Per-check verdicts, in the order they were recorded.
    pub outcomes: Vec<(CheckSite, CheckKind, CheckOutcome)>,
    /// Solver steps the original (cold) run spent.
    pub steps: u64,
    /// PRE-pass solver steps of the original run.
    pub pre_steps: u64,
    /// Compensating checks PRE inserted.
    pub spec_checks_inserted: usize,
    /// Lower+upper pairs merged (§7.2).
    pub checks_merged: usize,
    /// Eliminations re-proven by translation validation in the cold run.
    pub checks_validated: usize,
}

impl CacheEntry {
    /// Approximate heap footprint, used against the byte budget.
    pub fn byte_size(&self) -> usize {
        self.ir_text.len() + self.outcomes.len() * 24 + 96
    }

    /// Serializes the summary section (everything but `ir_text`) as the
    /// line-oriented format stored on disk.
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            out,
            "counts {} {} {} {} {} {}",
            self.checks_total,
            self.steps,
            self.pre_steps,
            self.spec_checks_inserted,
            self.checks_merged,
            self.checks_validated,
        );
        for (site, kind, outcome) in &self.outcomes {
            let _ = write!(out, "outcome {} {} ", site.index(), kind_str(*kind));
            match outcome {
                CheckOutcome::RemovedFully {
                    local,
                    via_congruence,
                } => {
                    let _ = writeln!(out, "removed {} {}", *local as u8, *via_congruence as u8);
                }
                CheckOutcome::Hoisted { insertions } => {
                    let _ = writeln!(out, "hoisted {insertions}");
                }
                CheckOutcome::Kept => {
                    let _ = writeln!(out, "kept");
                }
                CheckOutcome::Skipped => {
                    let _ = writeln!(out, "skipped");
                }
                CheckOutcome::Reinstated => {
                    let _ = writeln!(out, "reinstated");
                }
            }
        }
        out
    }

    /// Parses a summary section back; strict — any malformed line is a
    /// corruption verdict.
    pub fn parse_summary(ir_text: String, summary: &str) -> Result<CacheEntry, String> {
        let mut lines = summary.lines();
        let counts = lines.next().ok_or("empty summary")?;
        let mut it = counts.split_whitespace();
        if it.next() != Some("counts") {
            return Err("summary missing counts line".to_string());
        }
        let mut next_num = |what: &str| -> Result<u64, String> {
            it.next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad counts field `{what}`"))
        };
        let checks_total = next_num("checks_total")? as usize;
        let steps = next_num("steps")?;
        let pre_steps = next_num("pre_steps")?;
        let spec_checks_inserted = next_num("spec_checks_inserted")? as usize;
        let checks_merged = next_num("checks_merged")? as usize;
        let checks_validated = next_num("checks_validated")? as usize;
        let mut outcomes = Vec::new();
        for line in lines {
            let mut f = line.split_whitespace();
            if f.next() != Some("outcome") {
                return Err(format!("unexpected summary line `{line}`"));
            }
            let site: usize = f
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad site in `{line}`"))?;
            let kind = match f.next() {
                Some("upper") => CheckKind::Upper,
                Some("lower") => CheckKind::Lower,
                Some("both") => CheckKind::Both,
                _ => return Err(format!("bad check kind in `{line}`")),
            };
            let outcome = match f.next() {
                Some("removed") => {
                    let local = f.next() == Some("1");
                    let via_congruence = f.next() == Some("1");
                    CheckOutcome::RemovedFully {
                        local,
                        via_congruence,
                    }
                }
                Some("hoisted") => CheckOutcome::Hoisted {
                    insertions: f
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("bad insertions in `{line}`"))?,
                },
                Some("kept") => CheckOutcome::Kept,
                Some("skipped") => CheckOutcome::Skipped,
                Some("reinstated") => CheckOutcome::Reinstated,
                _ => return Err(format!("bad outcome in `{line}`")),
            };
            outcomes.push((CheckSite::new(site), kind, outcome));
        }
        Ok(CacheEntry {
            ir_text,
            checks_total,
            outcomes,
            steps,
            pre_steps,
            spec_checks_inserted,
            checks_merged,
            checks_validated,
        })
    }
}

fn kind_str(kind: CheckKind) -> &'static str {
    match kind {
        CheckKind::Upper => "upper",
        CheckKind::Lower => "lower",
        CheckKind::Both => "both",
    }
}

// ---- the cache ----------------------------------------------------------

/// Counters exposed in `abcd-metrics/6` and the server `stats` command.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident in memory.
    pub entries: usize,
    /// Bytes currently resident in memory.
    pub bytes: usize,
    /// Configured in-memory byte budget.
    pub budget_bytes: usize,
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing (or only a corrupt disk entry).
    pub misses: u64,
    /// Entries written (memory, and disk when persistent).
    pub stores: u64,
    /// Entries evicted from memory by the byte budget.
    pub evictions: u64,
    /// Disk entries rejected by re-verification and deleted.
    pub corrupt: u64,
    /// Hits served by re-reading and re-verifying a disk entry.
    pub disk_hits: u64,
    /// Partial temp files quarantined by the startup recovery sweep
    /// (debris of a crash mid-persist; see the module docs).
    pub recovered: u64,
    /// Disk persists that failed and were rolled back (the entry stayed
    /// in-memory only).
    pub write_errors: u64,
}

/// One lookup's verdict.
#[derive(Debug)]
pub enum Lookup {
    /// A verified entry; replay it.
    Hit(Box<CacheEntry>),
    /// Nothing cached under this key.
    Miss,
    /// A disk entry existed but failed re-verification; it has been
    /// deleted and the function must be recompiled cold. The string is
    /// the human-readable reason, surfaced as an incident.
    Corrupt(String),
}

struct Slot {
    entry: CacheEntry,
    size: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<u64, Slot>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    stores: u64,
    evictions: u64,
    corrupt: u64,
    disk_hits: u64,
    write_errors: u64,
}

/// The function-level analysis cache: in-memory LRU under a byte budget,
/// optionally backed by an on-disk tier (`--cache-dir`) whose entries are
/// re-verified on every load. Shared across driver worker threads (and
/// server requests) behind **lock stripes**: keys hash onto one of N
/// independent `Mutex<Inner>` maps, so N shards' workers probing disjoint
/// functions never serialize on one lock. The default is a single stripe
/// (exactly the old one-mutex behavior, including global LRU order);
/// sharded servers call [`AnalysisCache::with_stripes`] to split the
/// budget into per-stripe LRU domains.
pub struct AnalysisCache {
    budget: usize,
    dir: Option<PathBuf>,
    /// Temp files quarantined by the startup recovery sweep (fixed at
    /// construction — recovery only runs when the cache is opened).
    recovered: u64,
    /// Armed chaos plan driving disk-fault injection, if any.
    chaos: Mutex<Option<Arc<ChaosPlan>>>,
    stripes: Vec<Mutex<Inner>>,
}

impl fmt::Debug for AnalysisCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisCache")
            .field("budget", &self.budget)
            .field("dir", &self.dir)
            .finish_non_exhaustive()
    }
}

/// Default in-memory byte budget (64 MiB).
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

impl AnalysisCache {
    /// An in-memory-only cache with the given byte budget.
    pub fn in_memory(budget_bytes: usize) -> AnalysisCache {
        AnalysisCache {
            budget: budget_bytes,
            dir: None,
            recovered: 0,
            chaos: Mutex::new(None),
            stripes: vec![Mutex::new(Inner::default())],
        }
    }

    /// Splits the in-memory tier into `n` lock stripes (clamped to ≥ 1).
    /// Keys hash onto a stripe; each stripe runs its own LRU over an equal
    /// share of the byte budget. With `n = 1` this is a no-op. Stripes are
    /// a concurrency knob, not a semantic one: hits, misses, and disk-tier
    /// behavior are identical for any `n` — only eviction *order* under
    /// budget pressure can differ, because LRU age is tracked per stripe.
    pub fn with_stripes(mut self, n: usize) -> AnalysisCache {
        let n = n.max(1);
        self.stripes = (0..n).map(|_| Mutex::new(Inner::default())).collect();
        self
    }

    /// A cache persisted under `dir` (created if absent) with the given
    /// in-memory byte budget. Opening the directory runs the crash-recovery
    /// sweep: any `*.tmp.*` debris left by a writer that died mid-persist is
    /// moved into a `quarantine/` subdirectory and counted in
    /// [`CacheStats::recovered`] — published entries are never touched.
    pub fn with_dir(
        dir: impl Into<PathBuf>,
        budget_bytes: usize,
    ) -> std::io::Result<AnalysisCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let recovered = recovery_sweep(&dir);
        Ok(AnalysisCache {
            budget: budget_bytes,
            dir: Some(dir),
            recovered,
            chaos: Mutex::new(None),
            stripes: vec![Mutex::new(Inner::default())],
        })
    }

    /// Arms a chaos plan for the disk tier: subsequent persists consult it
    /// for short-write / corrupt-on-write / disk-full injections. Lookups
    /// are untouched — the injected damage is caught by the existing
    /// re-verification machinery, which is the point.
    pub fn set_chaos(&self, plan: Arc<ChaosPlan>) {
        *self.chaos.lock().expect("chaos lock") = Some(plan);
    }

    /// The on-disk tier's directory, when persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The stripe holding `key` (stable: pure function of the key bits).
    fn stripe(&self, key: CacheKey) -> &Mutex<Inner> {
        &self.stripes[(key.0 as usize) % self.stripes.len()]
    }

    /// Each stripe's share of the in-memory byte budget.
    fn stripe_budget(&self) -> usize {
        self.budget / self.stripes.len()
    }

    /// How many lock stripes back the in-memory tier.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Snapshot of the counters, aggregated across stripes.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats {
            budget_bytes: self.budget,
            recovered: self.recovered,
            ..CacheStats::default()
        };
        for stripe in &self.stripes {
            let inner = stripe.lock().expect("cache lock");
            s.entries += inner.map.len();
            s.bytes += inner.bytes;
            s.hits += inner.hits;
            s.misses += inner.misses;
            s.stores += inner.stores;
            s.evictions += inner.evictions;
            s.corrupt += inner.corrupt;
            s.disk_hits += inner.disk_hits;
            s.write_errors += inner.write_errors;
        }
        s
    }

    /// Looks `key` up: memory first, then the disk tier (with full
    /// re-verification). Never panics and never returns unverified data.
    pub fn lookup(&self, key: CacheKey) -> Lookup {
        {
            let mut inner = self.stripe(key).lock().expect("cache lock");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(&key.0) {
                slot.last_used = tick;
                let entry = slot.entry.clone();
                inner.hits += 1;
                return Lookup::Hit(Box::new(entry));
            }
        }
        match self.load_disk(key) {
            None => {
                self.stripe(key).lock().expect("cache lock").misses += 1;
                Lookup::Miss
            }
            Some(Ok(entry)) => {
                {
                    let mut inner = self.stripe(key).lock().expect("cache lock");
                    inner.hits += 1;
                    inner.disk_hits += 1;
                }
                self.insert_memory(key, entry.clone());
                Lookup::Hit(Box::new(entry))
            }
            Some(Err(reason)) => {
                {
                    let mut inner = self.stripe(key).lock().expect("cache lock");
                    inner.misses += 1;
                    inner.corrupt += 1;
                }
                // Quarantine: a corrupt entry must not be served twice.
                if let Some(path) = self.disk_path(key) {
                    let _ = std::fs::remove_file(path);
                }
                Lookup::Corrupt(reason)
            }
        }
    }

    /// Stores `entry` under `key` in memory (evicting LRU entries past
    /// the byte budget) and on disk when persistent.
    pub fn insert(&self, key: CacheKey, entry: CacheEntry) {
        self.store_disk(key, &entry);
        self.insert_memory(key, entry);
        self.stripe(key).lock().expect("cache lock").stores += 1;
    }

    fn insert_memory(&self, key: CacheKey, entry: CacheEntry) {
        let size = entry.byte_size();
        let budget = self.stripe_budget();
        let mut inner = self.stripe(key).lock().expect("cache lock");
        if size > budget {
            // Oversized for the memory tier entirely; the disk tier (if
            // any) still has it.
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(
            key.0,
            Slot {
                entry,
                size,
                last_used: tick,
            },
        ) {
            inner.bytes -= old.size;
        }
        inner.bytes += size;
        while inner.bytes > budget {
            let Some((&victim, _)) = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key.0)
                .min_by_key(|(_, s)| s.last_used)
            else {
                break;
            };
            let slot = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= slot.size;
            inner.evictions += 1;
        }
    }

    fn disk_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.abcdc", key.hex())))
    }

    /// Reads and fully re-verifies a disk entry. `None`: no file.
    /// `Some(Err)`: the file exists but failed verification.
    fn load_disk(&self, key: CacheKey) -> Option<Result<CacheEntry, String>> {
        let path = self.disk_path(key)?;
        let bytes = std::fs::read(&path).ok()?;
        Some(parse_disk_entry(key, &bytes))
    }

    fn store_disk(&self, key: CacheKey, entry: &CacheEntry) {
        let Some(path) = self.disk_path(key) else {
            return;
        };
        let summary = entry.summary_text();
        let payload_checksum = {
            let mut h = fnv1a64(entry.ir_text.as_bytes());
            h = mix(h, fnv1a64(summary.as_bytes()));
            h
        };
        let mut buf = Vec::with_capacity(entry.ir_text.len() + summary.len() + 80);
        let _ = writeln!(
            buf,
            "{DISK_MAGIC} {} {:016x} {} {}",
            key.hex(),
            payload_checksum,
            entry.ir_text.len(),
            summary.len(),
        );
        buf.extend_from_slice(entry.ir_text.as_bytes());
        buf.extend_from_slice(summary.as_bytes());
        // Unique temp name per store: pid guards against another process
        // on the same dir, the sequence against our own threads.
        let tmp = path.with_extension(format!(
            "tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));

        let chaos = self.chaos.lock().expect("chaos lock").clone();
        if let Some(plan) = &chaos {
            if plan.decide(ChaosSite::DiskFull) {
                // ENOSPC: the persist fails cleanly, nothing is left behind
                // and the published entry (if any) is untouched.
                self.stripe(key).lock().expect("cache lock").write_errors += 1;
                return;
            }
            if plan.decide(ChaosSite::DiskShortWrite) {
                // The exact on-disk state of a `kill -9` mid-write: a
                // truncated temp file that never got renamed. Left in
                // place deliberately — the next startup's recovery sweep
                // must quarantine it.
                let _ = std::fs::write(&tmp, &buf[..buf.len() / 2]);
                self.stripe(key).lock().expect("cache lock").write_errors += 1;
                return;
            }
        }

        // Atomic, durable publish: write + fsync the temp file, rename it
        // over the destination, then fsync the directory so the rename
        // itself survives a crash. A concurrent reader sees the old entry
        // or the new one, never a torn write. Failures roll the temp file
        // back — a cache that cannot persist is merely cold, not broken.
        if persist_atomically(&tmp, &path, &buf).is_err() {
            let _ = std::fs::remove_file(&tmp);
            self.stripe(key).lock().expect("cache lock").write_errors += 1;
            return;
        }

        if let Some(plan) = &chaos {
            if let Some(seed) = plan.decide_seeded(ChaosSite::DiskCorrupt) {
                // Rot a byte of the *published* entry. The checksum (or,
                // for header damage, the shape check) must catch it on the
                // next disk lookup and quarantine the entry.
                if let Ok(mut bytes) = std::fs::read(&path) {
                    if !bytes.is_empty() {
                        let i = (seed as usize) % bytes.len();
                        bytes[i] ^= 0x01;
                        let _ = std::fs::write(&path, &bytes);
                    }
                }
            }
        }
    }
}

/// Writes `buf` to `tmp`, fsyncs it, renames it over `dst`, and fsyncs the
/// parent directory (best effort on platforms where directories cannot be
/// opened). Any step failing aborts the publish.
fn persist_atomically(tmp: &Path, dst: &Path, buf: &[u8]) -> std::io::Result<()> {
    {
        let mut f = std::fs::File::create(tmp)?;
        f.write_all(buf)?;
        f.sync_all()?;
    }
    std::fs::rename(tmp, dst)?;
    if let Some(parent) = dst.parent() {
        if let Ok(d) = std::fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Moves every `*.tmp.*` leftover in `dir` into `dir/quarantine/`,
/// returning how many were recovered. Runs once when a persistent cache is
/// opened. Quarantine (rather than delete) keeps the debris inspectable —
/// an operator can diff a partial entry against the recompiled one.
fn recovery_sweep(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut recovered = 0u64;
    let quarantine = dir.join("quarantine");
    for entry in entries.flatten() {
        let path = entry.path();
        // Published entries are `<hex>.abcdc`; anything with `.tmp` in its
        // name is an unfinished persist.
        let is_tmp = path.is_file()
            && path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp"));
        if !is_tmp {
            continue;
        }
        let _ = std::fs::create_dir_all(&quarantine);
        let dst = quarantine.join(entry.file_name());
        // Quarantine keeps the debris inspectable; if even that fails,
        // delete — losing the forensic copy beats re-sweeping it forever.
        if std::fs::rename(&path, &dst).is_ok() || std::fs::remove_file(&path).is_ok() {
            recovered += 1;
        }
    }
    recovered
}

/// Parses and re-verifies one on-disk entry. Every failure mode returns a
/// reason string; the caller turns it into an incident.
fn parse_disk_entry(key: CacheKey, bytes: &[u8]) -> Result<CacheEntry, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "entry is not UTF-8".to_string())?;
    let (header, payload) = text
        .split_once('\n')
        .ok_or_else(|| "missing header line".to_string())?;
    let fields: Vec<&str> = header.split(' ').collect();
    if fields.len() != 5 || fields[0] != DISK_MAGIC {
        return Err(format!("bad header `{header}`"));
    }
    if fields[1] != key.hex() {
        return Err(format!(
            "key mismatch: file says {}, expected {key}",
            fields[1]
        ));
    }
    let checksum =
        u64::from_str_radix(fields[2], 16).map_err(|_| "bad checksum field".to_string())?;
    let ir_len: usize = fields[3].parse().map_err(|_| "bad ir length".to_string())?;
    let sum_len: usize = fields[4]
        .parse()
        .map_err(|_| "bad summary length".to_string())?;
    if payload.len() != ir_len + sum_len || !payload.is_char_boundary(ir_len) {
        return Err(format!(
            "length mismatch: payload {} vs declared {}+{}",
            payload.len(),
            ir_len,
            sum_len
        ));
    }
    let (ir_text, summary) = payload.split_at(ir_len);
    let actual = mix(fnv1a64(ir_text.as_bytes()), fnv1a64(summary.as_bytes()));
    if actual != checksum {
        return Err(format!(
            "checksum mismatch: {actual:016x} vs {checksum:016x}"
        ));
    }
    // Semantic re-verification: the IR must parse, pass the verifier, and
    // be the canonical print fixpoint it was stored as.
    let func = abcd_ir::parse_function_text(ir_text)
        .map_err(|e| format!("cached IR does not parse: {e}"))?;
    abcd_ir::verify_function(&func, None)
        .map_err(|e| format!("cached IR fails verification: {e}"))?;
    if func.to_string() != ir_text.trim_end() {
        return Err("cached IR is not a print fixpoint".to_string());
    }
    CacheEntry::parse_summary(ir_text.to_string(), summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ir: &str) -> CacheEntry {
        CacheEntry {
            ir_text: ir.to_string(),
            checks_total: 2,
            outcomes: vec![
                (
                    CheckSite::new(0),
                    CheckKind::Upper,
                    CheckOutcome::RemovedFully {
                        local: true,
                        via_congruence: false,
                    },
                ),
                (CheckSite::new(1), CheckKind::Lower, CheckOutcome::Kept),
            ],
            steps: 7,
            pre_steps: 3,
            spec_checks_inserted: 1,
            checks_merged: 0,
            checks_validated: 1,
        }
    }

    const FUNC: &str = "\
func @f(v0: int) -> int {
bb0:
    v1: int = add v0, v0
    ret v1
}";

    #[test]
    fn summary_round_trips() {
        let e = entry(FUNC);
        let text = e.summary_text();
        let parsed = CacheEntry::parse_summary(e.ir_text.clone(), &text).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn summary_rejects_garbage() {
        assert!(CacheEntry::parse_summary(String::new(), "").is_err());
        assert!(CacheEntry::parse_summary(String::new(), "counts 1 2").is_err());
        assert!(CacheEntry::parse_summary(
            String::new(),
            "counts 1 2 3 4 5 6\noutcome x upper kept"
        )
        .is_err());
    }

    #[test]
    fn memory_hit_and_miss() {
        let cache = AnalysisCache::in_memory(1 << 20);
        let key = cache_key("text", 1, 2, 3);
        assert!(matches!(cache.lookup(key), Lookup::Miss));
        cache.insert(key, entry(FUNC));
        match cache.lookup(key) {
            Lookup::Hit(e) => assert_eq!(e.ir_text, FUNC),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.stores), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_under_budget() {
        let one = entry(FUNC).byte_size();
        let cache = AnalysisCache::in_memory(2 * one + one / 2);
        let keys: Vec<CacheKey> = (0..3).map(|i| cache_key("t", i, 0, 0)).collect();
        cache.insert(keys[0], entry(FUNC));
        cache.insert(keys[1], entry(FUNC));
        // Touch key 0 so key 1 is the LRU victim.
        assert!(matches!(cache.lookup(keys[0]), Lookup::Hit(_)));
        cache.insert(keys[2], entry(FUNC));
        assert!(matches!(cache.lookup(keys[0]), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(keys[1]), Lookup::Miss));
        assert!(matches!(cache.lookup(keys[2]), Lookup::Hit(_)));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= cache.stats().budget_bytes);
    }

    #[test]
    fn disk_round_trip_and_corruption() {
        let dir = std::env::temp_dir().join(format!("abcd-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        let key = cache_key(FUNC, 9, 9, 9);
        cache.insert(key, entry(FUNC));

        // A fresh cache over the same dir serves the entry from disk.
        let cold = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        match cold.lookup(key) {
            Lookup::Hit(e) => assert_eq!(*e, entry(FUNC)),
            other => panic!("expected disk hit, got {other:?}"),
        }
        assert_eq!(cold.stats().disk_hits, 1);

        // Flip a payload byte: the checksum must catch it, the entry must
        // be deleted, and the next lookup is a clean miss.
        let path = dir.join(format!("{}.abcdc", key.hex()));
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x20;
        std::fs::write(&path, &bytes).unwrap();
        let fresh = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        match fresh.lookup(key) {
            Lookup::Corrupt(reason) => assert!(reason.contains("mismatch"), "{reason}"),
            other => panic!("expected corrupt, got {other:?}"),
        }
        assert!(!path.exists(), "corrupt entry must be quarantined");
        assert!(matches!(fresh.lookup(key), Lookup::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_sweep_quarantines_partial_writes() {
        let dir = std::env::temp_dir().join(format!("abcd-cache-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
            cache.insert(cache_key(FUNC, 1, 2, 3), entry(FUNC));
        }
        // Manufacture the aftermath of a kill -9 mid-write: a truncated
        // temp file that never got renamed.
        let debris = dir.join("deadbeefdeadbeef.tmp.12345.0");
        std::fs::write(&debris, b"abcd-cache/1 dead").unwrap();
        let reopened = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        assert_eq!(reopened.stats().recovered, 1);
        assert!(!debris.exists(), "debris must leave the cache dir");
        assert!(
            dir.join("quarantine")
                .join("deadbeefdeadbeef.tmp.12345.0")
                .exists(),
            "debris is quarantined, not destroyed"
        );
        // The published entry survived the sweep and still verifies.
        match reopened.lookup(cache_key(FUNC, 1, 2, 3)) {
            Lookup::Hit(e) => assert_eq!(e.ir_text, FUNC),
            other => panic!("expected disk hit after sweep, got {other:?}"),
        }
        // A third open finds nothing left to recover.
        assert_eq!(
            AnalysisCache::with_dir(&dir, 1 << 20)
                .unwrap()
                .stats()
                .recovered,
            0
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_short_write_leaves_recoverable_debris_and_no_entry() {
        let dir = std::env::temp_dir().join(format!("abcd-cache-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        cache.set_chaos(Arc::new(
            ChaosPlan::parse("seed:1,disk_short:1000").unwrap(),
        ));
        let key = cache_key(FUNC, 4, 5, 6);
        cache.insert(key, entry(FUNC));
        assert_eq!(cache.stats().write_errors, 1);
        // No published entry — only temp debris a reopen must quarantine.
        assert!(!dir.join(format!("{}.abcdc", key.hex())).exists());
        let reopened = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        assert_eq!(reopened.stats().recovered, 1);
        assert!(matches!(reopened.lookup(key), Lookup::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_disk_full_fails_persist_cleanly() {
        let dir = std::env::temp_dir().join(format!("abcd-cache-full-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        cache.set_chaos(Arc::new(ChaosPlan::parse("seed:1,disk_full:1000").unwrap()));
        let key = cache_key(FUNC, 7, 8, 9);
        cache.insert(key, entry(FUNC));
        assert_eq!(cache.stats().write_errors, 1);
        // In-memory tier still serves it; disk has nothing at all.
        assert!(matches!(cache.lookup(key), Lookup::Hit(_)));
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn chaos_corrupt_on_write_is_caught_by_reverification() {
        let dir = std::env::temp_dir().join(format!("abcd-cache-rot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        cache.set_chaos(Arc::new(
            ChaosPlan::parse("seed:2,disk_corrupt:1000").unwrap(),
        ));
        let key = cache_key(FUNC, 10, 11, 12);
        cache.insert(key, entry(FUNC));
        // The rotted entry must never be served: a cold cache rejects and
        // quarantines it, then recompilation would repopulate.
        let cold = AnalysisCache::with_dir(&dir, 1 << 20).unwrap();
        match cold.lookup(key) {
            Lookup::Corrupt(reason) => assert!(!reason.is_empty()),
            other => panic!("expected corrupt verdict, got {other:?}"),
        }
        assert!(matches!(cold.lookup(key), Lookup::Miss));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprints_separate_inputs() {
        let o1 = OptimizerOptions::default();
        let o2 = OptimizerOptions {
            pre: false,
            ..OptimizerOptions::default()
        };
        assert_ne!(options_fingerprint(&o1), options_fingerprint(&o2));

        let f = FuncId::new(0);
        let mut p1 = Profile::new();
        p1.add_site_count(f, CheckSite::new(0), 100);
        let mut p2 = Profile::new();
        p2.add_site_count(f, CheckSite::new(0), 1);
        // Different buckets → different fingerprints.
        assert_ne!(
            profile_fingerprint(Some(&p1), f, None),
            profile_fingerprint(Some(&p2), f, None)
        );
        // Same bucket (100 vs 101) → same fingerprint (amortization).
        let mut p3 = Profile::new();
        p3.add_site_count(f, CheckSite::new(0), 101);
        assert_eq!(
            profile_fingerprint(Some(&p1), f, None),
            profile_fingerprint(Some(&p3), f, None)
        );
        // But a threshold crossing always invalidates.
        assert_ne!(
            profile_fingerprint(Some(&p1), f, Some(101)),
            profile_fingerprint(Some(&p3), f, Some(101))
        );
        assert_ne!(
            profile_fingerprint(None, f, None),
            profile_fingerprint(Some(&p1), f, None)
        );
    }
}
