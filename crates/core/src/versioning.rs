//! Optional extension: **function versioning** — code duplication guarded by
//! runtime tests, the technique the paper lists as deliberately out of scope
//! ("We do not perform any code duplication, such as generation of multiple
//! versions of a loop or partitioning a loop iteration space into safe and
//! unsafe regions [MMS98]").
//!
//! For a function whose remaining checks would become provable under
//! parameter facts (the same `p ≥ 0` / `p ≤ A.length − 1` /
//! `A.length ≤ B.length` candidates as [`crate::interproc`]), we emit:
//!
//! * `f$fast` — a clone with those checks **deleted**,
//! * `f$slow` — the original body, untouched,
//! * and replace `f` itself with a **dispatcher** that evaluates the facts
//!   on the actual arguments at run time and calls the matching version.
//!
//! Unlike the interprocedural extension this is **unconditionally sound** —
//! no closed-world assumption: the guard is executed, not assumed. The cost
//! is code growth (~2× per versioned function) and one guard evaluation per
//! call, which is why the driver only versions functions where at least one
//! check becomes removable, and (when a profile is available) only hot ones.
//!
//! The facts guarding the fast path are minimized greedily, so a typical
//! dispatcher tests one or two comparisons (e.g. `n <= a.length`), exactly
//! the guard [MMS98]-style loop versioning would synthesize.

use crate::graph::{InequalityGraph, Problem, Vertex};
use crate::interproc::{apply_facts, ParamFact};
use crate::solver::DemandProver;
use abcd_ir::{
    Block, CheckKind, CmpOp, FuncId, Function, FunctionBuilder, InstId, InstKind, Module, Type,
    Value,
};
use abcd_vm::Profile;

/// Statistics from [`version_functions`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VersioningReport {
    /// `(function name, guard facts, checks removed in the fast version)`.
    pub versioned: Vec<(String, Vec<ParamFact>, usize)>,
}

impl VersioningReport {
    /// Number of functions versioned.
    pub fn count(&self) -> usize {
        self.versioned.len()
    }

    /// Total checks deleted across all fast versions.
    pub fn checks_removed_fast(&self) -> usize {
        self.versioned.iter().map(|(_, _, n)| n).sum()
    }
}

/// Versions every function whose residual checks become provable under
/// runtime-verifiable parameter facts.
///
/// Must run **after** the regular ABCD pass: it only considers checks that
/// survived it, and expects functions in e-SSA form. `min_calls` (with a
/// profile) skips cold functions.
pub fn version_functions(
    module: &mut Module,
    profile: Option<&Profile>,
    min_calls: u64,
) -> VersioningReport {
    let mut report = VersioningReport::default();
    let ids: Vec<FuncId> = module.functions().map(|(id, _)| id).collect();

    for id in ids {
        let func = module.function(id);
        if func.name() == "main" || func.name().ends_with("$fast") || func.name().ends_with("$slow")
        {
            continue;
        }
        if let (Some(p), true) = (profile, min_calls > 0) {
            // Approximate call heat by the entry block count.
            if p.block_count(id, func.entry()) < min_calls {
                continue;
            }
        }
        let Some((facts, removable)) = plan_for(func) else {
            continue;
        };

        // ---- Transform: f -> dispatcher; body moves to f$slow / f$fast.
        let base = func.name().to_string();
        let mut fast = func.clone();
        fast.set_name(format!("{base}$fast"));
        for (b, check) in &removable {
            fast.remove_inst(*b, *check);
        }
        let mut slow = func.clone();
        slow.set_name(format!("{base}$slow"));

        let fast_id = FuncId::new(module.function_count());
        let slow_id = FuncId::new(module.function_count() + 1);
        let dispatcher = build_dispatcher(func, &facts, fast_id, slow_id);
        module.replace_function(id, dispatcher);
        module.add_function(fast);
        module.add_function(slow);

        report.versioned.push((base, facts, removable.len()));
    }
    debug_assert_eq!(abcd_ir::verify_module(module).map_err(|e| e.0), Ok(()));
    report
}

/// A versioning plan: the (greedily minimized) guard facts and the check
/// instructions they make removable.
type Plan = (Vec<ParamFact>, Vec<(Block, InstId)>);

/// Decides whether versioning `func` pays.
fn plan_for(func: &Function) -> Option<Plan> {
    // Remaining checks.
    let mut checks: Vec<(Block, InstId, Value, Value, CheckKind)> = Vec::new();
    for b in func.blocks() {
        for &id in func.block(b).insts() {
            if let InstKind::BoundsCheck {
                array, index, kind, ..
            } = func.inst(id).kind
            {
                checks.push((b, id, array, index, kind));
            }
        }
    }
    if checks.is_empty() {
        return None;
    }

    // Candidate facts over the parameters (shared vocabulary with the
    // interprocedural extension; stronger facts first so minimization
    // prefers the weaker guard).
    let candidates = crate::interproc::candidate_facts(func.param_types());
    if candidates.is_empty() {
        return None;
    }

    let provable_under = |facts: &[ParamFact]| -> Vec<(Block, InstId)> {
        let mut upper = InequalityGraph::build(func, Problem::Upper, None);
        let mut lower = InequalityGraph::build(func, Problem::Lower, None);
        apply_facts(facts, func, &mut upper);
        apply_facts(facts, func, &mut lower);
        let mut out = Vec::new();
        for (b, id, array, index, kind) in &checks {
            let ok = match kind {
                CheckKind::Upper => DemandProver::new(&upper, Vertex::ArrayLen(*array))
                    .demand_prove(Vertex::Value(*index), -1),
                CheckKind::Lower => DemandProver::new(&lower, Vertex::Const(0))
                    .demand_prove(Vertex::Value(*index), 0),
                CheckKind::Both => {
                    DemandProver::new(&upper, Vertex::ArrayLen(*array))
                        .demand_prove(Vertex::Value(*index), -1)
                        && DemandProver::new(&lower, Vertex::Const(0))
                            .demand_prove(Vertex::Value(*index), 0)
                }
            };
            if ok {
                out.push((*b, *id));
            }
        }
        out
    };

    let removable = provable_under(&candidates);
    if removable.is_empty() {
        return None;
    }

    // Greedy minimization: drop any fact whose removal keeps the same
    // checks provable.
    let mut kept = candidates.clone();
    let mut i = 0;
    while i < kept.len() {
        let mut trial = kept.clone();
        trial.remove(i);
        if provable_under(&trial) == removable {
            kept = trial;
        } else {
            i += 1;
        }
    }
    if kept.is_empty() {
        // Provable without any runtime fact — the regular pass owns it.
        return None;
    }

    Some((kept, removable))
}

/// Builds `fn f(params…) { if (guards) { return f$fast(…) } return f$slow(…) }`
/// as a guard chain: each failing fact jumps straight to the slow version.
fn build_dispatcher(
    original: &Function,
    facts: &[ParamFact],
    fast_id: FuncId,
    slow_id: FuncId,
) -> Function {
    let params: Vec<Type> = original.param_types().to_vec();
    let ret = original.ret_type().cloned();
    let mut b = FunctionBuilder::new(original.name(), params.clone(), ret.clone());
    let args: Vec<Value> = (0..params.len()).map(|i| b.param(i)).collect();

    let fast_b = b.new_block();
    let slow_b = b.new_block();
    for (i, fact) in facts.iter().enumerate() {
        let cond = emit_fact_cond(&mut b, *fact, &args);
        let next = if i + 1 == facts.len() {
            fast_b
        } else {
            b.new_block()
        };
        b.branch(cond, next, slow_b);
        if next != fast_b {
            b.switch_to_block(next);
        }
    }

    b.switch_to_block(fast_b);
    let r = b.call(fast_id, args.clone(), ret.clone());
    b.ret(r);
    b.switch_to_block(slow_b);
    let r = b.call(slow_id, args.clone(), ret.clone());
    b.ret(r);

    b.finish().expect("dispatcher verifies")
}

/// Emits the (side-effect-free) runtime test for one fact.
fn emit_fact_cond(b: &mut FunctionBuilder, fact: ParamFact, args: &[Value]) -> Value {
    match fact {
        ParamFact::NonNegative { param } => {
            let zero = b.iconst(0);
            b.compare(CmpOp::Ge, args[param], zero)
        }
        ParamFact::WithinBounds { param, array } => {
            let len = b.array_len(args[array]);
            b.compare(CmpOp::Lt, args[param], len)
        }
        ParamFact::AtMostLen { param, array } => {
            let len = b.array_len(args[array]);
            b.compare(CmpOp::Le, args[param], len)
        }
        ParamFact::LenLe { a, b: bigger } => {
            let la = b.array_len(args[a]);
            let lb = b.array_len(args[bigger]);
            b.compare(CmpOp::Le, la, lb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcd_vm::{RtVal, Vm};

    /// Pipeline helper: frontend → ABCD → versioning.
    fn optimize_and_version(src: &str) -> (Module, VersioningReport) {
        let mut m = abcd_frontend::compile(src).unwrap();
        crate::Optimizer::new().optimize_module(&mut m, None);
        let report = version_functions(&mut m, None, 0);
        abcd_ir::verify_module(&m).unwrap();
        (m, report)
    }

    const SCAN: &str = "fn scan(a: int[], n: int) -> int {
        let s: int = 0;
        for (let i: int = 0; i < n; i = i + 1) { s = s + a[i]; }
        return s;
    }";

    #[test]
    fn parameter_bounded_loop_gets_versioned() {
        let (m, report) = optimize_and_version(SCAN);
        assert_eq!(report.count(), 1, "{report:?}");
        let (name, facts, removed) = &report.versioned[0];
        assert_eq!(name, "scan");
        assert!(*removed >= 1);
        assert!(facts.len() <= 2, "guards not minimized: {facts:?}");
        // The module now has dispatcher + fast + slow.
        assert!(m.function_by_name("scan").is_some());
        assert!(m.function_by_name("scan$fast").is_some());
        assert!(m.function_by_name("scan$slow").is_some());
        // Fast version really is check-free for the removable checks.
        let fast = m.function(m.function_by_name("scan$fast").unwrap());
        let slow = m.function(m.function_by_name("scan$slow").unwrap());
        assert!(fast.count_checks().0 < slow.count_checks().0);
    }

    #[test]
    fn fast_path_runs_check_free_and_slow_path_traps_identically() {
        let baseline = abcd_frontend::compile(SCAN).unwrap();
        let (m, _) = optimize_and_version(SCAN);

        // In-bounds call: guard holds → fast path, zero remaining checks
        // for the upper bound.
        let mut vm = Vm::new(&m);
        let a = vm.alloc_int_array(&[1, 2, 3, 4]);
        let r = vm.call_by_name("scan", &[a, RtVal::Int(4)]).unwrap();
        assert_eq!(r, Some(RtVal::Int(10)));
        let fast_checks = vm.stats().dynamic_checks_total();

        let mut vm0 = Vm::new(&baseline);
        let a0 = vm0.alloc_int_array(&[1, 2, 3, 4]);
        vm0.call_by_name("scan", &[a0, RtVal::Int(4)]).unwrap();
        assert!(
            fast_checks < vm0.stats().dynamic_checks_total(),
            "fast path: {fast_checks} vs baseline {}",
            vm0.stats().dynamic_checks_total()
        );

        // Out-of-bounds call: guard fails → slow path traps exactly like
        // the unoptimized program.
        let mut vm = Vm::new(&m);
        let a = vm.alloc_int_array(&[1, 2]);
        let e1 = vm.call_by_name("scan", &[a, RtVal::Int(5)]).unwrap_err();
        let mut vm0 = Vm::new(&baseline);
        let a0 = vm0.alloc_int_array(&[1, 2]);
        let e0 = vm0.call_by_name("scan", &[a0, RtVal::Int(5)]).unwrap_err();
        assert_eq!(format!("{:?}", e1.kind), format!("{:?}", e0.kind));
    }

    #[test]
    fn functions_without_helpful_facts_are_left_alone() {
        // The index comes from a load: no parameter fact can bound it.
        let (m, report) =
            optimize_and_version("fn f(a: int[], idx: int[]) -> int { return a[idx[0]]; }");
        // idx[0]'s own checks may be param-boundable (0 vs idx.length), so
        // only assert that an unversionable function stays single.
        let _ = report;
        assert!(m.function_by_name("f").is_some());
    }

    #[test]
    fn main_is_never_versioned() {
        let (m, report) = optimize_and_version(
            "fn main() -> int {
                let a: int[] = new int[4];
                let s: int = 0;
                for (let i: int = 0; i < 4; i = i + 1) { s = s + a[i]; }
                return s;
            }",
        );
        assert_eq!(report.count(), 0);
        assert!(m.function_by_name("main$fast").is_none());
    }

    #[test]
    fn versioned_recursion_still_terminates_and_matches() {
        let src = "fn walk(a: int[], i: int) -> int {
            if (i >= a.length) { return 0; }
            return a[i] + walk(a, i + 1);
        }
        fn main() -> int {
            let a: int[] = new int[6];
            for (let i: int = 0; i < a.length; i = i + 1) { a[i] = i; }
            return walk(a, 0);
        }";
        let baseline = abcd_frontend::compile(src).unwrap();
        let (m, _) = optimize_and_version(src);
        let mut vm1 = Vm::new(&baseline);
        let mut vm2 = Vm::new(&m);
        assert_eq!(
            vm1.call_by_name("main", &[]).unwrap(),
            vm2.call_by_name("main", &[]).unwrap()
        );
    }
}
