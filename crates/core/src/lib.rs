//! ABCD: demand-driven elimination of **A**rray **B**ounds **C**hecks on
//! **D**emand, after Bodík, Gupta & Sarkar (PLDI 2000).
//!
//! The algorithm, in the paper's own structure (Figure 2):
//!
//! 1. **Build e-SSA** — SSA plus π-assignments on branch out-edges and after
//!    checks (provided by the `abcd-ssa` crate, §3);
//! 2. **Build the inequality graph** `G_I` — a sparse, flow-insensitive
//!    system of difference constraints `v ≤ u + c` over e-SSA names, array
//!    lengths and constants, with φ-defined *max* vertices giving the
//!    hypergraph min/max semantics ([`InequalityGraph`], §4, Table 1);
//! 3. **`demandProve`** — a memoizing depth-first traversal prover over the
//!    three-point lattice `True > Reduced > False` with amplifying-cycle
//!    detection ([`DemandProver`], §5, Figure 5); a check `A[x]` is removed
//!    when `x − A.length ≤ −1` (upper) or `x ≥ 0` (lower, the §7.2 dual) is
//!    implied on every path.
//!
//! Extensions implemented: partial-redundancy elimination with speculative
//! compensating checks and the compare/trap split ([`PreProver`],
//! [`apply_insertions`], §6), the on-demand value-numbering congruence hook
//! (§7.1), and merged unsigned checks ([`merge_remaining_checks`], §7.2).
//!
//! The [`Optimizer`] drives everything per function and produces the
//! statistics §8 of the paper reports (checks removed with local/global
//! split, `prove` steps per check, analysis time).
//!
//! # Quickstart
//!
//! ```
//! use abcd::Optimizer;
//! use abcd_frontend::compile;
//! use abcd_vm::Vm;
//!
//! // Compile a kernel with 2 checks per array access…
//! let mut module = compile(r#"
//!     fn sum(a: int[]) -> int {
//!         let s: int = 0;
//!         for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
//!         return s;
//!     }
//! "#)?;
//! // …optimize…
//! let report = Optimizer::new().optimize_module(&mut module, None);
//! assert_eq!(report.checks_removed_fully(), 2);
//! // …and the optimized module still runs (now check-free).
//! let mut vm = Vm::new(&module);
//! let arr = vm.alloc_int_array(&[1, 2, 3]);
//! assert_eq!(vm.call_by_name("sum", &[arr])?, Some(abcd_vm::RtVal::Int(6)));
//! assert_eq!(vm.stats().dynamic_checks_total(), 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod driver;
mod exhaustive;
pub mod faults;
mod graph;
pub mod interproc;
pub mod metrics;
pub mod oracle;
mod pre;
mod report;
mod scratch;
mod solver;
pub mod trace;
mod validate;
pub mod versioning;

pub use cache::{AnalysisCache, CacheEntry, CacheKey, CacheStats};
pub use driver::{clamp_jobs, Optimizer, OptimizerOptions};
pub use exhaustive::{ExhaustiveDistances, Relaxation, SweepScratch};
pub use faults::{ChaosPlan, ChaosSite, Fault, FaultPlan, CHAOS_SITES};
pub use graph::{GraphShape, InEdge, InequalityGraph, Problem, Vertex, VertexId};
pub use interproc::{infer_param_facts, ModuleFacts, ParamFact};
pub use metrics::{module_metrics_json, FunctionMetrics, RunInfo};
pub use pre::{apply_insertions, compensation_delta, merge_remaining_checks};
pub use report::{
    CheckOutcome, EliminatedCheck, FunctionReport, HoistedCheck, Incident, ModuleReport,
};
pub use scratch::{ScratchArena, ScratchPool};
pub use solver::{
    AnyProver, DemandProver, DemandScratch, InsertionPoint, Lattice, PreOutcome, PreProver,
    PreScratch, Prover, ProverBackend, SweepProver,
};
pub use trace::{
    explain_function, json_escape, module_trace_jsonl, request_span_jsonl, witness_path,
    FunctionTrace, ProveEvent, Span, TRACE_SCHEMA,
};
pub use versioning::{version_functions, VersioningReport};
