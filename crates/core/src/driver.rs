//! The ABCD optimization driver: the pipeline of Figure 2 plus the §6/§7
//! extensions, with per-check reporting.
//!
//! For each function the driver (1) constructs SSA, (2) runs the host
//! compiler's basic cleanup, (3) builds e-SSA by inserting π-assignments,
//! (4) builds the upper and lower inequality graphs, and (5) runs
//! `demandProve` per bounds check — hottest first when a profile is given,
//! exactly the demand-driven discipline the paper designed for.

use crate::cache::{AnalysisCache, CacheEntry, CacheKey, Lookup};
use crate::faults::{current_pass, set_current_pass, FaultPlan};
use crate::graph::{InequalityGraph, Problem, Vertex};
use crate::pre::{apply_insertions, merge_remaining_checks};
use crate::report::{
    CheckOutcome, EliminatedCheck, FunctionReport, HoistedCheck, Incident, ModuleReport,
};
use crate::scratch::{ScratchArena, ScratchPool};
use crate::solver::{AnyProver, DemandProver, PreOutcome, PreProver, ProverBackend};
use crate::trace::{FunctionTrace, PreInsertionRecord, Span};
use abcd_ir::{Block, CheckKind, CheckSite, FuncId, Function, InstId, InstKind, Module, Value};
use abcd_ssa::DomTree;
use abcd_vm::Profile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning knobs for the optimizer.
#[derive(Clone, Copy, Debug)]
pub struct OptimizerOptions {
    /// Eliminate upper-bound checks.
    pub upper: bool,
    /// Eliminate lower-bound checks (the §7.2 dual).
    pub lower: bool,
    /// Run the basic cleanup set (const-fold, GVN/CSE, DCE) first, like the
    /// paper's host compiler.
    pub cleanup: bool,
    /// Remove partially redundant checks by insertion (§6).
    pub pre: bool,
    /// Consult value-numbering congruence when a proof against one array
    /// fails (§7.1).
    pub gvn_hook: bool,
    /// Merge surviving lower+upper pairs into unsigned checks (§7.2).
    pub merge_checks: bool,
    /// Classify each removal as local (provable within its basic block) or
    /// global — the split shown for the SPEC benchmarks in Figure 6.
    pub classify_local: bool,
    /// With a profile: only analyze check sites executed at least this many
    /// times (the "hot bounds checks" work-list). `None` analyzes all.
    pub hot_threshold: Option<u64>,
    /// Infer and use interprocedural parameter facts (closed-world; see
    /// [`crate::interproc`]). Off by default — the paper is intraprocedural.
    pub interprocedural: bool,
    /// Solver-step budget per `demandProve` query. On exhaustion the verdict
    /// is a conservative "keep the check" and a
    /// [`Incident::BudgetExhausted`] is recorded. `None` = unbudgeted.
    pub fuel_per_query: Option<u64>,
    /// Total solver-step budget per function (fully-redundant + PRE passes
    /// combined). Checks reached after the budget is gone are kept without
    /// being queried. `None` = unbudgeted.
    pub fuel_per_function: Option<u64>,
    /// Run the IR verifier after every IR-mutating pipeline pass; on
    /// failure, ship the pre-pass function and record
    /// [`Incident::VerifyFailed`]. Defaults on in debug builds (tests/CI),
    /// off in release unless requested.
    pub verify_ir: bool,
    /// Translation validation: independently re-prove every eliminated
    /// check against graphs rebuilt from the final e-SSA form; reinstate
    /// (and record [`Incident::ValidationReinstated`]) on any miss.
    pub validate: bool,
    /// Run each function's pipeline under `catch_unwind`; a panicking
    /// function ships unoptimized ([`Incident::PassPanic`]) while the rest
    /// of the module proceeds.
    pub isolate_panics: bool,
    /// Which engine answers difference queries (`--prover`). All backends
    /// compute identical verdicts; [`ProverBackend::Auto`] picks per
    /// function (and per problem) by graph shape.
    pub prover: ProverBackend,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            upper: true,
            lower: true,
            cleanup: true,
            pre: true,
            gvn_hook: true,
            merge_checks: false,
            classify_local: true,
            hot_threshold: None,
            interprocedural: false,
            fuel_per_query: None,
            fuel_per_function: None,
            verify_ir: cfg!(debug_assertions),
            validate: false,
            isolate_panics: true,
            prover: ProverBackend::Demand,
        }
    }
}

/// The ABCD optimizer.
///
/// Functions are independent units of work, so [`Optimizer::with_threads`]
/// runs the per-function pipeline (SSA → e-SSA → graphs → `demandProve` →
/// PRE → rewrite) across a module's functions on a scoped-thread work pool.
/// Reports merge in function order, and the optimized IR is identical to a
/// sequential run — workers share nothing but the job queue.
///
/// # Example
///
/// ```
/// use abcd::Optimizer;
/// use abcd_frontend::compile;
///
/// let mut module = compile(r#"
///     fn sum(a: int[]) -> int {
///         let s: int = 0;
///         for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
///         return s;
///     }
/// "#)?;
/// let report = Optimizer::new().optimize_module(&mut module, None);
/// assert_eq!(report.checks_removed_fully(), 2); // lower and upper
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Optimizer {
    options: OptimizerOptions,
    /// Worker threads for `optimize_module` (0 and 1 both mean sequential).
    threads: usize,
    /// Deterministic fault-injection plan (tests and `mjc --fault-plan`).
    fault_plan: Option<FaultPlan>,
    /// Content-addressed analysis cache shared across runs (and across the
    /// server's requests). `None` = always cold.
    cache: Option<Arc<AnalysisCache>>,
    /// Record an [`FunctionTrace`] per function (see [`crate::trace`]).
    /// Deliberately *not* an [`OptimizerOptions`] field: options are
    /// cache-fingerprinted and wire-serialized, and observing a run must
    /// never change its cache keys or verdicts.
    trace: bool,
    /// Pooled per-worker scratch (graph shells, prover tables) shared
    /// across modules/requests. `None` = a transient pool per
    /// `optimize_module` call (buffers still reused across the module's
    /// functions).
    scratch: Option<Arc<ScratchPool>>,
}

impl Optimizer {
    /// An optimizer with default options (everything but check merging on).
    pub fn new() -> Self {
        Optimizer::default()
    }

    /// An optimizer with explicit options.
    pub fn with_options(options: OptimizerOptions) -> Self {
        Optimizer {
            options,
            threads: 0,
            fault_plan: None,
            cache: None,
            trace: false,
            scratch: None,
        }
    }

    /// Attaches a shared scratch pool: workers draw their per-function
    /// arenas (graph shells, prover memo tables, sweep buffers) from it, so
    /// the warm capacity survives across modules and — in the server —
    /// across requests. Steady state allocates nothing on the prove path.
    pub fn with_scratch_pool(mut self, pool: Arc<ScratchPool>) -> Self {
        self.scratch = Some(pool);
        self
    }

    /// Enables (or disables) structured span tracing: every
    /// [`FunctionReport`] gains a [`FunctionTrace`] recording pass
    /// timings, graph sizes, each `demandProve` traversal, PRE decisions,
    /// and cache lookups. Off (the default) costs one untaken branch per
    /// hook — no allocation on the prove path.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Sets the number of worker threads `optimize_module` may use.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Arms a deterministic fault-injection plan. Faults are keyed by
    /// function name (never thread identity), so an armed plan fires
    /// identically in sequential and parallel runs.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a shared analysis cache: functions whose content-addressed
    /// key hits are replayed from cached IR instead of re-analyzed, and
    /// incident-free cold results are stored for future runs.
    pub fn with_cache(mut self, cache: Arc<AnalysisCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The cache actually consulted this run. An armed fault plan disables
    /// it entirely: injected faults must fire deterministically on every
    /// run, which a replayed result would silently swallow — and faulted
    /// results must never be stored.
    fn effective_cache(&self) -> Option<&AnalysisCache> {
        if self.fault_plan.is_some() {
            None
        } else {
            self.cache.as_deref()
        }
    }

    /// The active options.
    pub fn options(&self) -> &OptimizerOptions {
        &self.options
    }

    /// The effective worker-thread count (at least 1).
    pub fn threads(&self) -> usize {
        self.threads.max(1)
    }

    /// Optimizes every function of `module` (which must be in locals form or
    /// plain SSA — the driver builds SSA/e-SSA itself). A [`Profile`] from a
    /// prior training run drives hot-check selection and PRE profitability.
    pub fn optimize_module(&self, module: &mut Module, profile: Option<&Profile>) -> ModuleReport {
        let mut report = ModuleReport::default();
        let options_fp = crate::cache::options_fingerprint(&self.options);
        // Without an attached pool, a transient one still shares warm
        // buffers across this module's functions.
        let pool = self
            .scratch
            .clone()
            .unwrap_or_else(|| Arc::new(ScratchPool::new()));
        let pool = &pool;
        if !self.options.interprocedural {
            report.functions = self.map_functions(module, |id, func| {
                if let Some(r) = self.cold_skip_report(func, id, profile) {
                    return r;
                }
                // Content-addressed lookup before any pipeline work: the
                // key is derived from the *input* (canonicalized), the
                // options, and the profile slice for this function. No
                // interproc facts in this mode, so that component is the
                // fingerprint of the empty fact set.
                let keyed = self.effective_cache().map(|cache| {
                    let canon = abcd_ir::canonicalize(func).to_string();
                    let key = crate::cache::cache_key(
                        &canon,
                        options_fp,
                        crate::cache::facts_fingerprint(&[]),
                        crate::cache::profile_fingerprint(profile, id, self.options.hot_threshold),
                    );
                    (cache, key)
                });
                let mut corrupt = None;
                if let Some((cache, key)) = keyed {
                    match self.try_replay(cache, key, func) {
                        Ok(Some(mut rep)) => {
                            self.attach_cache_span(&mut rep, true);
                            return rep;
                        }
                        Ok(None) => {}
                        Err(incident) => corrupt = Some(incident),
                    }
                }
                let mut arena = pool.checkout();
                let mut rep = self
                    .isolated(func, |f| {
                        self.optimize_function_inner(f, id, profile, &mut arena)
                    })
                    .merge();
                pool.checkin(arena);
                // Store before surfacing the corruption incident: the cold
                // recompile is the healthy entry that heals the cache.
                if let Some((cache, key)) = keyed {
                    self.maybe_store(cache, key, func, &rep);
                    self.attach_cache_span(&mut rep, false);
                }
                if let Some(incident) = corrupt {
                    rep.incidents.insert(0, incident);
                }
                rep
            });
            return report;
        }
        // Interprocedural mode: prepare every function first, infer the
        // parameter-fact fixpoint over the whole module (inherently a
        // sequential whole-module step), then analyze each function under
        // its verified assumptions. Each phase is panic-isolated per
        // function; a function whose prepare failed ships as-is and is
        // skipped by analyze.
        // The cache key needs the *input* text, so canonicalize before
        // prepare mutates anything. The interproc-fact component of the
        // key is only known after inference, which is what gives editing
        // one function its transitive reach: callees whose verified
        // parameter facts change get new keys and recompile cold.
        let caching = self.effective_cache().is_some();
        let prepared = self.map_functions(module, |_, func| {
            let canon = caching.then(|| abcd_ir::canonicalize(func).to_string());
            (canon, self.isolated(func, |f| self.prepare_function(f)))
        });
        let facts = crate::interproc::infer_param_facts(module);
        let facts = &facts;
        let prepared: Vec<PreparedSlot> =
            prepared.into_iter().map(|g| Mutex::new(Some(g))).collect();
        report.functions = self.map_functions(module, |id, func| {
            let (canon, prep) = prepared[id.index()]
                .lock()
                .expect("prepared state lock")
                .take()
                .expect("each function analyzed once");
            let keyed = match (self.effective_cache(), canon) {
                (Some(cache), Some(canon)) => {
                    let key = crate::cache::cache_key(
                        &canon,
                        options_fp,
                        crate::cache::facts_fingerprint(facts.of(id)),
                        crate::cache::profile_fingerprint(profile, id, self.options.hot_threshold),
                    );
                    Some((cache, key))
                }
                _ => None,
            };
            let mut corrupt = None;
            if let Some((cache, key)) = keyed {
                match self.try_replay(cache, key, func) {
                    Ok(Some(mut rep)) => {
                        self.attach_cache_span(&mut rep, true);
                        return rep;
                    }
                    Ok(None) => {}
                    Err(incident) => corrupt = Some(incident),
                }
            }
            let mut rep = match prep {
                FailOpen::Done(Ok(gvn)) => {
                    let mut arena = pool.checkout();
                    let rep = self
                        .isolated(func, |f| {
                            self.analyze_function(f, id, profile, gvn, facts.of(id), &mut arena)
                        })
                        .merge();
                    pool.checkin(arena);
                    rep
                }
                FailOpen::Done(Err(incident)) => fail_open_report(func, incident),
                FailOpen::Panicked(r) => *r,
            };
            if let Some((cache, key)) = keyed {
                self.maybe_store(cache, key, func, &rep);
                self.attach_cache_span(&mut rep, false);
            }
            if let Some(incident) = corrupt {
                rep.incidents.insert(0, incident);
            }
            rep
        });
        report
    }

    /// Prepends the cache-lookup span to a function's trace (tracing runs
    /// only). The lookup logically precedes the pipeline it short-circuits,
    /// so it goes at the front; on a hit the replayed report has no other
    /// spans — the cache span *is* its trace.
    fn attach_cache_span(&self, rep: &mut FunctionReport, hit: bool) {
        if !self.trace {
            return;
        }
        rep.trace
            .get_or_insert_with(Default::default)
            .push_front(Span::Cache { hit });
    }

    /// Runs `work` on a scratch clone of `func` under `catch_unwind` (when
    /// isolation is enabled), copying the result back only on success. A
    /// panic leaves `func` exactly as it was — the function ships
    /// unoptimized — and is reported as a [`Incident::PassPanic`] carrying
    /// the pass that was running.
    ///
    /// The clone/copy-back discipline is identical in sequential and
    /// parallel runs, so isolation never perturbs byte-identity.
    fn isolated<T, F>(&self, func: &mut Function, work: F) -> FailOpen<T>
    where
        F: FnOnce(&mut Function) -> T,
    {
        if !self.options.isolate_panics {
            return FailOpen::Done(work(func));
        }
        let scratch = func.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let mut scratch = scratch;
            let out = work(&mut scratch);
            (scratch, out)
        }));
        match result {
            Ok((scratch, out)) => {
                *func = scratch;
                FailOpen::Done(out)
            }
            Err(payload) => {
                let incident = Incident::PassPanic {
                    function: func.name_symbol(),
                    pass: current_pass().to_string(),
                    payload: payload_message(payload.as_ref()),
                };
                FailOpen::Panicked(Box::new(fail_open_report(func, incident)))
            }
        }
    }

    /// Applies `f` to every function and collects the results in function
    /// order — on this thread, or on a scoped work pool when
    /// [`with_threads`](Optimizer::with_threads) asked for more than one
    /// worker. Each function is claimed by exactly one worker off a shared
    /// atomic cursor; results land in per-function slots, so the merged
    /// output is deterministic regardless of scheduling.
    fn map_functions<T, F>(&self, module: &mut Module, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(FuncId, &mut Function) -> T + Sync,
    {
        let n = module.function_count();
        let threads = self.threads().min(n.max(1));
        if threads <= 1 {
            return module
                .functions_mut()
                .map(|(id, func)| f(id, func))
                .collect();
        }
        let jobs: Vec<Mutex<Option<(FuncId, &mut Function)>>> = module
            .functions_mut()
            .map(|j| Mutex::new(Some(j)))
            .collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (id, func) = jobs[i]
                        .lock()
                        .expect("job lock")
                        .take()
                        .expect("each job claimed once");
                    let out = f(id, func);
                    *results[i].lock().expect("result lock") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result lock")
                    .expect("every job completed")
            })
            .collect()
    }

    /// Demand discipline at function granularity: with a profile and a
    /// `hot_threshold` in force (intraprocedurally), a function none of
    /// whose check sites is hot gets no pipeline at all — the module text
    /// stays byte-identical to the input, and every check is reported
    /// `Skipped`. This is the work-list semantics of §5 lifted a level:
    /// analysis effort is spent only where the profile says it pays.
    fn cold_skip_report(
        &self,
        func: &Function,
        func_id: FuncId,
        profile: Option<&Profile>,
    ) -> Option<FunctionReport> {
        let threshold = self.options.hot_threshold?;
        let profile = profile?;
        if self.options.interprocedural {
            // Interproc fact inference needs every function prepared, so
            // whole-function skipping only applies intraprocedurally.
            return None;
        }
        if threshold == 0 {
            // Threshold 0 declares every site hot — including the vacuous
            // "no sites at all" case — so nothing is skipped and the output
            // stays byte-identical to an unthresholded run.
            return None;
        }
        let mut checks = Vec::new();
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                if let InstKind::BoundsCheck { site, kind, .. } = func.inst(id).kind {
                    if profile.site_count(func_id, site) >= threshold {
                        return None; // at least one hot site: run the pipeline
                    }
                    checks.push((site, kind));
                }
            }
        }
        let mut report = FunctionReport::new(func.name());
        report.checks_total = checks.len();
        for (site, kind) in checks {
            report.record(site, kind, CheckOutcome::Skipped);
        }
        Some(report)
    }

    /// Attempts to replay a cached result for `func`. `Ok(Some(report))`:
    /// hit, `func` replaced by the cached optimized IR. `Ok(None)`: miss.
    /// `Err(incident)`: a disk entry existed but failed re-verification
    /// (already quarantined by the cache) — recompile cold and surface the
    /// incident.
    fn try_replay(
        &self,
        cache: &AnalysisCache,
        key: CacheKey,
        func: &mut Function,
    ) -> Result<Option<FunctionReport>, Incident> {
        match cache.lookup(key) {
            Lookup::Miss => Ok(None),
            Lookup::Corrupt(detail) => Err(Incident::CacheCorrupt {
                function: func.name_symbol(),
                detail,
            }),
            Lookup::Hit(entry) => match self.replay_entry(func, &entry) {
                Ok(report) => Ok(Some(report)),
                // An in-memory entry that fails replay is equally a
                // corruption event; fall back to cold.
                Err(detail) => Err(Incident::CacheCorrupt {
                    function: func.name_symbol(),
                    detail,
                }),
            },
        }
    }

    /// Replaces `func` with a cached optimized body and reconstructs its
    /// report from the entry's summary.
    fn replay_entry(
        &self,
        func: &mut Function,
        entry: &CacheEntry,
    ) -> Result<FunctionReport, String> {
        let parsed = abcd_ir::parse_function_text(&entry.ir_text)
            .map_err(|e| format!("cached IR does not parse: {e}"))?;
        if parsed.name() != func.name() {
            return Err(format!(
                "cached IR names `{}`, expected `{}`",
                parsed.name(),
                func.name()
            ));
        }
        abcd_ir::verify_function(&parsed, None)
            .map_err(|e| format!("cached IR fails verification: {e}"))?;
        *func = parsed;
        let mut report = FunctionReport::new(func.name());
        report.from_cache = true;
        report.checks_total = entry.checks_total;
        report.outcomes = entry.outcomes.clone();
        report.steps = entry.steps;
        report.pre_steps = entry.pre_steps;
        report.spec_checks_inserted = entry.spec_checks_inserted;
        report.checks_merged = entry.checks_merged;
        report.checks_validated = entry.checks_validated;
        report.fuel_spent = entry.steps + entry.pre_steps;
        report.fuel_limit = self
            .options
            .fuel_per_function
            .or(self.options.fuel_per_query);
        Ok(report)
    }

    /// Stores an incident-free cold result. Anything with incidents is
    /// not cached: fail-open outputs are deliberately conservative and
    /// must be re-derived (and re-reported) every run, never replayed.
    fn maybe_store(
        &self,
        cache: &AnalysisCache,
        key: CacheKey,
        func: &Function,
        rep: &FunctionReport,
    ) {
        if !rep.incidents.is_empty() || rep.from_cache {
            return;
        }
        cache.insert(
            key,
            CacheEntry {
                ir_text: func.to_string(),
                checks_total: rep.checks_total,
                outcomes: rep.outcomes.clone(),
                steps: rep.steps,
                pre_steps: rep.pre_steps,
                spec_checks_inserted: rep.spec_checks_inserted,
                checks_merged: rep.checks_merged,
                checks_validated: rep.checks_validated,
            },
        );
    }

    /// Optimizes a single function. `func_id` keys profile lookups.
    pub fn optimize_function(
        &self,
        func: &mut Function,
        func_id: FuncId,
        profile: Option<&Profile>,
    ) -> FunctionReport {
        let mut arena = match &self.scratch {
            Some(pool) => pool.checkout(),
            None => ScratchArena::new(),
        };
        let rep = self
            .isolated(func, |f| {
                self.optimize_function_inner(f, func_id, profile, &mut arena)
            })
            .merge();
        if let Some(pool) = &self.scratch {
            pool.checkin(arena);
        }
        rep
    }

    fn optimize_function_inner(
        &self,
        func: &mut Function,
        func_id: FuncId,
        profile: Option<&Profile>,
        arena: &mut ScratchArena,
    ) -> FunctionReport {
        match self.prepare_function(func) {
            Ok(gvn) => self.analyze_function(func, func_id, profile, gvn, &[], arena),
            Err(incident) => fail_open_report(func, incident),
        }
    }

    /// Runs one IR-mutating pipeline stage with the robustness hooks: the
    /// fault plan may panic at its boundary, and `verify_ir` re-verifies
    /// the output — on rejection the pre-pass snapshot is restored and the
    /// offending pass is named in the returned incident.
    ///
    /// `ssa_form` stages (everything after local promotion) are also held
    /// to the dominance discipline: a transform that leaves a use above its
    /// definition — e.g. PRE insertion points computed from a corrupted
    /// constraint graph — is rolled back, not shipped.
    fn run_stage(
        &self,
        func: &mut Function,
        pass: &'static str,
        ssa_form: bool,
        stage: impl FnOnce(&mut Function),
    ) -> Result<(), Incident> {
        set_current_pass(pass);
        if let Some(plan) = &self.fault_plan {
            plan.maybe_panic(func.name(), pass);
        }
        if !self.options.verify_ir {
            stage(func);
            return Ok(());
        }
        let snapshot = func.clone();
        stage(func);
        let verdict = abcd_ir::verify_function(func, None)
            .map_err(|e| e.to_string())
            .and_then(|()| {
                if ssa_form {
                    abcd_ssa::verify_ssa(func).map_err(|e| e.to_string())
                } else {
                    Ok(())
                }
            });
        match verdict {
            Ok(()) => Ok(()),
            Err(error) => {
                let incident = Incident::VerifyFailed {
                    function: func.name_symbol(),
                    pass: pass.to_string(),
                    error,
                };
                *func = snapshot;
                Err(incident)
            }
        }
    }

    /// Stages 1–3 of Figure 2: SSA construction, basic cleanup, e-SSA.
    /// Fails open: a verifier rejection ships the pre-pass function.
    fn prepare_function(&self, func: &mut Function) -> Result<PreparedGvn, Incident> {
        let prepare_started = Instant::now();
        let opts = &self.options;
        let mut cleanup_stats = abcd_analysis::CleanupStats::default();
        self.run_stage(func, "split_critical_edges", false, |f| {
            abcd_ssa::split_critical_edges(f);
        })?;
        self.run_stage(func, "promote_locals", true, |f| {
            abcd_ssa::promote_locals(f).expect("frontend guarantees definite assignment");
        })?;
        let mut gvn = abcd_analysis::GvnResult::default();
        if opts.cleanup {
            self.run_stage(func, "cleanup", true, |f| {
                let (stats, g) = abcd_analysis::cleanup(f);
                cleanup_stats = stats;
                gvn = g;
            })?;
        } else if opts.gvn_hook {
            // §7.1 needs congruence even when the rewriting cleanup is off:
            // value-number a throwaway clone (value ids are stable) and keep
            // only the congruence classes.
            let mut scratch = func.clone();
            gvn = abcd_analysis::value_number(&mut scratch);
        }
        if opts.gvn_hook {
            // Loads of the same array slot yield the same reference (and
            // hence the same length) — congruence no rewriting CSE can see.
            abcd_analysis::record_load_congruence(func, &mut gvn);
        }
        let already_essa = has_pi(func);
        let pi_started = Instant::now();
        if !already_essa {
            self.run_stage(func, "insert_pi", true, |f| {
                abcd_ssa::insert_pi_nodes(f);
            })?;
        }
        let pi_time = pi_started.elapsed();
        debug_assert_eq!(abcd_ssa::verify_ssa(func), Ok(()));
        Ok(PreparedGvn {
            gvn,
            cleanup: cleanup_stats,
            prepare_time: prepare_started.elapsed(),
            pi_time,
        })
    }

    /// Stages 4–5 of Figure 2: build the constraint systems (optionally
    /// augmented with verified parameter facts) and run `demandProve` per
    /// check, transforming as directed.
    fn analyze_function(
        &self,
        func: &mut Function,
        func_id: FuncId,
        profile: Option<&Profile>,
        prepared: PreparedGvn,
        facts: &[crate::interproc::ParamFact],
        arena: &mut ScratchArena,
    ) -> FunctionReport {
        let opts = &self.options;
        let mut report = FunctionReport::new(func.name());
        report.cleanup = prepared.cleanup;
        report.param_facts_used = facts.len();
        report.metrics.prepare_time = prepared.prepare_time;
        report.fuel_limit = opts.fuel_per_function.or(opts.fuel_per_query);
        let gvn = prepared.gvn;
        let mut ftrace: Option<Box<FunctionTrace>> = self.trace.then(Box::default);
        if let Some(t) = &mut ftrace {
            t.push(Span::Pass {
                pass: "prepare",
                dur: prepared.prepare_time,
            });
            t.push(Span::Pass {
                pass: "insert_pi",
                dur: prepared.pi_time,
            });
        }

        // 4: the two sparse constraint systems.
        set_current_pass("graph_build");
        if let Some(plan) = &self.fault_plan {
            plan.maybe_panic(func.name(), "graph_build");
        }
        let graph_started = Instant::now();
        let mut upper_graph = arena.take_graph(Problem::Upper);
        upper_graph.rebuild_excluding(func, Problem::Upper, None, &[]);
        let mut lower_graph = arena.take_graph(Problem::Lower);
        lower_graph.rebuild_excluding(func, Problem::Lower, None, &[]);
        crate::interproc::apply_facts(facts, func, &mut upper_graph);
        crate::interproc::apply_facts(facts, func, &mut lower_graph);
        if let Some(plan) = &self.fault_plan {
            // Deterministic sabotage of the constraint system; translation
            // validation rebuilds clean graphs and must catch any wrong
            // elimination this causes.
            plan.perturb_graphs(func.name(), &mut upper_graph, &mut lower_graph);
        }
        let upper_graph = upper_graph;
        let lower_graph = lower_graph;
        let dt = DomTree::compute(func);
        // A fuel fault starves every query of this function outright.
        let fuel_fault = self
            .fault_plan
            .as_ref()
            .is_some_and(|p| p.exhausts_fuel(func.name()));
        report.metrics.graph_build_time = graph_started.elapsed();
        report.metrics.upper_vertices = upper_graph.vertex_count();
        report.metrics.upper_edges = upper_graph.edge_count();
        report.metrics.lower_vertices = lower_graph.vertex_count();
        report.metrics.lower_edges = lower_graph.edge_count();
        if let Some(t) = &mut ftrace {
            t.push(Span::GraphBuild {
                dur: report.metrics.graph_build_time,
                upper_vertices: report.metrics.upper_vertices,
                upper_edges: report.metrics.upper_edges,
                lower_vertices: report.metrics.lower_vertices,
                lower_edges: report.metrics.lower_edges,
            });
        }

        // Resolve the query engine per problem graph: `auto` inspects each
        // graph's shape, concrete backends pass through unchanged.
        let upper_backend = opts.prover.resolve(&upper_graph);
        let lower_backend = opts.prover.resolve(&lower_graph);
        report.metrics.upper_backend = upper_backend.name();
        report.metrics.lower_backend = lower_backend.name();
        if let Some(t) = &mut ftrace {
            for (problem, graph, resolved) in [
                ("upper", &upper_graph, upper_backend),
                ("lower", &lower_graph, lower_backend),
            ] {
                let shape = graph.shape();
                t.push(Span::Backend {
                    problem,
                    requested: opts.prover.name(),
                    backend: resolved.name(),
                    vertices: shape.vertices,
                    edges: shape.edges,
                    cycles: shape.cycles,
                });
            }
        }

        // The checks, in program order, hottest-first when profiled.
        let mut checks: Vec<(Block, InstId, CheckSite, Value, Value, CheckKind)> = Vec::new();
        for b in func.blocks() {
            for &id in func.block(b).insts() {
                if let InstKind::BoundsCheck {
                    site,
                    array,
                    index,
                    kind,
                } = func.inst(id).kind
                {
                    checks.push((b, id, site, array, index, kind));
                }
            }
        }
        report.checks_total = checks.len();
        if let Some(p) = profile {
            checks.sort_by_key(|(_, _, site, _, _, _)| {
                std::cmp::Reverse(p.site_count(func_id, *site))
            });
        }

        // Provers are cached per source vertex so memoization spans all
        // checks against the same array (or the constant 0) — including the
        // PRE provers, whose exact-match memo is equally reusable.
        let mut upper_provers: HashMap<Value, AnyProver> = HashMap::new();
        let mut lower_prover =
            AnyProver::with_arena(&lower_graph, Vertex::Const(0), lower_backend, arena);
        if self.trace {
            lower_prover.enable_trace();
        }
        let freq_fn = profile.map(|p| move |b: Block| p.block_count(func_id, b));
        let freq_dyn: Option<&dyn Fn(Block) -> u64> = match &freq_fn {
            Some(f) => Some(f),
            None => None,
        };
        let mut pre_provers: HashMap<(Problem, Vertex), PreProver> = HashMap::new();
        // Block-restricted graphs for the local/global classification.
        let mut local_graphs: HashMap<(Block, Problem), InequalityGraph> = HashMap::new();

        let mut to_remove: Vec<(Block, InstId)> = Vec::new();
        let mut pre_jobs: Vec<(Block, InstId, Vec<crate::solver::InsertionPoint>, Problem)> =
            Vec::new();

        set_current_pass("solve");
        if let Some(plan) = &self.fault_plan {
            plan.maybe_panic(func.name(), "solve");
        }
        for (block, inst, site, array, index, kind) in checks {
            let enabled = match kind {
                CheckKind::Upper => opts.upper,
                CheckKind::Lower => opts.lower,
                CheckKind::Both => opts.upper && opts.lower,
            };
            if !enabled {
                report.record(site, kind, CheckOutcome::Skipped);
                continue;
            }
            if let (Some(threshold), Some(p)) = (opts.hot_threshold, profile) {
                if p.site_count(func_id, site) < threshold {
                    report.record(site, kind, CheckOutcome::Skipped);
                    continue;
                }
            }
            // Fuel gate. The per-function budget counts every solver step
            // already spent; once it (or an injected fuel fault) starves a
            // check, the check is kept without querying — exhaustion can
            // never eliminate a check, not even through the provers'
            // O(1) trivial fast paths.
            let already_spent = report.steps + report.pre_steps;
            let function_fuel_left = opts
                .fuel_per_function
                .map(|budget| budget.saturating_sub(already_spent));
            if fuel_fault || function_fuel_left == Some(0) {
                report.incidents.push(Incident::BudgetExhausted {
                    function: func.name_symbol(),
                    site,
                    kind,
                    fuel: if fuel_fault { 0 } else { already_spent },
                });
                report.record(site, kind, CheckOutcome::Kept);
                continue;
            }
            let query_fuel = match (opts.fuel_per_query, function_fuel_left) {
                (Some(q), Some(f)) => Some(q.min(f)),
                (q, f) => q.or(f),
            };
            let started = Instant::now();
            let mut spent_steps = 0u64;
            let mut exhausted = false;
            let mut overflowed = false;

            let (problem, source, c, graph): (Problem, Vertex, i64, &InequalityGraph) = match kind {
                CheckKind::Upper | CheckKind::Both => {
                    (Problem::Upper, Vertex::ArrayLen(array), -1, &upper_graph)
                }
                CheckKind::Lower => (Problem::Lower, Vertex::Const(0), 0, &lower_graph),
            };
            // `Both` checks need both proofs; handle the common single-kind
            // cases first and fall back for Both.
            let mut proven = match kind {
                CheckKind::Upper => prove_upper(
                    &upper_graph,
                    upper_backend,
                    &mut upper_provers,
                    arena,
                    &mut report.metrics,
                    &mut spent_steps,
                    &mut exhausted,
                    &mut overflowed,
                    query_fuel,
                    array,
                    index,
                    site,
                    &mut ftrace,
                ),
                CheckKind::Lower => prove_lower(
                    &mut lower_prover,
                    &mut report.metrics,
                    &mut spent_steps,
                    &mut exhausted,
                    &mut overflowed,
                    query_fuel,
                    index,
                    site,
                    &mut ftrace,
                ),
                CheckKind::Both => {
                    prove_upper(
                        &upper_graph,
                        upper_backend,
                        &mut upper_provers,
                        arena,
                        &mut report.metrics,
                        &mut spent_steps,
                        &mut exhausted,
                        &mut overflowed,
                        query_fuel,
                        array,
                        index,
                        site,
                        &mut ftrace,
                    ) && prove_lower(
                        &mut lower_prover,
                        &mut report.metrics,
                        &mut spent_steps,
                        &mut exhausted,
                        &mut overflowed,
                        query_fuel,
                        index,
                        site,
                        &mut ftrace,
                    )
                }
            };
            let mut via_congruence = false;

            // §7.1: on upper-check failure, retry against congruent arrays.
            // A starved query skips the retries: its False is a budget
            // artifact, and the check is being kept anyway. Each retry
            // records its own prove span (against the congruent array).
            if !proven && !exhausted && opts.gvn_hook && matches!(kind, CheckKind::Upper) {
                for other in abcd_analysis::congruent_arrays(func, &gvn, &dt, array, block) {
                    if prove_upper(
                        &upper_graph,
                        upper_backend,
                        &mut upper_provers,
                        arena,
                        &mut report.metrics,
                        &mut spent_steps,
                        &mut exhausted,
                        &mut overflowed,
                        query_fuel,
                        other,
                        index,
                        site,
                        &mut ftrace,
                    ) {
                        proven = true;
                        via_congruence = true;
                        break;
                    }
                    if exhausted {
                        break;
                    }
                }
            }

            let outcome = if proven {
                to_remove.push((block, inst));
                report.eliminated.push(EliminatedCheck {
                    block,
                    site,
                    kind,
                    array,
                    index,
                });
                let local = opts.classify_local
                    && self.provable_locally(
                        func,
                        block,
                        problem,
                        source,
                        index,
                        c,
                        &mut local_graphs,
                        arena,
                    );
                report.metrics.solve_time += started.elapsed();
                CheckOutcome::RemovedFully {
                    local,
                    via_congruence,
                }
            } else if exhausted {
                // Conservative: keep the check, surface the budget stop.
                report.metrics.solve_time += started.elapsed();
                report.incidents.push(Incident::BudgetExhausted {
                    function: func.name_symbol(),
                    site,
                    kind,
                    fuel: spent_steps,
                });
                CheckOutcome::Kept
            } else if overflowed {
                // Path-weight arithmetic saturated: the `False` is an
                // artifact of the conservative overflow answer, not a real
                // refutation, so PRE (which would trust it) is skipped and
                // the precision loss is surfaced as a non-degraded incident.
                report.metrics.solve_time += started.elapsed();
                report.incidents.push(Incident::SolverOverflow {
                    function: func.name_symbol(),
                    site,
                    kind,
                });
                CheckOutcome::Kept
            } else if opts.pre && kind != CheckKind::Both {
                report.metrics.solve_time += started.elapsed();
                set_current_pass("pre");
                if let Some(plan) = &self.fault_plan {
                    plan.maybe_panic(func.name(), "pre");
                }
                let pre_started = Instant::now();
                let tracing = self.trace;
                let prover = pre_provers.entry((problem, source)).or_insert_with(|| {
                    let mut p = PreProver::with_scratch(graph, source, freq_dyn, arena.take_pre());
                    if tracing {
                        p.enable_trace();
                    }
                    p
                });
                let (result, pre_steps) = self.try_pre(
                    func_id,
                    profile,
                    site,
                    prover,
                    index,
                    c,
                    query_fuel,
                    problem,
                    &mut ftrace,
                );
                report.pre_steps += pre_steps;
                report.metrics.pre_time += pre_started.elapsed();
                set_current_pass("solve");
                if prover.last_query_exhausted() {
                    report.incidents.push(Incident::BudgetExhausted {
                        function: func.name_symbol(),
                        site,
                        kind,
                        fuel: spent_steps + pre_steps,
                    });
                }
                match result {
                    Some(points) => {
                        let n = points.len();
                        report.hoisted_checks.push(HoistedCheck {
                            block,
                            inst,
                            site,
                            kind,
                            array,
                            index,
                            points: points.clone(),
                        });
                        pre_jobs.push((block, inst, points, problem));
                        CheckOutcome::Hoisted { insertions: n }
                    }
                    None => CheckOutcome::Kept,
                }
            } else {
                report.metrics.solve_time += started.elapsed();
                CheckOutcome::Kept
            };

            report.steps += spent_steps;
            report.analysis_time += started.elapsed();
            report.record(site, kind, outcome);
        }

        for p in upper_provers.values() {
            report.metrics.memo_hits += p.memo_hits();
            report.metrics.memo_misses += p.memo_misses();
        }
        report.metrics.memo_hits += lower_prover.memo_hits();
        report.metrics.memo_misses += lower_prover.memo_misses();
        for p in pre_provers.values() {
            report.metrics.pre_memo_hits += p.memo_hits;
            report.metrics.pre_memo_misses += p.memo_misses;
        }
        // Retire every prover and graph into the arena: their warm tables
        // and shells seed the next function's analysis.
        for (_, p) in upper_provers {
            p.reclaim(arena);
        }
        lower_prover.reclaim(arena);
        for (_, p) in pre_provers {
            arena.put_pre(p.into_scratch());
        }
        for (_, g) in local_graphs {
            arena.put_graph(g);
        }
        arena.put_graph(upper_graph);
        arena.put_graph(lower_graph);

        // 5: transform. The rewrite runs as a verified stage: if the
        // verifier rejects the transformed function, the pre-transform
        // snapshot ships and every claimed removal is rolled back to Kept.
        let transform_started = Instant::now();
        let merge_checks = opts.merge_checks;
        let mut spec_inserted = 0usize;
        let mut merged = 0usize;
        let transform = self.run_stage(func, "transform", true, |f| {
            for (b, id) in to_remove {
                f.remove_inst(b, id);
            }
            for (b, id, points, problem) in pre_jobs {
                spec_inserted += apply_insertions(f, b, id, &points, problem);
            }
            if merge_checks {
                merged = merge_remaining_checks(f);
            }
        });
        match transform {
            Ok(()) => {
                report.spec_checks_inserted = spec_inserted;
                report.checks_merged = merged;
            }
            Err(incident) => {
                // Pre-transform snapshot restored: nothing was removed.
                report.incidents.push(incident);
                for (_, _, o) in &mut report.outcomes {
                    if matches!(
                        o,
                        CheckOutcome::RemovedFully { .. } | CheckOutcome::Hoisted { .. }
                    ) {
                        *o = CheckOutcome::Kept;
                    }
                }
                report.eliminated.clear();
                report.hoisted_checks.clear();
            }
        }
        report.metrics.transform_time = transform_started.elapsed();
        if let Some(t) = &mut ftrace {
            // Summary spans: total solver and transform wall time, after the
            // per-check Prove/Pre spans they aggregate.
            t.push(Span::Pass {
                pass: "solve",
                dur: report.metrics.solve_time,
            });
            t.push(Span::Pass {
                pass: "transform",
                dur: report.metrics.transform_time,
            });
        }

        // Translation validation (fail-open layer): independently
        // re-justify every elimination from the final e-SSA form.
        if opts.validate {
            set_current_pass("validate");
            if let Some(plan) = &self.fault_plan {
                plan.maybe_panic(func.name(), "validate");
            }
            crate::validate::validate_function(func, &mut report, facts, &gvn, &dt, opts.gvn_hook);
        }

        // Final stage, always on: renumber into the parser's canonical
        // form. This makes the printed module a `print ∘ parse` fixpoint —
        // the property the content-addressed cache stores and re-verifies,
        // and what keeps batch, served, warm, and cold outputs
        // byte-identical to each other.
        if let Err(incident) = self.run_stage(func, "canonicalize", true, |f| {
            *f = abcd_ir::canonicalize(f);
        }) {
            report.incidents.push(incident);
        }

        report.fuel_spent = report.steps + report.pre_steps;
        report.trace = ftrace;
        debug_assert_eq!(abcd_ir::verify_function(func, None), Ok(()));
        report
    }

    /// PRE: query with insertion collection and test profitability (§6.1).
    /// The prover is cached per `(problem, source)` by the caller so its
    /// memo spans every failed check against the same source.
    #[allow(clippy::too_many_arguments)]
    fn try_pre(
        &self,
        func_id: FuncId,
        profile: Option<&Profile>,
        site: CheckSite,
        prover: &mut PreProver,
        index: Value,
        c: i64,
        fuel: Option<u64>,
        problem: Problem,
        trace: &mut Option<Box<FunctionTrace>>,
    ) -> (Option<Vec<crate::solver::InsertionPoint>>, u64) {
        let steps_before = prover.steps;
        if let Some(f) = fuel {
            prover.set_query_fuel(f);
        }
        let outcome = prover.demand_prove(Vertex::Value(index), c);
        let steps = prover.steps - steps_before;
        let span_outcome;
        let mut insertions: Vec<PreInsertionRecord> = Vec::new();
        let result = match outcome {
            PreOutcome::Proven => {
                span_outcome = "proven";
                None
            }
            PreOutcome::ProvenWithInsertions(points) => {
                if trace.is_some() {
                    insertions = points
                        .iter()
                        .map(|pt| PreInsertionRecord {
                            pred: pt.pred.to_string(),
                            arg: pt.arg.to_string(),
                            c_prime: pt.c_prime,
                            delta: crate::pre::compensation_delta(problem, pt.c_prime),
                        })
                        .collect();
                }
                let profitable = match profile {
                    Some(p) => {
                        let cost: u64 = points
                            .iter()
                            .map(|pt| p.block_count(func_id, pt.pred))
                            .sum();
                        let benefit = p.site_count(func_id, site);
                        cost < benefit
                    }
                    // Without a profile, insert speculatively (the paper's
                    // speculation is safe thanks to the compare/trap split);
                    // a single insertion point is the classic loop-invariant
                    // shape and essentially always profitable.
                    None => points.len() <= 1,
                };
                span_outcome = if profitable {
                    "hoisted"
                } else {
                    "unprofitable"
                };
                profitable.then_some(points)
            }
            PreOutcome::Failed => {
                span_outcome = if prover.last_query_exhausted() {
                    "exhausted"
                } else {
                    "failed"
                };
                None
            }
        };
        if let Some(t) = trace {
            t.push(Span::Pre {
                site,
                check: match problem {
                    Problem::Upper => "upper",
                    Problem::Lower => "lower",
                },
                outcome: span_outcome,
                steps,
                insertions,
                events: prover.take_trace(),
            });
        }
        (result, steps)
    }

    /// Is the check provable using only constraints of its own block?
    /// (The Figure 6 "local" category.)
    #[allow(clippy::too_many_arguments)]
    fn provable_locally(
        &self,
        func: &Function,
        block: Block,
        problem: Problem,
        source: Vertex,
        index: Value,
        c: i64,
        cache: &mut HashMap<(Block, Problem), InequalityGraph>,
        arena: &mut ScratchArena,
    ) -> bool {
        let g = match cache.entry((block, problem)) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(e) => {
                let mut g = arena.take_graph(problem);
                g.rebuild_excluding(func, problem, Some(block), &[]);
                e.insert(g)
            }
        };
        let mut prover = DemandProver::with_scratch(g, source, arena.take_demand());
        let ok = prover.demand_prove(Vertex::Value(index), c);
        arena.put_demand(prover.into_scratch());
        ok
    }
}

/// Runs an upper-bound query against the (memoized) prover for `array`,
/// accounting the solver steps it spends into `spent`, budget trips into
/// `exhausted`, and arithmetic saturation into `overflowed`. Steps and
/// wall time also land in the per-backend metrics slots.
#[allow(clippy::too_many_arguments)]
fn prove_upper<'g>(
    graph: &'g InequalityGraph,
    backend: ProverBackend,
    provers: &mut HashMap<Value, AnyProver<'g>>,
    arena: &mut ScratchArena,
    metrics: &mut crate::metrics::FunctionMetrics,
    spent: &mut u64,
    exhausted: &mut bool,
    overflowed: &mut bool,
    fuel: Option<u64>,
    array: Value,
    index: Value,
    site: CheckSite,
    trace: &mut Option<Box<FunctionTrace>>,
) -> bool {
    let tracing = trace.is_some();
    let p = provers.entry(array).or_insert_with(|| {
        let mut p = AnyProver::with_arena(graph, Vertex::ArrayLen(array), backend, arena);
        if tracing {
            p.enable_trace();
        }
        p
    });
    let started = Instant::now();
    let before = p.steps();
    if let Some(f) = fuel {
        p.set_query_fuel(f);
    }
    let ok = p.demand_prove(Vertex::Value(index), -1);
    let steps = p.steps() - before;
    *spent += steps;
    *exhausted |= p.last_query_exhausted();
    *overflowed |= p.last_query_overflowed();
    let slot = p.backend().index();
    metrics.backend_steps[slot] += steps;
    metrics.backend_time[slot] += started.elapsed();
    if let Some(t) = trace {
        t.push(Span::Prove {
            site,
            check: "upper",
            target: Vertex::Value(index).to_string(),
            source: Vertex::ArrayLen(array).to_string(),
            c: -1,
            proven: ok,
            exhausted: p.last_query_exhausted(),
            steps,
            events: p.take_trace(),
        });
    }
    ok
}

/// The lower-bound analogue of [`prove_upper`] (one shared constant-0
/// prover).
#[allow(clippy::too_many_arguments)]
fn prove_lower(
    prover: &mut AnyProver,
    metrics: &mut crate::metrics::FunctionMetrics,
    spent: &mut u64,
    exhausted: &mut bool,
    overflowed: &mut bool,
    fuel: Option<u64>,
    index: Value,
    site: CheckSite,
    trace: &mut Option<Box<FunctionTrace>>,
) -> bool {
    let started = Instant::now();
    let before = prover.steps();
    if let Some(f) = fuel {
        prover.set_query_fuel(f);
    }
    let ok = prover.demand_prove(Vertex::Value(index), 0);
    let steps = prover.steps() - before;
    *spent += steps;
    *exhausted |= prover.last_query_exhausted();
    *overflowed |= prover.last_query_overflowed();
    let slot = prover.backend().index();
    metrics.backend_steps[slot] += steps;
    metrics.backend_time[slot] += started.elapsed();
    if let Some(t) = trace {
        t.push(Span::Prove {
            site,
            check: "lower",
            target: Vertex::Value(index).to_string(),
            source: Vertex::Const(0).to_string(),
            c: 0,
            proven: ok,
            exhausted: prover.last_query_exhausted(),
            steps,
            events: prover.take_trace(),
        });
    }
    ok
}

/// Resolves a `--jobs` request against the host: `0` (auto) becomes the
/// available parallelism, and explicit counts are clamped to it — workers
/// beyond physical CPUs only add contention (measured ~40% slower over the
/// benchsuite at 2–4 workers on a 1-CPU host; see the
/// `pipeline/abcd_suite_threads/*` rows of `BENCH_pipeline.json`).
///
/// CLI entry points route their worker counts through this; direct
/// [`Optimizer::with_threads`] callers stay unclamped so tests can still
/// exercise oversubscribed pools deliberately.
pub fn clamp_jobs(requested: usize) -> usize {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if requested == 0 {
        cpus
    } else {
        requested.min(cpus)
    }
}

/// GVN result plus cleanup statistics, carried from prepare to analyze.
struct PreparedGvn {
    gvn: abcd_analysis::GvnResult,
    cleanup: abcd_analysis::CleanupStats,
    prepare_time: std::time::Duration,
    /// The π-insertion slice of `prepare_time`, for its trace span.
    pi_time: std::time::Duration,
}

/// A prepared function's analysis state — its canonical *input* text (for
/// cache keying, captured before prepare mutated anything) and the prepare
/// outcome — handed from the parallel prepare phase to the parallel
/// analyze phase of interprocedural mode.
type PreparedSlot = Mutex<Option<(Option<String>, FailOpen<Result<PreparedGvn, Incident>>)>>;

/// Result of an isolated pipeline run: the work's own output, or the
/// fail-open report of a function whose pipeline panicked.
enum FailOpen<T> {
    Done(T),
    Panicked(Box<FunctionReport>),
}

impl FailOpen<FunctionReport> {
    fn merge(self) -> FunctionReport {
        match self {
            FailOpen::Done(r) => r,
            FailOpen::Panicked(r) => *r,
        }
    }
}

/// The report of a function that ships un-transformed after a pipeline
/// failure: every check is recorded as kept, plus the triggering incident.
fn fail_open_report(func: &Function, incident: Incident) -> FunctionReport {
    let mut report = FunctionReport::new(func.name());
    for b in func.blocks() {
        for &id in func.block(b).insts() {
            if let InstKind::BoundsCheck { site, kind, .. } = func.inst(id).kind {
                report.checks_total += 1;
                report.record(site, kind, CheckOutcome::Kept);
            }
        }
    }
    report.incidents.push(incident);
    report
}

/// Human-readable panic payload (message when it was a string).
fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn has_pi(func: &Function) -> bool {
    func.blocks().any(|b| {
        func.block(b)
            .insts()
            .iter()
            .any(|&id| matches!(func.inst(id).kind, InstKind::Pi { .. }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::CheckOutcome;
    use abcd_frontend::compile;
    use abcd_vm::Vm;

    const LOOP_SRC: &str = "fn f(a: int[]) -> int {
        let s: int = 0;
        for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
        return s;
    }";

    #[test]
    fn report_accounting_is_consistent() {
        let mut m = compile(LOOP_SRC).unwrap();
        let report = Optimizer::new().optimize_module(&mut m, None);
        let f = &report.functions[0];
        assert_eq!(f.checks_total, 2);
        assert_eq!(f.checks_analyzed(), 2);
        assert_eq!(f.removed_fully(), 2);
        assert_eq!(f.hoisted(), 0);
        assert!(f.steps > 0);
        assert!(f.steps_per_check() > 0.0);
        assert_eq!(report.checks_total(), 2);
        assert_eq!(report.checks_removed_fully(), 2);
        assert!(report.analysis_time() >= std::time::Duration::ZERO);
    }

    #[test]
    fn optimizing_twice_is_stable() {
        let mut m = compile(LOOP_SRC).unwrap();
        let opt = Optimizer::new();
        let r1 = opt.optimize_module(&mut m, None);
        assert_eq!(r1.checks_removed_fully(), 2);
        // Second run: nothing left to do, and the module stays valid.
        let r2 = opt.optimize_module(&mut m, None);
        assert_eq!(r2.checks_total(), 0);
        abcd_ir::verify_module(&m).unwrap();
        let mut vm = Vm::new(&m);
        let a = vm.alloc_int_array(&[4, 5]);
        assert_eq!(
            vm.call_by_name("f", &[a]).unwrap(),
            Some(abcd_vm::RtVal::Int(9))
        );
    }

    #[test]
    fn function_without_checks_reports_empty() {
        let mut m = compile("fn g(x: int) -> int { return x * 2; }").unwrap();
        let report = Optimizer::new().optimize_module(&mut m, None);
        let f = &report.functions[0];
        assert_eq!(f.checks_total, 0);
        assert_eq!(f.steps, 0);
        assert_eq!(f.steps_per_check(), 0.0);
    }

    #[test]
    fn local_classification_flags_same_block_proofs() {
        // a[i] then a[i] again: the second access' checks are provable from
        // the first's π constraints, all within one block.
        let mut m = compile("fn f(a: int[], i: int) -> int { return a[i] + a[i]; }").unwrap();
        let report = Optimizer::new().optimize_module(&mut m, None);
        let f = &report.functions[0];
        let locals = f
            .outcomes
            .iter()
            .filter(|(_, _, o)| matches!(o, CheckOutcome::RemovedFully { local: true, .. }))
            .count();
        assert!(locals >= 2, "{:#?}", f.outcomes);
        // The first pair is not removable at all.
        assert_eq!(f.removed_fully(), 2, "{:#?}", f.outcomes);
    }

    #[test]
    fn hot_threshold_without_profile_analyzes_everything() {
        let mut m = compile(LOOP_SRC).unwrap();
        let opts = OptimizerOptions {
            hot_threshold: Some(1_000_000),
            ..OptimizerOptions::default()
        };
        // No profile given: the threshold cannot apply.
        let report = Optimizer::with_options(opts).optimize_module(&mut m, None);
        assert_eq!(report.checks_removed_fully(), 2);
    }

    #[test]
    fn merge_checks_option_produces_both_checks() {
        let mut m = compile("fn f(a: int[], i: int) -> int { return a[i]; }").unwrap();
        let opts = OptimizerOptions {
            merge_checks: true,
            ..OptimizerOptions::default()
        };
        let report = Optimizer::with_options(opts).optimize_module(&mut m, None);
        assert_eq!(report.functions[0].checks_merged, 1);
        let id = m.function_by_name("f").unwrap();
        let func = m.function(id);
        let mut both = 0;
        for b in func.blocks() {
            for &iid in func.block(b).insts() {
                if let InstKind::BoundsCheck {
                    kind: abcd_ir::CheckKind::Both,
                    ..
                } = func.inst(iid).kind
                {
                    both += 1;
                }
            }
        }
        assert_eq!(both, 1);
    }

    #[test]
    fn profile_orders_hot_checks_first() {
        // Two functions; one runs 100x more. With a profile, the analysis
        // still visits everything but the reports must agree regardless of
        // ordering — this pins the sort from crashing on ties and the
        // outcome being order-independent.
        let src = "
            fn hot(a: int[]) -> int {
                let s: int = 0;
                for (let i: int = 0; i < a.length; i = i + 1) { s = s + a[i]; }
                return s;
            }
            fn main() -> int {
                let a: int[] = new int[32];
                let t: int = 0;
                for (let r: int = 0; r < 100; r = r + 1) { t = t + hot(a); }
                return t;
            }
        ";
        let train = compile(src).unwrap();
        let mut vm = Vm::new(&train);
        vm.call_by_name("main", &[]).unwrap();
        let profile = vm.into_profile();

        let mut with_profile = compile(src).unwrap();
        let r1 = Optimizer::new().optimize_module(&mut with_profile, Some(&profile));
        let mut without = compile(src).unwrap();
        let r2 = Optimizer::new().optimize_module(&mut without, None);
        assert_eq!(r1.checks_removed_fully(), r2.checks_removed_fully());
        assert_eq!(r1.checks_hoisted(), r2.checks_hoisted());
    }
}
